"""The Sec 7.1 design flow: diagnosing and fixing STC's bottleneck.

Walks the paper's case study end to end:
1. compare STC and DSTC on a pruned ResNet50 layer,
2. naively extend STC to 2:8 and observe no speedup,
3. diagnose the SMEM bandwidth wall with the model's bandwidth-demand
   output (Fig. 16),
4. fix it with RLE metadata + input compression and re-evaluate.

Run:  python examples/stc_next_gen.py
"""

from repro import Session, Workload
from repro.designs import dstc, stc
from repro.designs.common import conv_as_gemm
from repro.sparse.density import FixedStructuredDensity, UniformDensity
from repro.workload.nets import resnet50

layer = resnet50()[10]
gemm = conv_as_gemm(layer)
session = Session()


def evaluate(design, weight_model, label):
    wl = Workload(
        gemm,
        {"A": weight_model, "B": UniformDensity(0.65, gemm.tensor_size("B"))},
        name=label,
    )
    return session.evaluate(design, wl)


dense = evaluate(dstc.dense_tensor_core_design(), UniformDensity(1.0, 1), "dense")
print(f"dense tensor core baseline: {dense.cycles:.4g} cycles")

print("\nStep 1: STC vs DSTC at 2:4")
for design, model in [
    (stc.stc_design(), FixedStructuredDensity(2, 4)),
    (dstc.dstc_design(), UniformDensity(0.5, gemm.tensor_size("A"))),
]:
    r = evaluate(design, model, "2:4")
    print(f"  {design.name:8s} speedup {dense.cycles / r.cycles:.2f}x, "
          f"energy {r.energy_pj:.3g} pJ")

print("\nStep 2: naive STC-flexible at 2:8 — where is the 4x?")
flexible = evaluate(
    stc.stc_flexible_design(8), FixedStructuredDensity(2, 8), "2:8"
)
print(f"  speedup {dense.cycles / flexible.cycles:.2f}x "
      f"(theoretical 4x), bottleneck: {flexible.latency.bottleneck}")

print("\nStep 3: bandwidth diagnosis (words/cycle demanded of SMEM)")
for tensor in ("A", "B"):
    actions = flexible.sparse.at("SMEM", tensor)
    per_cycle = actions.data_reads.actual / flexible.latency.compute_cycles
    role = "weights" if tensor == "A" else "inputs"
    print(f"  {role:8s}: {per_cycle:5.1f}")
print("  -> uncompressed inputs need 4x the 2:4 bandwidth (Fig. 16).")

print("\nStep 4: compress the inputs too (no input skipping)")
fixed = evaluate(
    stc.stc_flexible_rle_dualcompress_design(),
    FixedStructuredDensity(2, 8),
    "2:8",
)
dstc_r = evaluate(
    dstc.dstc_design(), UniformDensity(0.25, gemm.tensor_size("A")), "2:8"
)
print(f"  stc-flexible-rle-dualCompress: "
      f"speedup {dense.cycles / fixed.cycles:.2f}x, "
      f"energy {fixed.energy_pj:.3g} pJ")
print(f"  dstc reference:                "
      f"speedup {dense.cycles / dstc_r.cycles:.2f}x, "
      f"energy {dstc_r.energy_pj:.3g} pJ")
print("\nExploiting more sparsity does not guarantee speedup; dataflow")
print("and SAF overhead must be co-designed (the paper's conclusion).")
session.close()
