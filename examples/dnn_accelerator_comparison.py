"""Compare published sparse DNN accelerators on AlexNet layers.

Evaluates the prebuilt Eyeriss (gating), Eyeriss V2 PE (skipping) and
SCNN (cartesian-product skipping) models layer by layer — the paper's
Sec 6.1 per-layer methodology — and prints a table showing how their
SAF choices translate into cycles and energy.

Run:  python examples/dnn_accelerator_comparison.py
"""

from repro import EvaluateJob, Session, Workload
from repro.designs import eyeriss, eyeriss_v2, scnn
from repro.workload.nets import alexnet

ACT_DENSITY = {"conv1": 0.66, "conv2": 0.55, "conv3": 0.47,
               "conv4": 0.42, "conv5": 0.42}
WEIGHT_DENSITY = 0.4  # pruned weights

DESIGNS = [
    eyeriss.eyeriss_design(),
    eyeriss_v2.eyeriss_v2_pe_design(),
    scnn.scnn_design(),
]

session = Session(check_capacity=False)

# Submit the whole (layer x design) sweep up front; handles resolve in
# one batched pass on the first .result() read.
handles = {}
for layer in alexnet()[:5]:
    for design in DESIGNS:
        wl = Workload.uniform(
            layer.spec,
            {"I": ACT_DENSITY[layer.name], "W": WEIGHT_DENSITY},
            name=layer.name,
        )
        handles[(layer.name, design.name)] = session.submit(
            EvaluateJob(design, wl)
        )

header = f"{'layer':8s}" + "".join(f"{d.name:>22s}" for d in DESIGNS)
print("cycles (energy pJ/MAC) per layer")
print(header)
for layer in alexnet()[:5]:
    cells = [f"{layer.name:8s}"]
    for design in DESIGNS:
        result = handles[(layer.name, design.name)].result()
        cells.append(
            f"{result.cycles:12.3g} ({result.energy_per_compute:5.2f})"
        )
    print("".join(cells))

print()
print("Design character summary (conv3):")
layer = alexnet()[2]
for design in DESIGNS:
    wl = Workload.uniform(
        layer.spec, {"I": 0.47, "W": WEIGHT_DENSITY}, name=layer.name
    )
    r = session.evaluate(design, wl)
    c = r.sparse.compute
    print(
        f"  {design.name:16s} computes: {c.actual:.3g} actual / "
        f"{c.gated:.3g} gated / {c.skipped:.3g} skipped "
        f"(bottleneck: {r.latency.bottleneck})"
    )
session.close()
print()
print("Gating (Eyeriss) keeps all cycles but idles units; skipping")
print("(Eyeriss V2, SCNN) removes the cycles themselves (Sec 3).")
