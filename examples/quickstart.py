"""Quickstart: model a sparse matmul accelerator in ~40 lines.

Builds a two-level architecture, describes a sparse matrix
multiplication workload, attaches a coordinate-payload format plus
skipping SAFs, and evaluates speed/energy with the three-step model.

Run:  python examples/quickstart.py
"""

from repro import (
    Architecture,
    ComputeLevel,
    Design,
    LevelMapping,
    Loop,
    Mapping,
    SAFSpec,
    Session,
    StorageLevel,
    Workload,
    matmul,
)
from repro.sparse.formats import CoordinatePayload, FormatRank, FormatSpec
from repro.sparse.saf import skip_compute, skip_storage

# 1. Architecture: DRAM -> 64KB buffer -> 16 MACs.
arch = Architecture(
    "quickstart",
    [
        StorageLevel("DRAM", None, component="dram",
                     read_bandwidth=8, write_bandwidth=8),
        StorageLevel("Buffer", 48 * 1024, component="sram",
                     read_bandwidth=8, write_bandwidth=8),
    ],
    ComputeLevel("MAC", instances=16),
)

# 2. Workload: Z[m,n] = sum_k A[m,k] * B[k,n]; A is 25% dense.
workload = Workload.uniform(matmul(256, 256, 256), {"A": 0.25, "B": 0.6})

# 3. Mapping: output stationary, n parallelised across the MACs.
mapping = Mapping(
    [
        LevelMapping("DRAM", [Loop("m", 4), Loop("n", 4)]),
        LevelMapping(
            "Buffer",
            [Loop("m", 64), Loop("n", 4), Loop("k", 256)],
            [Loop("n", 16)],
        ),
    ]
)

# 4. SAFs: compress A (CP-CP, a coordinate list), skip B's fetches and
#    the compute cycles whenever the paired A value is zero.
cp2 = FormatSpec([FormatRank(CoordinatePayload()), FormatRank(CoordinatePayload())])
safs = SAFSpec(
    formats={("DRAM", "A"): cp2, ("Buffer", "A"): cp2},
    storage_safs=[skip_storage("B", ["A"], "Buffer")],
    compute_safs=[skip_compute(["A"])],
)

design = Design("quickstart-sparse", arch, safs, mapping=mapping)
dense_design = Design("quickstart-dense", arch, SAFSpec(), mapping=mapping)

with Session() as session:
    sparse_result = session.evaluate(design, workload)
    dense_result = session.evaluate(dense_design, workload)

print(sparse_result.summary())
print()
print(f"speedup over dense design:  "
      f"{dense_result.cycles / sparse_result.cycles:.2f}x")
print(f"energy saving over dense:   "
      f"{dense_result.energy_pj / sparse_result.energy_pj:.2f}x")
print(f"buffer A compression rate:  "
      f"{sparse_result.compression_rate('Buffer', 'A'):.2f}x")
