"""Mapspace + SAF design-space exploration with the built-in mapper.

For a sparse matmul workload, searches the mapping space of a small
accelerator under three SAF configurations (dense, gating, skipping)
and reports the best mapping found for each — the early-stage DSE flow
the paper positions Sparseloop for.

Run:  python examples/design_space_exploration.py
"""

import time

from repro import Design, SAFSpec, Session, Workload, matmul
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.mapping.mapspace import Mapper, MapspaceConstraints
from repro.sparse.formats import CoordinatePayload, FormatRank, FormatSpec
from repro.sparse.saf import SAFKind, double_sided, gate_compute, skip_compute

arch = Architecture(
    "dse",
    [
        StorageLevel("DRAM", None, component="dram",
                     read_bandwidth=8, write_bandwidth=8),
        StorageLevel("Buffer", 16 * 1024, component="sram",
                     read_bandwidth=8, write_bandwidth=8),
    ],
    ComputeLevel("MAC", instances=16),
)

workload = Workload.uniform(matmul(128, 128, 128), {"A": 0.2, "B": 0.2})

cp2 = FormatSpec(
    [FormatRank(CoordinatePayload()), FormatRank(CoordinatePayload())]
)
saf_choices = {
    "dense": SAFSpec(),
    "gating": SAFSpec(
        formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2},
        compute_safs=[gate_compute()],
    ),
    "skipping": SAFSpec(
        formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2},
        storage_safs=double_sided(SAFKind.SKIP, "A", "B", "Buffer"),
        compute_safs=[skip_compute()],
    ),
}

constraints = MapspaceConstraints(spatial_dims={"Buffer": ["n", "m"]})

print(f"mapspace size estimate: "
      f"{Mapper(workload.einsum, arch, constraints).mapspace_size_estimate():,}")
print()
start = time.perf_counter()
with Session(search_budget=80) as session:
    for name, safs in saf_choices.items():
        design = Design(name, arch, safs, constraints=constraints)
        best = session.search(design, workload).best
        print(f"=== best mapping for {name} (EDP {best.edp:.3g}) ===")
        print(f"cycles {best.cycles:.4g}, energy {best.energy_pj:.4g} pJ, "
              f"utilization {best.latency.utilization:.0%}")
        print(best.dense.mapping.describe())
        print()
    elapsed = time.perf_counter() - start
    cache = session.cache_stats()["dense"]
print(f"searched 3 SAF variants in {elapsed:.3f}s; the dense-analysis "
      f"cache served {cache['hit_rate']:.0%} of dataflow analyses "
      f"({cache['hits']} hits / {cache['misses']} misses), since every "
      f"variant re-walks the same candidate mappings.")
print("(Use Session(parallel=N) to fan larger sweeps and searches out "
      "over worker processes.)")
print()
print("The best schedule changes with the SAFs: skipping designs favor")
print("mappings whose leader tiles are small (Fig. 10's insight).")

# --- Objectives beyond EDP: Pareto frontiers and evolutionary search.
# A vector objective keeps every mutually non-dominated mapping, and
# strategy="evolutionary" breeds candidates in factorization space
# instead of scanning random draws (docs/search.md).
print()
design = Design("skipping", arch, saf_choices["skipping"],
                constraints=constraints)
with Session(search_budget=80) as session:
    pareto = session.search(
        design, workload, objective=("energy", "cycles", "slack")
    )
    points = pareto.frontier.ordered()
    print(f"energy/cycles/slack frontier: {len(points)} non-dominated "
          f"mappings (winner by EDP is index {pareto.best_index})")
    for point in points[:4]:
        energy, cycles, slack = point.objectives
        print(f"  #{point.index}: energy {energy:.4g} pJ, "
              f"cycles {cycles:.4g}, headroom {-slack:.0%}")

    evolved = session.search(
        design, workload, objective="edp", strategy="evolutionary"
    )
    random_best = session.search(design, workload, objective="edp")
    print(f"evolutionary EDP {evolved.best_score:.3g}, batched random "
          f"sampling EDP {random_best.best_score:.3g} at the same "
          f"budget (benchmarks/bench_search_pareto.py tracks the "
          f"committed parity floor)")
