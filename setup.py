"""Legacy setup shim for offline editable installs (no wheel available)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Sparseloop reproduction: analytical modeling of sparse tensor "
        "accelerators (MICRO 2022)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "PyYAML"],
)
