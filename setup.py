"""Legacy setup shim for offline editable installs (no wheel available).

All project metadata — including dependencies — lives in
``pyproject.toml``; setuptools>=61 reads it from there.
"""

from setuptools import setup

setup()
