"""YAML specification loading (the paper's Fig. 6 input style)."""

from repro.io.yaml_spec import (
    load_architecture,
    load_design,
    load_mapping,
    load_saf_spec,
    load_workload,
)

__all__ = [
    "load_architecture",
    "load_workload",
    "load_mapping",
    "load_saf_spec",
    "load_design",
]
