"""Load Sparseloop-style YAML specifications (Fig. 6).

The original tool consumes YAML descriptions of the architecture,
workload, SAFs, and mapping. This module provides the same front-end
for the Python reproduction. Each loader accepts either a YAML string,
a path to a file, or an already-parsed dict.

Example::

    arch:
      name: simple
      storage:
        - {name: BackingStorage, capacity_words: 65536, component: dram}
        - {name: Buffer, capacity_words: 1024, component: sram,
           read_bandwidth: 4}
      compute: {name: MAC, instances: 4}

    workload:
      kernel: matmul
      dims: {m: 16, k: 16, n: 16}
      densities: {A: 0.25, B: 0.5}

    safs:
      formats:
        - {level: Buffer, tensor: A, format: CSR}
      actions:
        - {kind: skip, target: B, condition_on: [A], level: Buffer}
        - {kind: gate, unit: compute}

    mapping:
      - level: BackingStorage
        temporal: [{dim: m, bound: 4}]
      - level: Buffer
        temporal: [{dim: m, bound: 4}, {dim: k, bound: 16}]
        spatial: [{dim: n, bound: 4}]
        keep: [A, Z]
"""

from __future__ import annotations

from pathlib import Path

import yaml

from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.common.errors import MappingError, SpecError
from repro.mapping.mapping import Mapping
from repro.mapping.mapspace import Mapper, MapspaceConstraints
from repro.model.engine import Design
from repro.sparse.formats import (
    Bitmask,
    CoordinatePayload,
    FormatRank,
    FormatSpec,
    RunLengthEncoding,
    Uncompressed,
    UncompressedBitmask,
    UncompressedOffsetPairs,
    classic_format,
)
from repro.mapping.fused import FusedMapping
from repro.sparse.saf import ComputeSAF, SAFKind, SAFSpec, StorageSAF
from repro.workload.einsum import (
    EinsumSpec,
    conv2d,
    depthwise_conv2d,
    einsum_from_dict,
    einsum_to_dict,
    matmul,
)
from repro.workload.graph import EinsumGraph
from repro.workload.spec import Workload

_KERNELS = {
    "matmul": matmul,
    "conv2d": conv2d,
    "depthwise_conv2d": depthwise_conv2d,
}

_RANK_FORMATS = {
    "U": Uncompressed,
    "B": Bitmask,
    "UB": UncompressedBitmask,
    "CP": CoordinatePayload,
    "RLE": RunLengthEncoding,
    "UOP": UncompressedOffsetPairs,
}


def _as_dict(source) -> dict:
    """Accept a dict, a YAML string, or a path to a YAML file."""
    if isinstance(source, dict):
        return source
    if isinstance(source, Path) or (
        isinstance(source, str)
        and "\n" not in source
        and source.endswith((".yaml", ".yml"))
    ):
        try:
            with open(source) as handle:
                parsed = yaml.safe_load(handle)
        except OSError as exc:
            raise SpecError(f"cannot read spec file {source}: {exc}") from exc
        except yaml.YAMLError as exc:
            raise SpecError(f"malformed YAML in {source}: {exc}") from exc
    elif isinstance(source, str):
        try:
            parsed = yaml.safe_load(source)
        except yaml.YAMLError as exc:
            raise SpecError(f"malformed YAML spec: {exc}") from exc
    else:
        raise SpecError(f"cannot load a spec from {type(source).__name__}")
    if not isinstance(parsed, dict):
        raise SpecError(
            "spec must parse to a mapping of sections, got "
            f"{type(parsed).__name__}"
        )
    return parsed


def load_architecture(source) -> Architecture:
    """Build an :class:`Architecture` from its YAML description."""
    spec = _as_dict(source)
    spec = spec.get("arch", spec)
    storage_specs = spec.get("storage")
    if not storage_specs:
        raise SpecError("architecture spec needs a 'storage' list")
    levels = []
    for entry in storage_specs:
        entry = dict(entry)
        name = entry.pop("name", None)
        if name is None:
            raise SpecError("every storage level needs a 'name'")
        levels.append(StorageLevel(name, **entry))
    compute_spec = dict(spec.get("compute", {}))
    compute = ComputeLevel(
        name=compute_spec.pop("name", "MAC"), **compute_spec
    )
    return Architecture(spec.get("name", "arch"), levels, compute)


def load_workload(source) -> Workload:
    """Build a :class:`Workload` from its YAML description."""
    spec = _as_dict(source)
    spec = spec.get("workload", spec)
    kernel_name = spec.get("kernel")
    if kernel_name not in _KERNELS:
        raise SpecError(
            f"unknown kernel {kernel_name!r}; supported: {sorted(_KERNELS)}"
        )
    dims = spec.get("dims", {})
    einsum = _KERNELS[kernel_name](**dims, name=spec.get("name", kernel_name))
    densities = {k: float(v) for k, v in spec.get("densities", {}).items()}
    return Workload.uniform(einsum, densities, name=spec.get("name"))


def _parse_format(desc) -> FormatSpec:
    """Parse a format: a classic name ('CSR') or a rank list
    ('B-UOP-RLE', optionally with flattening like 'B^3-RLE')."""
    if isinstance(desc, list):
        ranks = []
        for item in desc:
            item = dict(item)
            kind = item.pop("rank")
            flattened = item.pop("flattened_ranks", 1)
            cls = _RANK_FORMATS.get(kind)
            if cls is None:
                raise SpecError(f"unknown rank format {kind!r}")
            ranks.append(FormatRank(cls(**item), flattened_ranks=flattened))
        return FormatSpec(ranks)
    text = str(desc)
    try:
        return classic_format(text)
    except SpecError:
        pass
    ranks = []
    for token in text.split("-"):
        if "^" in token:
            kind, _sep, count = token.partition("^")
            flattened = int(count)
        else:
            kind, flattened = token, 1
        cls = _RANK_FORMATS.get(kind.upper())
        if cls is None:
            raise SpecError(f"unknown rank format {kind!r} in {text!r}")
        ranks.append(FormatRank(cls(), flattened_ranks=flattened))
    return FormatSpec(ranks)


def load_saf_spec(source) -> SAFSpec:
    """Build a :class:`SAFSpec` from its YAML description."""
    spec = _as_dict(source)
    spec = spec.get("safs", spec)
    formats = {}
    for entry in spec.get("formats", []):
        formats[(entry["level"], entry["tensor"])] = _parse_format(
            entry["format"]
        )
    storage_safs = []
    compute_safs = []
    for entry in spec.get("actions", []):
        kind = SAFKind(entry["kind"])
        conditioned = tuple(entry.get("condition_on", ()))
        if entry.get("unit") == "compute" or "target" not in entry:
            compute_safs.append(ComputeSAF(kind, conditioned))
        else:
            storage_safs.append(
                StorageSAF(kind, entry["target"], conditioned, entry["level"])
            )
    return SAFSpec(
        formats=formats,
        storage_safs=storage_safs,
        compute_safs=compute_safs,
    )


def load_mapping(source) -> Mapping:
    """Build a :class:`Mapping` from its YAML description."""
    spec = _as_dict(source)
    spec = spec.get("mapping", spec)
    try:
        return Mapping.from_spec(spec)
    except MappingError as exc:
        # from_spec owns the structural validation; at this boundary a
        # bad mapping section is a malformed *spec*.
        raise SpecError(str(exc)) from exc


def load_constraints(source) -> MapspaceConstraints:
    """Build :class:`MapspaceConstraints` from a ``constraints`` section.

    Example::

        constraints:
          loop_orders: {Buffer: [m, k, n]}
          spatial_dims: {Buffer: [n, m]}
          keep: {Buffer: [A, Z]}
          fixed_factors: {DRAM: {m: 4}}
          max_permutations: 8
    """
    spec = _as_dict(source)
    spec = spec.get("constraints", spec)
    if not isinstance(spec, dict):
        raise SpecError("constraints spec must be a mapping of options")
    known = {
        "loop_orders",
        "spatial_dims",
        "keep",
        "fixed_factors",
        "max_permutations",
    }
    unknown = set(spec) - known
    if unknown:
        raise SpecError(
            f"unknown constraints options {sorted(unknown)}; "
            f"supported: {sorted(known)}"
        )
    try:
        return MapspaceConstraints(
            loop_orders={
                level: list(dims)
                for level, dims in (spec.get("loop_orders") or {}).items()
            },
            spatial_dims={
                level: list(dims)
                for level, dims in (spec.get("spatial_dims") or {}).items()
            },
            keep={
                level: None if tensors is None else set(tensors)
                for level, tensors in (spec.get("keep") or {}).items()
            },
            fixed_factors={
                level: {dim: int(factor) for dim, factor in factors.items()}
                for level, factors in (spec.get("fixed_factors") or {}).items()
            },
            max_permutations=int(spec.get("max_permutations", 8)),
        )
    except (TypeError, ValueError, AttributeError) as exc:
        raise SpecError(f"malformed constraints section: {exc}") from exc


def _load_einsum(entry) -> EinsumSpec:
    """One einsum of a ``graph`` section: either a kernel shorthand
    (``{kernel: matmul, name: fc, dims: {...}}``) or the explicit
    tensors form (:func:`repro.workload.einsum.einsum_from_dict`)."""
    if not isinstance(entry, dict):
        raise SpecError(
            f"graph einsum entries must be dicts, got {type(entry).__name__}"
        )
    if "kernel" in entry:
        kernel_name = entry["kernel"]
        if kernel_name not in _KERNELS:
            raise SpecError(
                f"unknown kernel {kernel_name!r}; supported: "
                f"{sorted(_KERNELS)}"
            )
        dims = entry.get("dims", {})
        try:
            spec = _KERNELS[kernel_name](
                **dims, name=entry.get("name", kernel_name)
            )
        except TypeError as exc:
            raise SpecError(
                f"bad dims for kernel {kernel_name!r}: {exc}"
            ) from exc
        rename = entry.get("rename") or {}
        if rename:
            # Kernel factories hard-code tensor names (matmul: A/B/Z),
            # so chained einsums need renames to share intermediates:
            # {kernel: matmul, name: fc2, rename: {A: H}} consumes the
            # tensor H another einsum produced.
            data = einsum_to_dict(spec)
            known = {tensor["name"] for tensor in data["tensors"]}
            unknown = set(rename) - known
            if unknown:
                raise SpecError(
                    f"rename of unknown tensors {sorted(unknown)} in "
                    f"einsum {spec.name!r}; kernel {kernel_name!r} has "
                    f"{sorted(known)}"
                )
            for tensor in data["tensors"]:
                tensor["name"] = rename.get(tensor["name"], tensor["name"])
            spec = einsum_from_dict(data)
        return spec
    if "tensors" in entry:
        return einsum_from_dict(entry)
    raise SpecError(
        "graph einsum entries need a 'kernel' shorthand or an explicit "
        "'tensors' list"
    )


def load_einsum_graph(source) -> EinsumGraph:
    """Build an :class:`EinsumGraph` from a ``graph`` section.

    Example::

        graph:
          name: mlp
          einsums:
            - {kernel: matmul, name: fc1, dims: {m: 64, k: 32, n: 128}}
            - name: fc2        # explicit form; consumes fc1's output
              dims: {m: 64, k: 128, n: 10}
              tensors: [...]

    Structural validation (duplicate einsum names, multiple producers,
    consumer-before-producer order, shared-tensor shape mismatches,
    malformed einsums) raises :class:`SpecError` /
    :class:`~repro.common.errors.SpecError` at load time.
    """
    spec = _as_dict(source)
    spec = spec.get("graph", spec)
    einsums = spec.get("einsums")
    if not einsums:
        raise SpecError("graph spec needs a non-empty 'einsums' list")
    return EinsumGraph(
        spec.get("name", "graph"), [_load_einsum(entry) for entry in einsums]
    )


def load_fused_mapping(source) -> FusedMapping:
    """Build a :class:`FusedMapping` from a ``fused`` section.

    Example::

        fused:
          fuse_at: Buffer
          mappings:
            fc1: [{level: DRAM, temporal: [...]}, ...]
            fc2: [...]

    Both keys are optional: no ``mappings`` defers sub-nests to the
    design's mapping policy; no ``fuse_at`` is the degenerate (unfused)
    evaluation.
    """
    spec = _as_dict(source)
    spec = spec.get("fused", spec)
    try:
        return FusedMapping.from_spec(spec)
    except MappingError as exc:
        raise SpecError(str(exc)) from exc


def load_fused_spec(source) -> tuple[Design, EinsumGraph, FusedMapping, dict]:
    """Load a full fused-evaluation input: arch + graph (+ safs, fused,
    densities).

    Returns ``(design, graph, fused, densities)`` ready for
    :meth:`repro.api.Session.evaluate_fused`. When the spec provides
    neither per-einsum ``fused.mappings`` nor a ``constraints`` section,
    the design falls back to the shape-agnostic
    :func:`repro.designs.common.generic_einsum_mapping` policy so every
    graph einsum has a schedule.
    """
    spec = _as_dict(source)
    if "graph" not in spec:
        raise SpecError("fused spec needs a 'graph' section")
    arch = load_architecture(spec)
    graph = load_einsum_graph(spec)
    safs = load_saf_spec(spec) if "safs" in spec else SAFSpec()
    fused = (
        load_fused_mapping(spec) if "fused" in spec else FusedMapping()
    )
    constraints = load_constraints(spec) if "constraints" in spec else None
    if constraints is not None:
        # Same load-time cross-check as load_design, against every
        # einsum in the graph — a fused spec's constraints must be
        # satisfiable by each sub-nest's mapspace.
        for einsum in graph.einsums:
            try:
                Mapper(einsum, arch, constraints)
            except MappingError as exc:
                raise SpecError(
                    f"invalid constraints section for einsum "
                    f"{einsum.name!r}: {exc}"
                ) from exc
    mapping_factory = None
    if fused.mappings is None and constraints is None:
        from repro.designs.common import generic_einsum_mapping

        mapping_factory = generic_einsum_mapping
    densities = {
        k: float(v) for k, v in (spec.get("densities") or {}).items()
    }
    design = Design(
        name=spec.get("name", arch.name),
        arch=arch,
        safs=safs,
        constraints=constraints,
        mapping_factory=mapping_factory,
    )
    return design, graph, fused, densities


def load_design(source) -> tuple[Design, Workload]:
    """Load a full evaluation input: arch + workload + safs + mapping
    (and/or mapspace constraints).

    Returns the (design, workload) pair ready for
    :meth:`repro.api.Session.evaluate` — designs with a ``mapping``
    section evaluate it directly; designs with only a ``constraints``
    section search the mapspace.
    """
    spec = _as_dict(source)
    arch = load_architecture(spec)
    workload = load_workload(spec)
    safs = load_saf_spec(spec) if "safs" in spec else SAFSpec()
    mapping = load_mapping(spec) if "mapping" in spec else None
    constraints = (
        load_constraints(spec) if "constraints" in spec else None
    )
    if constraints is not None:
        # Cross-check the constraints against this spec's architecture
        # and workload now, with the mapper's own validation (unknown
        # level names, unknown spatial dims): a typo'd constraint is a
        # malformed *spec*, and must fail at load time rather than be
        # silently ignored by a later search.
        try:
            Mapper(workload.einsum, arch, constraints)
        except MappingError as exc:
            raise SpecError(f"invalid constraints section: {exc}") from exc
    design = Design(
        name=spec.get("name", arch.name),
        arch=arch,
        safs=safs,
        mapping=mapping,
        constraints=constraints,
    )
    return design, workload
