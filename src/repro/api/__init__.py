"""repro.api: the unified evaluation façade.

One entry point for everything the model can do::

    from repro.api import Session, EvaluateJob

    with Session(parallel=4) as session:
        result = session.evaluate("design.yaml")        # spec in, result out
        sweep = [session.submit(EvaluateJob(d, w)) for d, w in points]
        best = session.search(design, workload)          # mapspace search
        net = session.evaluate_network(design, layers, densities_for)
        fused = session.evaluate_fused(design, graph, densities, mapping)

The Session owns the analysis cache, the persistent on-disk tier
(auto warm-start on first use, spill on close), and the worker-pool
fan-out; jobs are plain data (:class:`EvaluateJob`, :class:`SearchJob`,
:class:`NetworkJob`, :class:`FusedJob`) resolved through futures-like
:class:`JobHandle`\\ s. Results are versioned serializable data — see
:mod:`repro.model.result` and ``docs/api.md``.

The same surface is available over the wire: :func:`connect` opens a
:class:`RemoteSession` to a ``repro serve`` daemon (see
``docs/serving.md``), with handles that behave identically to local
ones.
"""

from repro.api.jobs import (
    EvaluateJob,
    FusedJob,
    JobHandle,
    NetworkJob,
    SearchJob,
    SearchShardJob,
    job_from_dict,
    job_resendable,
)
from repro.api.session import Session, evaluate_network
from repro.mapping.fused import FusedMapping
from repro.model.result import (
    RESULT_SCHEMA_VERSION,
    EvaluationResult,
    FusedEinsumResult,
    FusedResult,
    NetworkLayerResult,
    NetworkResult,
    SearchResult,
)
from repro.workload.graph import EinsumGraph

__all__ = [
    "Session",
    "EvaluateJob",
    "SearchJob",
    "NetworkJob",
    "SearchShardJob",
    "FusedJob",
    "JobHandle",
    "job_from_dict",
    "job_resendable",
    "connect",
    "evaluate_network",
    "EvaluationResult",
    "SearchResult",
    "NetworkResult",
    "NetworkLayerResult",
    "FusedResult",
    "FusedEinsumResult",
    "FusedMapping",
    "EinsumGraph",
    "RESULT_SCHEMA_VERSION",
]


def connect(address, *, timeout: float | None = 10.0):
    """Open a :class:`~repro.serve.client.RemoteSession` to a serving
    daemon (lazy import keeps plain local use off the serve stack)."""
    from repro.serve.client import connect as _connect

    return _connect(address, timeout=timeout)
