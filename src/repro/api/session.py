"""The :class:`Session` façade: one owner for evaluation state.

A Session wraps the three-step Sparseloop model behind a single entry
point and owns everything the scattered legacy surface made callers
wire by hand:

* the in-memory :class:`~repro.common.cache.AnalysisCache` (one per
  Session by default; pass a shared instance to pool hits, or ``None``
  to disable caching outright),
* the :class:`~repro.common.cache.PersistentCache` on-disk tier —
  warm-started automatically the first time a job touches a given
  (design, workload) content key, spilled on :meth:`close` (the
  context-manager exit),
* the process-pool fan-out — ``parallel=N`` makes batched submissions
  and searches use the engine's deterministic chunked worker pool
  without callers ever seeing chunking or initializers.

Work is described by :mod:`~repro.api.jobs` job objects, or by specs:
:meth:`Session.submit` accepts an ``EvaluateJob`` / ``SearchJob`` /
``NetworkJob``, a ``(design, workload[, mapping])`` tuple, a dict, a
YAML string, or a YAML file path — all five spell the same evaluation
and return bit-identical results. Submission returns a
:class:`~repro.api.jobs.JobHandle`; handles resolve lazily and in
bulk, so a sweep submitted up front runs as one batch::

    from repro.api import Session

    with Session(parallel=4) as session:
        handles = [session.submit(job) for job in jobs]
        results = [h.result() for h in handles]   # one pooled batch

Results are versioned, serializable data — see
:mod:`repro.model.result` (``schema: 1``).
"""

from __future__ import annotations

import threading
import warnings
from collections.abc import Callable, Iterable
from dataclasses import replace
from pathlib import Path

from repro.api.jobs import (
    EvaluateJob,
    FusedJob,
    JobHandle,
    NetworkJob,
    SearchJob,
    SearchShardJob,
)
from repro.common.cache import AnalysisCache, PersistentCache
from repro.common.errors import ReproError, SpecError
from repro.io.yaml_spec import load_design
from repro.mapping.mapping import Mapping
from repro.mapping.mapspace import MapspaceConstraints
from repro.model.engine import Design, Evaluator, persistent_state_key
from repro.model.result import (
    EvaluationResult,
    FusedResult,
    NetworkLayerResult,
    NetworkResult,
    SearchResult,
)
from repro.workload.spec import Workload

__all__ = ["Session", "coerce_job", "evaluate_network"]

_UNSET = object()


def coerce_job(spec, *, search: bool = False):
    """Turn any accepted spec form into a job object — the rules of
    :meth:`Session.submit`, shared with the remote client so local and
    remote submissions spell jobs identically."""
    if isinstance(
        spec, (EvaluateJob, SearchJob, NetworkJob, SearchShardJob, FusedJob)
    ):
        if search and not isinstance(spec, SearchJob):
            raise SpecError(
                f"search=True cannot convert a {type(spec).__name__}; "
                "submit a SearchJob instead"
            )
        return spec
    if isinstance(spec, JobHandle):
        raise SpecError("a JobHandle is a ticket, not a submittable job")
    if isinstance(spec, tuple):
        if not 2 <= len(spec) <= 3:
            raise SpecError(
                "tuple jobs must be (design, workload[, mapping]), "
                f"got {len(spec)} elements"
            )
        if search:
            if len(spec) == 3:
                raise SpecError(
                    "search jobs take (design, workload); a fixed "
                    "mapping cannot seed a mapspace search"
                )
            return SearchJob(spec[0], spec[1])
        return EvaluateJob(*spec)
    if isinstance(spec, (dict, str, Path)):
        design, workload = load_design(spec)
        if search:
            design.mapping = None
            design.constraints = design.constraints or MapspaceConstraints()
            return SearchJob(design, workload)
        if design.mapping is None and design.constraints is not None:
            return SearchJob(design, workload)
        return EvaluateJob(design, workload)
    raise SpecError(
        f"cannot build a job from {type(spec).__name__}; expected a "
        "job object, a (design, workload[, mapping]) tuple, or a "
        "dict / YAML string / YAML path spec"
    )


class Session:
    """Owns evaluation state and runs jobs; the primary public API.

    Parameters mirror the engine's knobs:

    ``check_capacity``: reject mappings whose worst-case tiles overflow
    a storage level (the failure is captured on the job's handle).
    ``search_budget`` / ``search_seed``: mapspace sampling parameters
    for constraint-driven designs and :class:`SearchJob`\\ s.
    ``parallel``: default worker-process count for batched submission,
    searches, and network fan-outs (jobs can override; ``1`` = serial).
    ``cache``: the in-memory analysis cache — defaults to a fresh
    :class:`AnalysisCache`; pass a shared instance to pool hits across
    sessions, or ``None`` to disable caching.
    ``persistent``: an optional :class:`PersistentCache` on-disk tier.
    The Session warm-starts from it automatically the first time it
    runs a job with a new (design, workload) content key, and spills
    the in-memory cache back on :meth:`close`.
    ``prefilter_capacity`` / ``sparse_vectorized`` /
    ``dense_vectorized`` / ``prefilter_vectorized``: engine fast-path
    flags, passed through unchanged (``None`` keeps the engine default
    for each of the three vectorization knobs; each fast path is
    proven bit-identical to its scalar oracle).
    ``workers``: worker pool for sharded searches (``SearchJob.shards
    > 1``, or ``search(..., shards=N)``). An int boots that many local
    ``repro serve --worker`` daemons lazily on first use (sharing this
    Session's persistent store root when one is configured); a list of
    addresses uses already-running daemons; ``None`` (the default)
    runs sharded scans in-process. The merged result is bit-identical
    to the single-host batched scan either way.
    ``worker_timeout``: seconds of total silence (heartbeats included)
    after which a worker is presumed dead and its shard reassigned.

    Sessions are context managers; :meth:`close` runs any still-pending
    jobs, then spills to the persistent tier. A closed Session rejects
    new submissions.
    """

    def __init__(
        self,
        *,
        check_capacity: bool = True,
        search_budget: int = 64,
        search_seed: int = 0,
        parallel: int = 1,
        cache: AnalysisCache | None = _UNSET,
        persistent: PersistentCache | None = None,
        prefilter_capacity: bool = True,
        sparse_vectorized: bool | None = None,
        dense_vectorized: bool | None = None,
        prefilter_vectorized: bool | None = None,
        workers: int | list | tuple | None = None,
        worker_timeout: float = 30.0,
    ):
        if parallel < 1:
            raise SpecError(f"parallel must be >= 1, got {parallel}")
        if isinstance(workers, int) and workers < 1:
            raise SpecError(f"workers must be >= 1, got {workers}")
        if cache is _UNSET:
            cache = AnalysisCache()
        engine_kwargs = dict(
            check_capacity=check_capacity,
            search_budget=search_budget,
            search_seed=search_seed,
            cache=cache,
            prefilter_capacity=prefilter_capacity,
            persistent=persistent,
        )
        if sparse_vectorized is not None:
            engine_kwargs["sparse_vectorized"] = sparse_vectorized
        if dense_vectorized is not None:
            engine_kwargs["dense_vectorized"] = dense_vectorized
        if prefilter_vectorized is not None:
            engine_kwargs["prefilter_vectorized"] = prefilter_vectorized
        self._evaluator = Evaluator(**engine_kwargs)
        self.parallel = parallel
        self._workers_spec = workers
        self._worker_timeout = worker_timeout
        self._fleet = None
        self._worker_addresses: list | None = None
        # Reentrant so a drain that resolves handles may re-enter the
        # Session (e.g. a search objective reading another handle), but
        # exclusive across threads: the serving daemon submits and
        # drains from many connection tasks, and handle resolution must
        # never interleave with a concurrent submit/run.
        self._lock = threading.RLock()
        self._pending: list[JobHandle] = []
        self._warmed: set[str] = set()
        self._spill_keys: list[str] = []
        self._closed = False
        #: Total persistent-tier entries loaded by auto warm-starts.
        self.warm_loaded = 0

    # ------------------------------------------------------------------
    # Lifecycle

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Leaving on an exception (including KeyboardInterrupt) must
        # not run the remaining sweep during unwind; pending jobs are
        # cancelled and only completed work is spilled.
        self.close(run_pending=exc_type is None)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, run_pending: bool = True) -> None:
        """Run pending jobs, spill to the persistent tier, and seal the
        Session. Idempotent.

        ``run_pending=False`` cancels still-pending jobs instead of
        running them (their handles resolve with a
        :class:`~repro.common.errors.ReproError`); the context manager
        uses it when the ``with`` block exits on an exception.

        Every content key the session touched gets a snapshot of the
        full in-memory cache (one export, written under each key).
        Snapshots of a multi-design session therefore share entries —
        deliberate: entries are content-addressed, so a warm-start can
        only ever load valid-if-unneeded extras, and any one key
        restores everything the session derived.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                if run_pending:
                    self._drain()
                else:
                    cancelled = ReproError(
                        "job cancelled: Session closed before it ran"
                    )
                    for handle in self._pending:
                        handle._resolve(exception=cancelled)
                    self._pending = []
            finally:
                try:
                    self._evaluator.spill_cache_all(self._spill_keys)
                finally:
                    if self._fleet is not None:
                        self._fleet.close()
                        self._fleet = None
                        self._worker_addresses = None

    # ------------------------------------------------------------------
    # Submission

    def submit(self, spec, *, search: bool = False) -> JobHandle:
        """Queue one job and return its :class:`JobHandle`.

        ``spec`` may be a job object (:class:`EvaluateJob`,
        :class:`SearchJob`, :class:`NetworkJob`), a ``(design,
        workload[, mapping])`` tuple of Python objects, or a design
        spec as a dict, YAML string, or YAML file path (see
        :mod:`repro.io.yaml_spec` for the schema). Spec-described
        designs with a ``mapping`` section become evaluate jobs; pass
        ``search=True`` (or provide a ``constraints`` section and no
        mapping) to search the mapspace instead.

        All equivalent forms of the same design produce bit-identical
        results. Jobs run lazily, in bulk, on the first
        ``handle.result()`` call (or at :meth:`close`).
        """
        job = self._coerce_job(spec, search=search)
        if (
            isinstance(job, (EvaluateJob, SearchJob, SearchShardJob))
            and job.workload is None
        ):
            raise SpecError(
                f"{type(job).__name__} needs a workload (a spec string/"
                "dict/path carries its own; Python-object jobs take it "
                "explicitly)"
            )
        with self._lock:
            if self._closed:
                raise SpecError("cannot submit to a closed Session")
            handle = JobHandle(self, job)
            self._pending.append(handle)
        return handle

    def submit_many(self, specs: Iterable, *, search: bool = False) -> list[JobHandle]:
        """Queue a batch of jobs; the whole batch resolves in one
        (optionally process-pooled) pass."""
        return [self.submit(spec, search=search) for spec in specs]

    def _coerce_job(self, spec, *, search: bool):
        return coerce_job(spec, search=search)

    # ------------------------------------------------------------------
    # Direct (submit + resolve) conveniences

    def evaluate(
        self,
        design,
        workload: Workload | None = None,
        mapping: Mapping | None = None,
    ) -> EvaluationResult:
        """Evaluate one point and return its result.

        ``design`` may be a :class:`Design` (with ``workload``), or any
        spec form :meth:`submit` accepts. A constraints-only spec is
        searched; the winning evaluation is returned (or
        :class:`MappingError` raised when nothing valid was found).
        """
        if workload is None and not isinstance(design, Design):
            if mapping is None:
                handle = self.submit(design)
            elif isinstance(design, (dict, str, Path)):
                # A mapping override on a spec form must not be lost:
                # load the spec and evaluate it under the override.
                spec_design, spec_workload = load_design(design)
                handle = self.submit(
                    EvaluateJob(spec_design, spec_workload, mapping)
                )
            else:
                raise SpecError(
                    "a mapping override needs a Design + workload or a "
                    "dict / YAML string / YAML path spec"
                )
        else:
            handle = self.submit(EvaluateJob(design, workload, mapping))
        result = handle.result()
        if isinstance(result, SearchResult):
            return result.best_or_raise()
        return result

    def search(
        self,
        design,
        workload: Workload | None = None,
        objective=None,
        candidates: list[Mapping] | None = None,
        parallel: int | None = None,
        batch_size: int | None = None,
        strategy: str | None = None,
        budget: int | None = None,
        seed: int | None = None,
        shards: int | None = None,
        on_progress: Callable[[dict], None] | None = None,
    ) -> SearchResult:
        """Search the mapspace and return a :class:`SearchResult`.

        ``design`` may be a :class:`SearchJob`, a :class:`Design` (with
        ``workload``), or any spec form :meth:`submit` accepts (a
        spec's mapping section, if any, is ignored in favour of the
        search). ``objective``/``candidates``/``parallel``/
        ``batch_size``/``strategy`` override the corresponding job
        fields when given (see :class:`SearchJob` for the
        ``strategy``/``batch_size`` block-scan knobs; ``"batched"``
        and ``"serial"`` return bit-identical winners, and
        ``"evolutionary"`` breeds candidates from the mapspace).
        ``budget``/``seed`` override the Session's sampling knobs for
        this search; ``shards=N`` splits the scan into N contiguous
        shards over the Session's ``workers`` (in-process when none
        are configured) with a bit-identical merged result;
        ``on_progress`` observes incremental best-so-far state.

        ``objective`` accepts a metric name (``"edp"``, ``"energy"``,
        ``"latency"``, ``"cycles"``, ``"slack"``), a sequence of names
        (vector objective — the result's ``frontier`` spans those
        axes), a weighted/multi spec dict, an
        :class:`repro.search.Objective`, or a legacy callable; see
        ``docs/search.md``.
        """
        if isinstance(design, SearchJob):
            job = design
        elif isinstance(design, (EvaluateJob, NetworkJob, FusedJob)):
            raise SpecError(
                f"search() cannot run a {type(design).__name__}; pass a "
                "SearchJob, a Design + workload, or a design spec"
            )
        elif workload is None and not isinstance(design, Design):
            job = self._coerce_job(design, search=True)
        else:
            job = SearchJob(design, workload)
        overrides = {
            name: value
            for name, value in (
                ("objective", objective),
                ("candidates", candidates),
                ("parallel", parallel),
                ("batch_size", batch_size),
                ("strategy", strategy),
                ("budget", budget),
                ("seed", seed),
                ("shards", shards),
                ("progress", on_progress),
            )
            if value is not None
        }
        if overrides:
            # Never mutate a caller's job object; override on a copy.
            job = replace(job, **overrides)
        return self.submit(job).result()

    def evaluate_network(
        self,
        design: Design,
        layers,
        densities_for: Callable[[object], dict[str, float]],
        parallel: int | None = None,
    ) -> NetworkResult:
        """Evaluate a full network and return a :class:`NetworkResult`."""
        handle = self.submit(
            NetworkJob(design, list(layers), densities_for, parallel)
        )
        return handle.result()

    def evaluate_fused(
        self,
        design: Design,
        graph,
        densities: dict[str, float] | None = None,
        fused=None,
        parallel: int | None = None,
    ) -> FusedResult:
        """Evaluate an einsum graph under a fused mapping.

        ``fused`` is a :class:`~repro.mapping.fused.FusedMapping` (or
        ``None`` for the degenerate no-fusion evaluation, which is
        bit-identical per einsum to :meth:`evaluate_network` over the
        graph's einsums). Returns a :class:`FusedResult` with
        per-einsum breakdowns and shared-tensor traffic attribution.
        """
        handle = self.submit(FusedJob(design, graph, densities, fused, parallel))
        return handle.result()

    # ------------------------------------------------------------------
    # Execution

    def run(self, *, timeout: float | None = None) -> bool:
        """Run every pending job now (handles become ``done()``).

        Called implicitly by the first ``result()`` / ``exception()``
        read on a pending handle and by :meth:`close`; calling it
        directly is only needed to front-load the work.

        Thread-safe: concurrent callers serialize on the Session lock,
        and each sees every handle that was pending when it acquired
        the lock resolved. ``timeout`` bounds the wait *for the lock*
        (a drain already underway resolves this caller's handles too);
        returns ``False`` if the lock could not be acquired in time,
        ``True`` otherwise.
        """
        if timeout is None:
            with self._lock:
                self._drain()
            return True
        if not self._lock.acquire(timeout=timeout):
            return False
        try:
            self._drain()
        finally:
            self._lock.release()
        return True

    def _drain(self) -> None:
        while self._pending:
            batch = self._pending
            self._pending = []
            try:
                self._run_batch(batch)
            except BaseException as exc:
                # An unexpected (non-ReproError) failure aborts the
                # batch; resolve every orphaned handle with it so later
                # result()/exception() reads surface the error instead
                # of silently returning None.
                for handle in batch:
                    if not handle.done():
                        handle._resolve(exception=exc)
                raise

    def _run_batch(self, handles: list[JobHandle]) -> None:
        evaluate_handles = [
            h for h in handles if isinstance(h.job, EvaluateJob)
        ]
        for handle in handles:
            self._warm_for(handle.job)
        self._run_evaluates(evaluate_handles)
        for handle in handles:
            if isinstance(handle.job, SearchShardJob):
                self._run_shard(handle)
            elif isinstance(handle.job, SearchJob):
                self._run_search(handle)
            elif isinstance(handle.job, NetworkJob):
                self._run_network(handle)
            elif isinstance(handle.job, FusedJob):
                self._run_fused(handle)

    def _run_evaluates(self, handles: list[JobHandle]) -> None:
        if not handles:
            return
        if self.parallel > 1 and len(handles) > 1:
            jobs = [h.job.engine_args() for h in handles]
            try:
                results = self._evaluator._evaluate_many(
                    jobs, parallel=self.parallel
                )
            except ReproError:
                # An expected per-job failure (e.g. one capacity
                # overflow) aborts a pooled batch as a unit; re-run
                # as a stacked in-process batch so the error is
                # captured on the one handle that caused it. Expected
                # path — no warning.
                pass
            except Exception as exc:
                # Infra failures (pickling, broken pool) also fall back
                # in-process — but say so, since they'd otherwise cost
                # the whole fan-out invisibly.
                warnings.warn(
                    f"parallel batch of {len(jobs)} jobs failed "
                    f"({type(exc).__name__}: {exc}); re-running in-process",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                for handle, result in zip(handles, results):
                    handle._resolve(result=result)
                return
        if len(handles) == 1:
            handle = handles[0]
            try:
                result = self._evaluator._evaluate(*handle.job.engine_args())
            except ReproError as exc:
                handle._resolve(exception=exc)
            else:
                handle._resolve(result=result)
            return
        # Multi-job in-process batches run through the stacked pass:
        # the whole batch's sparse-stage misses resolve in one numpy
        # call, bit-identical to the serial loop. This is what makes
        # the serving daemon's cross-client micro-batching pay off.
        outcomes = self._evaluator._evaluate_batch(
            [h.job.engine_args() for h in handles]
        )
        for handle, (result, exc) in zip(handles, outcomes):
            if exc is not None:
                handle._resolve(exception=exc)
            else:
                handle._resolve(result=result)

    def _effective_evaluator(self, job: SearchJob) -> Evaluator:
        """The engine this search runs under: the Session's evaluator
        with the job's budget/seed overrides folded in (a shallow
        dataclass copy sharing the caches)."""
        overrides = {}
        if job.budget is not None:
            if job.budget < 1:
                raise SpecError(f"budget must be >= 1, got {job.budget}")
            overrides["search_budget"] = job.budget
        if job.seed is not None:
            overrides["search_seed"] = job.seed
        if not overrides:
            return self._evaluator
        return replace(self._evaluator, **overrides)

    def _resolve_workers(self) -> list | None:
        """Worker addresses for sharded searches, booting the lazy
        local fleet on first use; ``None`` means run shards
        in-process."""
        if self._workers_spec is None:
            return None
        if self._worker_addresses is None:
            if isinstance(self._workers_spec, int):
                from repro.distributed.fleet import LocalWorkerFleet

                persistent = self._evaluator.persistent
                self._fleet = LocalWorkerFleet(
                    self._workers_spec,
                    cache_dir=getattr(persistent, "root", None),
                    cold=persistent is None,
                    check_capacity=self._evaluator.check_capacity,
                )
                self._worker_addresses = list(self._fleet.addresses)
            else:
                self._worker_addresses = list(self._workers_spec)
        return self._worker_addresses

    def _run_sharded(self, job: SearchJob, evaluator: Evaluator):
        from repro.distributed.coordinator import (
            run_shards_local,
            sharded_search,
        )

        addresses = self._resolve_workers()
        if addresses is None:
            outcome, _stats = run_shards_local(
                evaluator, job, job.shards, progress=job.progress
            )
        else:
            outcome, _stats = sharded_search(
                evaluator,
                job,
                addresses,
                shards=job.shards,
                progress=job.progress,
                worker_timeout=self._worker_timeout,
            )
        return outcome

    def _run_search(self, handle: JobHandle) -> None:
        job: SearchJob = handle.job
        try:
            evaluator = self._effective_evaluator(job)
            if (job.shards or 0) > 1:
                outcome = self._run_sharded(job, evaluator)
            else:
                outcome = evaluator._search_full(
                    job.design,
                    job.workload,
                    objective=job.objective,
                    candidates=job.candidates,
                    parallel=job.parallel or self.parallel,
                    batch_size=job.batch_size,
                    strategy=job.strategy,
                    progress=job.progress,
                )
        except ReproError as exc:
            handle._resolve(exception=exc)
            return
        # Explicit candidates bypass mapspace sampling entirely; the
        # result then records no budget/seed rather than misstating
        # parameters that never influenced the search.
        sampled = job.candidates is None
        handle._resolve(
            result=SearchResult(
                design_name=job.design.name,
                workload_name=job.workload.name or job.workload.einsum.name,
                budget=evaluator.search_budget if sampled else None,
                seed=evaluator.search_seed if sampled else None,
                best=outcome.best_result,
                objective=outcome.objective.to_spec(),
                strategy=outcome.strategy,
                best_score=outcome.best_score,
                best_index=outcome.best_index,
                frontier=outcome.frontier,
            )
        )

    def _run_shard(self, handle: JobHandle) -> None:
        """Run one :class:`SearchShardJob` through the worker-side
        scan. The gating knobs that decide which candidates survive —
        capacity checking and the capacity prefilter — come from the
        *job*, not this Session: every worker must gate exactly as the
        coordinator planned, or the merged frontier would not be
        bit-identical to the single-host scan."""
        from repro.distributed.worker import run_shard

        job: SearchShardJob = handle.job
        evaluator = self._evaluator
        if (
            evaluator.check_capacity != job.check_capacity
            or evaluator.prefilter_capacity != job.prefilter
        ):
            evaluator = replace(
                evaluator,
                check_capacity=job.check_capacity,
                prefilter_capacity=job.prefilter,
            )
        try:
            result = run_shard(
                evaluator, job, board=job.board, progress=job.progress
            )
        except ReproError as exc:
            handle._resolve(exception=exc)
            return
        handle._resolve(result=result)

    def _run_fused(self, handle: JobHandle) -> None:
        job: FusedJob = handle.job
        try:
            result = self._evaluator._evaluate_fused(
                job.design,
                job.graph,
                densities=job.densities,
                fused=job.fused,
                parallel=job.parallel or self.parallel,
            )
        except ReproError as exc:
            handle._resolve(exception=exc)
            return
        handle._resolve(result=result)

    def _run_network(self, handle: JobHandle) -> None:
        job: NetworkJob = handle.job
        if job.densities_for is None:
            handle._resolve(
                exception=SpecError("NetworkJob needs a densities_for callable")
            )
            return
        try:
            pairs = self._evaluator._evaluate_network(
                job.design,
                job.layers,
                job.densities_for,
                parallel=job.parallel or self.parallel,
            )
        except ReproError as exc:
            handle._resolve(exception=exc)
            return
        handle._resolve(
            result=NetworkResult(
                design_name=job.design.name,
                layers=[
                    NetworkLayerResult(
                        layer_name=getattr(layer, "name", str(layer)),
                        repeat=getattr(layer, "repeat", 1),
                        result=result,
                    )
                    for layer, result in pairs
                ],
            )
        )

    # ------------------------------------------------------------------
    # Persistent tier (auto warm-start / spill bookkeeping)

    def _warm_for(self, job) -> None:
        """First-use warm-start: load the persistent snapshot for this
        job's content key, once per distinct key per Session.

        Network and fused jobs are skipped — the engine's network path
        (which the fused path runs through) brackets its own fan-out
        with warm-start/spill under the network's key.
        """
        if (
            self._evaluator.persistent is None
            or self._evaluator.cache is None
            or isinstance(job, (NetworkJob, FusedJob))
        ):
            return
        key = persistent_state_key(job.design, [job.workload])
        if key is None or key in self._warmed:
            return
        self._warmed.add(key)
        self._spill_keys.append(key)
        self.warm_loaded += self._evaluator.warm_start(key)

    # ------------------------------------------------------------------
    # Introspection

    @property
    def evaluator(self) -> Evaluator:
        """The underlying engine (read-mostly; prefer the Session API)."""
        return self._evaluator

    @property
    def cache(self) -> AnalysisCache | None:
        return self._evaluator.cache

    #: Stages always present in :meth:`cache_stats` output, with zero
    #: counters when untouched: the cold-search hot path reads the
    #: ``"dense"`` (memoised dataflow analyses) and ``"candidates"``
    #: (replayed sampled streams) stages, and the fused path memoises
    #: whole cascade results under ``"fused"``, so their hit/miss
    #: counters are reportable even before the first job runs.
    _REPORTED_STAGES = ("dense", "candidates", "fused")

    def cache_stats(
        self, since: dict[str, dict[str, float]] | None = None
    ) -> dict[str, dict[str, float]]:
        """Per-stage hit/miss statistics of the in-memory cache
        (empty when caching is disabled).

        The ``"dense"`` and ``"candidates"`` stages are always
        reported — with zeroed counters when nothing touched them —
        so callers monitoring cold-search behaviour see a stable
        schema.

        ``since`` takes a dict previously returned by this method and
        turns the result into a *delta*: per-stage hits/misses are the
        counts accrued since that checkpoint (with ``hit_rate``
        recomputed over the delta), while ``entries`` stays the current
        cache size. Stages absent from the checkpoint are reported in
        full. This is how the serving daemon attributes cache hits to
        individual clients without global counters::

            before = session.cache_stats()
            ...run this client's jobs...
            attributed = session.cache_stats(since=before)
        """
        if self._evaluator.cache is None:
            return {}
        stats = self._evaluator.cache.stats()
        for name in self._REPORTED_STAGES:
            stats.setdefault(
                name,
                {"hits": 0, "misses": 0, "hit_rate": 0.0, "entries": 0},
            )
        if since is None:
            return stats
        delta: dict[str, dict[str, float]] = {}
        for name, counters in stats.items():
            base = since.get(name, {})
            hits = counters["hits"] - base.get("hits", 0)
            misses = counters["misses"] - base.get("misses", 0)
            total = hits + misses
            delta[name] = {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / total if total else 0.0,
                "entries": counters["entries"],
            }
        return delta

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{len(self._pending)} pending"
        return f"Session(parallel={self.parallel}, {state})"


def evaluate_network(
    design: Design,
    layers,
    densities_for: Callable[[object], dict[str, float]],
    *,
    parallel: int | None = None,
    session: Session | None = None,
    **session_kwargs,
) -> NetworkResult:
    """Evaluate a full network through a Session in one call.

    Uses ``session`` when given (leaving it open; ``parallel=None``
    defers to its configured worker count); otherwise opens a
    throwaway Session built from ``session_kwargs`` (e.g.
    ``check_capacity=False``, ``persistent=PersistentCache()``) and
    closes it — spilling any configured persistent tier — afterwards.
    """
    if session is not None:
        return session.evaluate_network(
            design, layers, densities_for, parallel=parallel
        )
    with Session(parallel=parallel or 1, **session_kwargs) as owned:
        return owned.evaluate_network(design, layers, densities_for)
