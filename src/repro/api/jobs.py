"""Job types and handles for the :class:`repro.api.Session` façade.

A *job* is one unit of evaluation work, expressed as plain data:

* :class:`EvaluateJob` — one (design, workload[, mapping]) point,
* :class:`SearchJob` — a mapspace search for one (design, workload),
* :class:`NetworkJob` — a per-layer full-network evaluation,
* :class:`FusedJob` — an einsum-graph evaluation, optionally fused at
  a shared buffer level.

Jobs are constructed directly from Python objects, or by
:meth:`Session.submit` from dicts / YAML strings / YAML paths. They
carry no execution state; submitting one returns a :class:`JobHandle`,
a futures-like ticket the Session resolves — batched, so many pending
evaluate jobs share one process-pool fan-out.

Jobs are also *wire data*: each kind has a ``to_dict``/``from_dict``
pair mirroring the result schema (``schema: 1`` envelopes with a
``kind`` tag; see :mod:`repro.model.result`), and
:func:`job_from_dict` dispatches on the tag. Mappings and candidate
lists serialize structurally via :meth:`Mapping.to_spec`; designs,
workloads, and callables (objectives, ``densities_for``) have no spec
form — bundled designs carry ``mapping_factory`` callables and
arbitrary density models — so they ship as tagged base64 pickles, the
same trust model as the engine's own process-pool protocol. Decode job
dicts only from trusted peers (the serving daemon binds localhost /
unix sockets by default for exactly this reason).
"""

from __future__ import annotations

import base64
import pickle
from collections.abc import Callable
from dataclasses import dataclass, field

import warnings

from repro.common.errors import SpecError
from repro.mapping.fused import FusedMapping
from repro.mapping.mapping import Mapping
from repro.model.engine import Design
from repro.model.result import RESULT_SCHEMA_VERSION, EvaluationResult
from repro.search.objective import Objective, resolve_objective
from repro.workload.graph import EinsumGraph
from repro.workload.spec import Workload

__all__ = [
    "EvaluateJob",
    "SearchJob",
    "SearchShardJob",
    "NetworkJob",
    "FusedJob",
    "JobHandle",
    "job_from_dict",
    "job_resendable",
    "JOB_SCHEMA_VERSION",
]

#: Job envelopes version in lockstep with result envelopes: a peer that
#: can read one side of the wire can read the other.
JOB_SCHEMA_VERSION = RESULT_SCHEMA_VERSION


def _pack(obj) -> dict:
    """Tagged wire encoding for payloads with no spec-dict form."""
    return {
        "encoding": "pickle",
        "data": base64.b64encode(
            pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii"),
    }


def _unpack(blob):
    if blob is None:
        return None
    if not isinstance(blob, dict) or blob.get("encoding") != "pickle":
        raise SpecError(
            "job payloads must be tagged pickle blobs "
            "({'encoding': 'pickle', 'data': ...}), got "
            f"{type(blob).__name__}"
        )
    try:
        return pickle.loads(base64.b64decode(blob["data"]))
    except SpecError:
        raise
    except Exception as exc:
        raise SpecError(f"cannot decode job payload: {exc!r}") from exc


#: Whether the once-per-process wire-callable deprecation warning has
#: fired (tests reset this to re-assert it).
_WIRE_CALLABLE_WARNED = [False]


def _objective_to_wire(objective):
    """Wire form of a job objective: plain schema-v1 spec data for
    named/weighted/multi objectives (and the names / name-sequences /
    spec dicts users pass directly), a tagged pickle blob only for
    legacy callables — which is deprecated on the wire and rejected by
    the serving daemon on TCP transports (docs/serving.md)."""
    if objective is None:
        return None
    if isinstance(objective, (str, dict)):
        # Validate eagerly so a bad name fails at submission, with the
        # spec itself as the wire form.
        resolved = resolve_objective(objective)
        if not resolved.wire_safe:
            raise SpecError(
                f"objective spec {objective!r} does not describe a "
                "wire-safe objective"
            )
        return objective
    if isinstance(objective, (list, tuple)) or isinstance(objective, Objective):
        resolved = resolve_objective(objective)
        if resolved.wire_safe:
            return resolved.to_spec()
        objective = resolved.fn  # legacy callable in Objective clothing
    if not _WIRE_CALLABLE_WARNED[0]:
        _WIRE_CALLABLE_WARNED[0] = True
        warnings.warn(
            "pickling a callable search objective onto the job wire is "
            "deprecated; use a named objective ('edp', 'energy', "
            "'latency', 'cycles', 'slack'), a weighted/multi spec, or "
            "keep the callable in-process (see docs/search.md)",
            DeprecationWarning,
            stacklevel=3,
        )
    return _pack(objective)


def _objective_from_wire(blob):
    """Inverse of :func:`_objective_to_wire`: spec data passes through
    verbatim (validated; the engine resolves it at search time), pickle
    blobs are decoded for trusted/legacy senders."""
    if blob is None:
        return None
    if isinstance(blob, dict) and blob.get("encoding") == "pickle":
        return _unpack(blob)
    resolve_objective(blob)  # validate names early; SpecError on junk
    return blob


def _job_envelope(data: dict, kind: str, build):
    """Validate a job envelope, then run ``build()`` with body-level
    failures normalised to :class:`SpecError` — the exact contract of
    :meth:`repro.model.result.SerializableResult._rebuild`, with job
    wording."""
    if not isinstance(data, dict):
        raise SpecError(
            f"serialized job must be a dict, got {type(data).__name__}"
        )
    version = data.get("schema")
    if version != JOB_SCHEMA_VERSION:
        raise SpecError(
            f"unsupported job schema version {version!r} "
            f"(this build reads version {JOB_SCHEMA_VERSION})"
        )
    found = data.get("kind")
    if found != kind:
        raise SpecError(f"expected a {kind!r} job, got kind {found!r}")
    try:
        return build()
    except SpecError:
        raise
    except (KeyError, TypeError, AttributeError) as exc:
        raise SpecError(f"malformed serialized {kind}: {exc!r}") from exc


@dataclass
class EvaluateJob:
    """Evaluate one design on one workload.

    ``mapping`` overrides the design's own mapping policy (fixed
    mapping, factory, or constraints-driven search — exactly the rules
    of the evaluation engine).
    """

    design: Design
    workload: Workload
    mapping: Mapping | None = None

    def engine_args(self) -> tuple:
        """The positional job tuple the engine's batch API consumes."""
        if self.mapping is None:
            return (self.design, self.workload)
        return (self.design, self.workload, self.mapping)

    def to_dict(self, *, pack=_pack) -> dict:
        """Serialize to a ``schema: 1`` wire envelope (see module
        docstring for the payload encodings).

        ``pack`` swaps the payload encoder for the design/workload
        blobs; the serving client passes an interning encoder that
        replaces repeated payloads with content-digest references
        (see :mod:`repro.serve.client`). The default wire form is
        self-contained.
        """
        return {
            "schema": JOB_SCHEMA_VERSION,
            "kind": "evaluate-job",
            "design": pack(self.design),
            "workload": pack(self.workload),
            "mapping": None if self.mapping is None else self.mapping.to_spec(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EvaluateJob":
        def build() -> "EvaluateJob":
            mapping = data["mapping"]
            return cls(
                design=_unpack(data["design"]),
                workload=_unpack(data["workload"]),
                mapping=None if mapping is None else Mapping.from_spec(mapping),
            )

        return _job_envelope(data, "evaluate-job", build)


@dataclass
class SearchJob:
    """Search the design's mapspace for the best valid mapping.

    ``objective`` takes any form ``repro.search.resolve_objective``
    accepts: ``None`` (EDP), a metric name (``"edp"``, ``"energy"``,
    ``"latency"``, ``"cycles"``, ``"slack"``), a sequence of names
    (vector objective searched as a Pareto frontier), a weighted/multi
    spec dict, an :class:`repro.search.Objective`, or a legacy
    callable scoring an :class:`EvaluationResult` (lower is better;
    must be picklable — a module-level function — when the search fans
    out over worker processes, and deprecated on the serve wire).
    Explicit ``candidates`` bypass the design's constraints.
    ``parallel`` overrides the Session's default worker count for this
    job; the fan-out installs the design/workload/candidate state once
    per worker process and ships only candidate index ranges per task
    (see ``docs/caching.md``), so per-task payloads stay O(1)
    regardless of candidate count.

    ``strategy`` picks how candidates are evaluated: ``"batched"``
    (the engine default) scans in candidate blocks — one stacked numpy
    sparse evaluation per block, with sampled candidate streams
    replayed from the ``"candidates"`` cache stage — while
    ``"serial"`` is the per-candidate oracle scan. Both return a
    bit-identical winner; ``batch_size`` tunes the block size
    (``None`` keeps the engine's ``search_batch_size``).
    ``"evolutionary"`` breeds candidates from the design's mapspace
    instead of scanning a stream (see ``docs/search.md``).

    ``budget`` / ``seed`` (when set) override the executing Session's
    ``search_budget`` / ``search_seed`` for this job, making the job
    fully self-describing on the wire — a worker daemon booted with
    different defaults still scans the exact stream the submitter
    meant. ``shards`` asks for the distributed scan: the Session
    splits the candidate stream into that many contiguous shards and
    fans them out over its worker fleet (see ``docs/distributed.md``);
    the merged result is bit-identical to the single-host batched
    scan. ``progress`` is an in-process observation callback (called
    with incremental progress dicts); it never serializes.
    """

    design: Design
    workload: Workload
    objective: object = None
    candidates: list[Mapping] | None = None
    parallel: int | None = None
    batch_size: int | None = None
    strategy: str | None = None
    budget: int | None = None
    seed: int | None = None
    shards: int | None = None
    progress: Callable[[dict], None] | None = field(
        default=None, compare=False, repr=False
    )

    def to_dict(self) -> dict:
        """Serialize to a ``schema: 1`` wire envelope. Named/weighted/
        multi objectives ride as plain spec data; a legacy callable
        objective is pickled (deprecated — the serving daemon rejects
        pickled objectives on TCP) and must be a module-level
        function."""
        return {
            "schema": JOB_SCHEMA_VERSION,
            "kind": "search-job",
            "design": _pack(self.design),
            "workload": _pack(self.workload),
            "objective": _objective_to_wire(self.objective),
            "candidates": (
                None
                if self.candidates is None
                else [mapping.to_spec() for mapping in self.candidates]
            ),
            "parallel": self.parallel,
            "batch_size": self.batch_size,
            "strategy": self.strategy,
            "budget": self.budget,
            "seed": self.seed,
            "shards": self.shards,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchJob":
        def build() -> "SearchJob":
            candidates = data["candidates"]
            return cls(
                design=_unpack(data["design"]),
                workload=_unpack(data["workload"]),
                objective=_objective_from_wire(data["objective"]),
                candidates=(
                    None
                    if candidates is None
                    else [Mapping.from_spec(spec) for spec in candidates]
                ),
                parallel=data["parallel"],
                batch_size=data["batch_size"],
                strategy=data["strategy"],
                budget=data.get("budget"),
                seed=data.get("seed"),
                shards=data.get("shards"),
            )

        return _job_envelope(data, "search-job", build)


@dataclass
class SearchShardJob:
    """Scan one contiguous shard of a search's candidate stream.

    The distributed coordinator's unit of work (see
    ``docs/distributed.md``): evaluate stream positions ``[start,
    stop)`` of the deterministic unpruned candidate stream defined by
    (design, constraints, ``mode``, ``budget``, ``seed``), replaying
    the prefix ``[0, start)`` through the capacity prefilter and
    overflow-witness bookkeeping — no evaluations — so stream indices
    and witness state are bit-identical to the single-host batched
    scan's at every position. ``total`` is the expected stream length;
    workers regenerate the stream and refuse to run (``SpecError``) if
    theirs disagrees, which catches config/version skew before it can
    corrupt a merge. ``snapshot`` optionally seeds the replay with an
    authoritative upstream scan state (position/index/witnesses) to
    fast-forward it; further snapshots may arrive mid-flight via the
    ``witness-update`` serve op. ``check_capacity`` / ``prefilter``
    pin the executing engine's gating knobs to the coordinator's.

    ``board`` and ``progress`` are in-process attachments (the serve
    daemon wires them up after decoding); they never serialize. Shard
    jobs are pure functions of their payload — witnesses only
    accelerate the replay, never change its outcome — so they are
    always safe to resend.
    """

    design: Design
    workload: Workload
    objective: object = None
    search_id: str = ""
    shard_id: int = 0
    start: int = 0
    stop: int = 0
    total: int = 0
    mode: str = "sampled"
    budget: int = 64
    seed: int = 0
    batch_size: int | None = None
    check_capacity: bool = True
    prefilter: bool = True
    candidates: list[Mapping] | None = None
    snapshot: dict | None = None
    board: object = field(default=None, compare=False, repr=False)
    progress: Callable[[dict], None] | None = field(
        default=None, compare=False, repr=False
    )

    def to_dict(self) -> dict:
        return {
            "schema": JOB_SCHEMA_VERSION,
            "kind": "search-shard-job",
            "design": _pack(self.design),
            "workload": _pack(self.workload),
            "objective": _objective_to_wire(self.objective),
            "search_id": self.search_id,
            "shard": self.shard_id,
            "start": self.start,
            "stop": self.stop,
            "total": self.total,
            "mode": self.mode,
            "budget": self.budget,
            "seed": self.seed,
            "batch_size": self.batch_size,
            "check_capacity": self.check_capacity,
            "prefilter": self.prefilter,
            "candidates": (
                None
                if self.candidates is None
                else [mapping.to_spec() for mapping in self.candidates]
            ),
            "snapshot": self.snapshot,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchShardJob":
        def build() -> "SearchShardJob":
            candidates = data["candidates"]
            return cls(
                design=_unpack(data["design"]),
                workload=_unpack(data["workload"]),
                objective=_objective_from_wire(data["objective"]),
                search_id=data["search_id"],
                shard_id=data["shard"],
                start=data["start"],
                stop=data["stop"],
                total=data["total"],
                mode=data["mode"],
                budget=data["budget"],
                seed=data["seed"],
                batch_size=data["batch_size"],
                check_capacity=data["check_capacity"],
                prefilter=data["prefilter"],
                candidates=(
                    None
                    if candidates is None
                    else [Mapping.from_spec(spec) for spec in candidates]
                ),
                snapshot=data["snapshot"],
            )

        return _job_envelope(data, "search-shard-job", build)


@dataclass
class NetworkJob:
    """Evaluate a full network layer by layer (Sec 6.1 methodology).

    ``layers`` is a list of :class:`~repro.workload.nets.NetLayer`;
    ``densities_for(layer)`` supplies per-tensor densities for each.
    Identical layers are deduped and the fan-out brackets itself with
    the persistent tier exactly like the engine's network path.
    """

    design: Design
    layers: list = field(default_factory=list)
    densities_for: Callable[[object], dict[str, float]] | None = None
    parallel: int | None = None

    def to_dict(self) -> dict:
        """Serialize to a ``schema: 1`` wire envelope. ``layers`` and
        ``densities_for`` ship as one pickle each (layer objects and
        density callables have no spec form)."""
        return {
            "schema": JOB_SCHEMA_VERSION,
            "kind": "network-job",
            "design": _pack(self.design),
            "layers": _pack(list(self.layers)),
            "densities_for": (
                None if self.densities_for is None else _pack(self.densities_for)
            ),
            "parallel": self.parallel,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NetworkJob":
        def build() -> "NetworkJob":
            return cls(
                design=_unpack(data["design"]),
                layers=_unpack(data["layers"]) or [],
                densities_for=_unpack(data["densities_for"]),
                parallel=data["parallel"],
            )

        return _job_envelope(data, "network-job", build)


@dataclass
class FusedJob:
    """Evaluate an einsum graph, optionally fused at a buffer level.

    ``graph`` and ``fused`` have structural spec forms and ship as
    plain data; the design ships as one pickle (mapping factories have
    no spec form). ``fused=None`` — or a :class:`FusedMapping` with
    ``fuse_at=None`` — is the degenerate (unfused) form, bit-identical
    per einsum to evaluating the graph as a network layer list.
    """

    design: Design
    graph: EinsumGraph
    densities: dict[str, float] | None = None
    fused: FusedMapping | None = None
    parallel: int | None = None

    def to_dict(self) -> dict:
        """Serialize to a ``schema: 1`` wire envelope."""
        return {
            "schema": JOB_SCHEMA_VERSION,
            "kind": "fused-job",
            "design": _pack(self.design),
            "graph": self.graph.to_dict(),
            "densities": (
                None if self.densities is None else dict(self.densities)
            ),
            "fused": None if self.fused is None else self.fused.to_spec(),
            "parallel": self.parallel,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FusedJob":
        def build() -> "FusedJob":
            fused = data.get("fused")
            return cls(
                design=_unpack(data["design"]),
                graph=EinsumGraph.from_dict(data["graph"]),
                densities=data.get("densities"),
                fused=(
                    None if fused is None else FusedMapping.from_spec(fused)
                ),
                parallel=data.get("parallel"),
            )

        return _job_envelope(data, "fused-job", build)


def job_from_dict(data: dict):
    """Rebuild any job from its :meth:`to_dict` envelope, dispatching
    on the ``kind`` tag."""
    if not isinstance(data, dict):
        raise SpecError(
            f"serialized job must be a dict, got {type(data).__name__}"
        )
    kind = data.get("kind")
    kinds = {
        "evaluate-job": EvaluateJob,
        "search-job": SearchJob,
        "search-shard-job": SearchShardJob,
        "network-job": NetworkJob,
        "fused-job": FusedJob,
    }
    cls = kinds.get(kind)
    if cls is None:
        raise SpecError(
            f"unknown job kind {kind!r}; expected one of {sorted(kinds)}"
        )
    return cls.from_dict(data)


def job_resendable(job) -> bool:
    """Whether a job in flight on a dropped connection may be silently
    resent on reconnect.

    Evaluate, network, fused, and shard jobs are pure functions of
    their payload — running them twice returns the same result — so
    resending is safe. A mapspace :class:`SearchJob` (``candidates is None``) is
    *not*: it consumes the executing daemon's seeded candidate stream
    and search budget, so a silent re-run would spend budget twice and
    could race a still-running first attempt. The serve client resolves
    such jobs with :class:`~repro.common.errors.WorkerLostError`
    instead (the caller resubmits explicitly once it knows the first
    attempt's fate). An explicit-candidates search job is a pure scan
    and resends fine. ``None`` (protocol ops) is resendable.
    """
    if isinstance(job, SearchJob):
        return job.candidates is not None
    return True


class JobHandle:
    """A futures-like ticket for one submitted job.

    Handles resolve lazily and in bulk: the first :meth:`result` /
    :meth:`exception` call on any pending handle makes its Session run
    *all* pending jobs (evaluate jobs in one batched — optionally
    process-pool — pass), so callers can submit a whole sweep and only
    then start reading results. Expected modeling failures
    (:class:`~repro.common.errors.ReproError` subclasses: malformed
    specs, invalid mappings, capacity overflows) are captured per job;
    :meth:`result` re-raises them, :meth:`exception` returns them.
    """

    __slots__ = ("job", "_session", "_done", "_result", "_exception")

    def __init__(self, session, job):
        self.job = job
        self._session = session
        self._done = False
        self._result = None
        self._exception: BaseException | None = None

    def done(self) -> bool:
        """True once the job has run (successfully or not)."""
        return self._done

    def result(self, timeout: float | None = None):
        """The job's result, running all pending session jobs first.

        Returns an :class:`EvaluationResult` (evaluate jobs), a
        :class:`~repro.model.result.SearchResult` (search jobs), or a
        :class:`~repro.model.result.NetworkResult` (network jobs).
        Re-raises the job's captured error, if it failed.

        Thread-safe. ``timeout`` (seconds) bounds how long to wait for
        the Session lock when another thread is mid-drain; expiry
        raises :class:`TimeoutError` and leaves the handle pending, so
        a later untimed call still resolves it.
        """
        if not self._done and not self._session.run(timeout=timeout):
            raise TimeoutError(
                f"job did not resolve within {timeout:g}s (Session busy)"
            )
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(
        self, timeout: float | None = None
    ) -> BaseException | None:
        """The job's captured failure (``None`` on success), running
        all pending session jobs first. ``timeout`` behaves exactly as
        in :meth:`result`."""
        if not self._done and not self._session.run(timeout=timeout):
            raise TimeoutError(
                f"job did not resolve within {timeout:g}s (Session busy)"
            )
        return self._exception

    def _resolve(self, result=None, exception: BaseException | None = None):
        # Publish the payload before the done flag: result()/exception()
        # fast-path on `_done` without taking the Session lock, so a
        # reader that observes done() must never see a stale payload.
        self._result = result
        self._exception = exception
        self._done = True

    def __repr__(self) -> str:
        state = "pending"
        if self._done:
            state = "failed" if self._exception is not None else "done"
        return f"JobHandle({type(self.job).__name__}, {state})"
