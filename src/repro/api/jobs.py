"""Job types and handles for the :class:`repro.api.Session` façade.

A *job* is one unit of evaluation work, expressed as plain data:

* :class:`EvaluateJob` — one (design, workload[, mapping]) point,
* :class:`SearchJob` — a mapspace search for one (design, workload),
* :class:`NetworkJob` — a per-layer full-network evaluation.

Jobs are constructed directly from Python objects, or by
:meth:`Session.submit` from dicts / YAML strings / YAML paths. They
carry no execution state; submitting one returns a :class:`JobHandle`,
a futures-like ticket the Session resolves — batched, so many pending
evaluate jobs share one process-pool fan-out.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.mapping.mapping import Mapping
from repro.model.engine import Design
from repro.model.result import EvaluationResult
from repro.workload.spec import Workload

__all__ = ["EvaluateJob", "SearchJob", "NetworkJob", "JobHandle"]


@dataclass
class EvaluateJob:
    """Evaluate one design on one workload.

    ``mapping`` overrides the design's own mapping policy (fixed
    mapping, factory, or constraints-driven search — exactly the rules
    of the evaluation engine).
    """

    design: Design
    workload: Workload
    mapping: Mapping | None = None

    def engine_args(self) -> tuple:
        """The positional job tuple the engine's batch API consumes."""
        if self.mapping is None:
            return (self.design, self.workload)
        return (self.design, self.workload, self.mapping)


@dataclass
class SearchJob:
    """Search the design's mapspace for the best valid mapping.

    ``objective`` scores an :class:`EvaluationResult` (lower is better;
    default EDP; must be picklable — a module-level function — when the
    search fans out over worker processes). Explicit ``candidates``
    bypass the design's constraints. ``parallel`` overrides the
    Session's default worker count for this job; the fan-out installs
    the design/workload/candidate state once per worker process and
    ships only candidate index ranges per task (see
    ``docs/caching.md``), so per-task payloads stay O(1) regardless of
    candidate count.

    ``strategy`` picks how candidates are evaluated: ``"batched"``
    (the engine default) scans in candidate blocks — one stacked numpy
    sparse evaluation per block, with sampled candidate streams
    replayed from the ``"candidates"`` cache stage — while
    ``"serial"`` is the per-candidate oracle scan. Both return a
    bit-identical winner; ``batch_size`` tunes the block size
    (``None`` keeps the engine's ``search_batch_size``).
    """

    design: Design
    workload: Workload
    objective: Callable[[EvaluationResult], float] | None = None
    candidates: list[Mapping] | None = None
    parallel: int | None = None
    batch_size: int | None = None
    strategy: str | None = None


@dataclass
class NetworkJob:
    """Evaluate a full network layer by layer (Sec 6.1 methodology).

    ``layers`` is a list of :class:`~repro.workload.nets.NetLayer`;
    ``densities_for(layer)`` supplies per-tensor densities for each.
    Identical layers are deduped and the fan-out brackets itself with
    the persistent tier exactly like the engine's network path.
    """

    design: Design
    layers: list = field(default_factory=list)
    densities_for: Callable[[object], dict[str, float]] | None = None
    parallel: int | None = None


class JobHandle:
    """A futures-like ticket for one submitted job.

    Handles resolve lazily and in bulk: the first :meth:`result` /
    :meth:`exception` call on any pending handle makes its Session run
    *all* pending jobs (evaluate jobs in one batched — optionally
    process-pool — pass), so callers can submit a whole sweep and only
    then start reading results. Expected modeling failures
    (:class:`~repro.common.errors.ReproError` subclasses: malformed
    specs, invalid mappings, capacity overflows) are captured per job;
    :meth:`result` re-raises them, :meth:`exception` returns them.
    """

    __slots__ = ("job", "_session", "_done", "_result", "_exception")

    def __init__(self, session, job):
        self.job = job
        self._session = session
        self._done = False
        self._result = None
        self._exception: BaseException | None = None

    def done(self) -> bool:
        """True once the job has run (successfully or not)."""
        return self._done

    def result(self):
        """The job's result, running all pending session jobs first.

        Returns an :class:`EvaluationResult` (evaluate jobs), a
        :class:`~repro.model.result.SearchResult` (search jobs), or a
        :class:`~repro.model.result.NetworkResult` (network jobs).
        Re-raises the job's captured error, if it failed.
        """
        if not self._done:
            self._session.run()
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self) -> BaseException | None:
        """The job's captured failure (``None`` on success), running
        all pending session jobs first."""
        if not self._done:
            self._session.run()
        return self._exception

    def _resolve(self, result=None, exception: BaseException | None = None):
        self._done = True
        self._result = result
        self._exception = exception

    def __repr__(self) -> str:
        state = "pending"
        if self._done:
            state = "failed" if self._exception is not None else "done"
        return f"JobHandle({type(self.job).__name__}, {state})"
