"""Shared utilities: errors, math helpers, and spec loading."""

from repro.common.errors import (
    MappingError,
    ReproError,
    SpecError,
    ValidationError,
)
from repro.common.util import (
    ceil_div,
    clamp,
    factorizations,
    prod,
)

__all__ = [
    "ReproError",
    "SpecError",
    "MappingError",
    "ValidationError",
    "ceil_div",
    "clamp",
    "prod",
    "factorizations",
]
