"""Shared utilities: errors, math helpers, caching, and spec loading."""

from repro.common.cache import (
    AnalysisCache,
    DenseAnalysisCache,
    PersistentCache,
    StageCache,
    global_cache,
)
from repro.common.errors import (
    MappingError,
    ReproError,
    SpecError,
    ValidationError,
)
from repro.common.util import (
    ceil_div,
    clamp,
    factorizations,
    prod,
)

__all__ = [
    "ReproError",
    "SpecError",
    "MappingError",
    "ValidationError",
    "AnalysisCache",
    "DenseAnalysisCache",
    "PersistentCache",
    "StageCache",
    "global_cache",
    "ceil_div",
    "clamp",
    "prod",
    "factorizations",
]
