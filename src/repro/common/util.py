"""Small numeric helpers used across the library.

The combinatorial helpers (:func:`divisors`, :func:`factorizations`,
:func:`factorization_count`) are memoised: the mapper asks for the same
decompositions for every candidate mapping of a workload, which made
them a measurable share of mapspace-search time.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence
from functools import lru_cache


def prod(values: Iterable[float]) -> float:
    """Product of an iterable; 1 for an empty iterable.

    Unlike :func:`math.prod`, keeps integer inputs integral but accepts
    floats as well (tile densities, scaling factors).
    """
    result = 1
    for value in values:
        result = result * value
    return result


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division; ``denominator`` must be positive."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the inclusive range [low, high]."""
    if low > high:
        raise ValueError(f"empty clamp range [{low}, {high}]")
    return max(low, min(high, value))


@lru_cache(maxsize=65536)
def cached_divisors(n: int) -> tuple[int, ...]:
    """All positive divisors of ``n`` in ascending order (memoised)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    small, large = [], []
    limit = int(math.isqrt(n))
    for candidate in range(1, limit + 1):
        if n % candidate == 0:
            small.append(candidate)
            if candidate != n // candidate:
                large.append(n // candidate)
    return tuple(small + large[::-1])


def divisors(n: int) -> list[int]:
    """All positive divisors of ``n`` in ascending order.

    Returns a fresh list per call; use :func:`cached_divisors` in hot
    loops that only read.
    """
    return list(cached_divisors(n))


@lru_cache(maxsize=4096)
def cached_factorizations(n: int, parts: int) -> tuple[tuple[int, ...], ...]:
    """Every ordered tuple of ``parts`` positive ints with product ``n``.

    Memoised by ``(n, parts)``; the recursion reuses sub-results for
    the quotients, so enumerating a whole mapspace touches each
    ``(quotient, remaining_parts)`` pair once.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if parts == 1:
        return ((n,),)
    combos = []
    for first in cached_divisors(n):
        for rest in cached_factorizations(n // first, parts - 1):
            combos.append((first, *rest))
    return tuple(combos)


#: Result sets larger than this stream from the recursive generator
#: instead of being pinned in the cache (entry *size* is what matters,
#: not entry count).
_FACTORIZATION_CACHE_LIMIT = 65536


def factorizations(n: int, parts: int) -> Iterator[tuple[int, ...]]:
    """Yield every ordered tuple of ``parts`` positive ints whose product is ``n``.

    Used by the mapper to enumerate per-level tiling factors. Small
    result sets are served from the memo; combinatorial blow-ups are
    streamed without caching so one huge query cannot pin hundreds of
    megabytes for the process lifetime.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if factorization_count(n, parts) <= _FACTORIZATION_CACHE_LIMIT:
        yield from cached_factorizations(n, parts)
        return
    yield from _stream_factorizations(n, parts)


def _stream_factorizations(n: int, parts: int) -> Iterator[tuple[int, ...]]:
    if parts == 1:
        yield (n,)
        return
    for first in cached_divisors(n):
        for rest in _stream_factorizations(n // first, parts - 1):
            yield (first, *rest)


@lru_cache(maxsize=65536)
def _prime_exponents(n: int) -> tuple[int, ...]:
    """Exponents of the prime factorization of ``n`` (order-free)."""
    exps = []
    factor = 2
    while factor * factor <= n:
        if n % factor == 0:
            e = 0
            while n % factor == 0:
                n //= factor
                e += 1
            exps.append(e)
        factor += 1 if factor == 2 else 2
    if n > 1:
        exps.append(1)
    return tuple(exps)


def factorization_count(n: int, parts: int) -> int:
    """Number of ordered ``parts``-tuples with product ``n``, in closed
    form: ``prod_i C(e_i + parts - 1, parts - 1)`` over the prime
    exponents ``e_i`` of ``n`` — no enumeration needed.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    count = 1
    for e in _prime_exponents(n):
        count *= math.comb(e + parts - 1, parts - 1)
    return count


def bits_to_words(bits: float, word_bits: int) -> float:
    """Convert a bit count to (fractional) words of ``word_bits`` each."""
    if word_bits <= 0:
        raise ValueError(f"word_bits must be positive, got {word_bits}")
    return bits / word_bits


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    return math.exp(sum(math.log(v) for v in values) / len(values))
