"""Small numeric helpers used across the library."""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence


def prod(values: Iterable[float]) -> float:
    """Product of an iterable; 1 for an empty iterable.

    Unlike :func:`math.prod`, keeps integer inputs integral but accepts
    floats as well (tile densities, scaling factors).
    """
    result = 1
    for value in values:
        result = result * value
    return result


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division; ``denominator`` must be positive."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the inclusive range [low, high]."""
    if low > high:
        raise ValueError(f"empty clamp range [{low}, {high}]")
    return max(low, min(high, value))


def divisors(n: int) -> list[int]:
    """All positive divisors of ``n`` in ascending order."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    small, large = [], []
    limit = int(math.isqrt(n))
    for candidate in range(1, limit + 1):
        if n % candidate == 0:
            small.append(candidate)
            if candidate != n // candidate:
                large.append(n // candidate)
    return small + large[::-1]


def factorizations(n: int, parts: int) -> Iterator[tuple[int, ...]]:
    """Yield every ordered tuple of ``parts`` positive ints whose product is ``n``.

    Used by the mapper to enumerate per-level tiling factors. The number
    of tuples grows quickly; callers should bound ``n`` and ``parts``.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if parts == 1:
        yield (n,)
        return
    for first in divisors(n):
        for rest in factorizations(n // first, parts - 1):
            yield (first, *rest)


def bits_to_words(bits: float, word_bits: int) -> float:
    """Convert a bit count to (fractional) words of ``word_bits`` each."""
    if word_bits <= 0:
        raise ValueError(f"word_bits must be positive, got {word_bits}")
    return bits / word_bits


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    return math.exp(sum(math.log(v) for v in values) / len(values))
