"""Exception hierarchy for the repro library.

Every exception raised intentionally by this library derives from
:class:`ReproError`, so callers can catch a single base class.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SpecError(ReproError):
    """An input specification (workload, architecture, SAF) is malformed."""


class MappingError(ReproError):
    """A mapping is inconsistent with the workload or architecture."""


class ValidationError(ReproError):
    """A mapping failed micro-architectural validity checks (e.g. capacity)."""


class OverloadedError(ReproError):
    """The serving daemon shed this job: its admission queue is full.

    Retryable by construction — the job was rejected before any work
    ran, so resubmitting (ideally after a backoff) is always safe.
    """
