"""Exception hierarchy for the repro library.

Every exception raised intentionally by this library derives from
:class:`ReproError`, so callers can catch a single base class.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SpecError(ReproError):
    """An input specification (workload, architecture, SAF) is malformed."""


class MappingError(ReproError):
    """A mapping is inconsistent with the workload or architecture."""


class ValidationError(ReproError):
    """A mapping failed micro-architectural validity checks (e.g. capacity)."""


class OverloadedError(ReproError):
    """The serving daemon shed this job: its admission queue is full.

    Retryable by construction — the job was rejected before any work
    ran, so resubmitting (ideally after a backoff) is always safe.
    """


class WorkerLostError(ReproError):
    """A remote worker went silent or its connection dropped mid-job.

    Raised by the serve client when a daemon stops heartbeating past
    the configured liveness timeout, and when a dropped connection
    held a non-resendable job (a mapspace search consuming server-side
    RNG/budget state) in flight. The distributed search coordinator
    catches it to reassign the lost worker's shards; other callers
    should treat the job's outcome as unknown and resubmit explicitly.
    """
