"""Unified content-addressed analysis cache (the memo service).

Every stage of the evaluation pipeline — dense dataflow analysis,
sparse post-processing, tile-format characterisation — is a pure
function of *content*: einsum iteration spaces, architecture
parameters, mapping schedules, SAF specifications, and density-model
parameters. Each of those objects exposes a ``cache_key()`` canonical
content key, so any stage result can be memoised under a tuple of the
keys it depends on and shared across evaluations, SAF sweeps, and even
worker processes.

This module provides that memo service as one subsystem instead of the
ad-hoc per-module caches it grew out of:

* :class:`StageCache` — one bounded, content-addressed LRU map with
  hit/miss accounting. Values are treated as **read-only** by
  convention: a hit returns the stored object itself.
* :class:`DenseAnalysisCache` — the dense-stage specialisation
  (formerly in :mod:`repro.model.engine`): keys exclude tensor
  densities, and hits rebind the caller's workload.
* :class:`AnalysisCache` — a registry of named stages. The evaluation
  engine owns one (stages ``"dense"``, ``"sparse"``, and the
  micro-model stages ``"validity"``/``"latency"``/``"energy"``); the
  process-global instance from :func:`global_cache` hosts stages whose
  results are safely shared by every evaluator in the process (stage
  ``"tile-format"``).
* :class:`PersistentCache` — an on-disk tier that spills
  :meth:`AnalysisCache.export_state` snapshots to a versioned store
  (default ``~/.cache/repro/``) so repeated CLI runs, network
  fan-outs, and CI jobs start warm instead of cold.

Adding a new stage (e.g. micro energy/latency memoisation) takes three
steps: derive a content key from the stage's *actual* inputs, pick a
stage name and default size in :data:`DEFAULT_STAGE_SIZES`, and wrap
the computation in ``cache.stage(name).get_or_compute(key, fn)``. See
``docs/caching.md`` for the key-composition rules and invalidation
story.

Warm workers: :meth:`AnalysisCache.export_state` snapshots the
most-recently-used entries of every stage into a picklable payload and
:meth:`AnalysisCache.import_state` restores them — the engine ships the
parent's entries through the process-pool initializer so ``parallel=N``
workers start warm instead of re-deriving shared analyses.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
import sys
import tempfile
from collections import OrderedDict
from collections.abc import Callable, Iterable
from pathlib import Path
from typing import Any

#: Default LRU capacities per well-known stage name. Stages not listed
#: here fall back to ``DEFAULT_STAGE_SIZE``.
DEFAULT_STAGE_SIZES = {
    "dense": 1024,
    "sparse": 4096,
    "tile-format": 16384,
    # Micro-model stages: one entry per distinct sparse analysis, so
    # they are sized to track the sparse stage.
    "validity": 4096,
    "latency": 4096,
    "energy": 4096,
    # Sampled candidate streams (mapspace search): each entry is a
    # whole list of mappings (up to the search budget), so the stage is
    # kept small — one entry per distinct (constraints, einsum, arch,
    # seed, budget) search configuration.
    "candidates": 64,
    # Whole fused-cascade results: each entry bundles one
    # EvaluationResult per graph einsum, so the stage is kept small —
    # one entry per distinct (graph, design, fused mapping, densities)
    # evaluation.
    "fused": 64,
}

DEFAULT_STAGE_SIZE = 1024

#: Default cap on entries exported *per stage* when shipping cache
#: state to worker processes; bounds the pickle payload.
DEFAULT_EXPORT_LIMIT = 512


class CachedHashKey:
    """A content-key wrapper that memoises its hash.

    Stage keys are deep tuples (einsum + architecture + mapping + SAF
    + density content); hashing one is not free, and an evaluation
    consults several stages with the same key (sparse, validity,
    latency, energy — each a get and possibly a put). Wrapping the
    tuple once caches the hash across all of those dict operations.

    Pickling ships only the underlying tuple — never the cached hash,
    which is salted per process for strings — so exported entries stay
    valid across workers and persistent-store reloads.
    """

    __slots__ = ("key", "_hash")

    def __init__(self, key: tuple):
        self.key = key
        self._hash: int | None = None

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = self._hash = hash(self.key)
        return value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CachedHashKey) and self.key == other.key

    def __repr__(self) -> str:
        return f"CachedHashKey({self.key!r})"

    def __reduce__(self):
        return (CachedHashKey, (self.key,))


class StageCache:
    """One content-addressed LRU memo table with hit/miss accounting.

    Keys must be hashable content keys (tuples of primitives); values
    are arbitrary analysis results treated as read-only by callers.
    """

    def __init__(self, maxsize: int = DEFAULT_STAGE_SIZE, name: str = ""):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.name = name
        self.maxsize = maxsize
        self._entries: OrderedDict[Any, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: True when the stage holds content not yet captured by a
        #: snapshot: set by :meth:`put` (fresh computation or
        #: absorption), left alone by :meth:`import_entries` (restored
        #: state is, by definition, already persisted somewhere).
        #: Cleared by persistent spills so fully-warm runs skip
        #: rewriting identical snapshots.
        self.dirty = False

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "entries": len(self._entries),
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.dirty = False

    def get(self, key: Any) -> Any | None:
        """Return the cached value (refreshing LRU order) or ``None``.

        Counts a hit or a miss; use ``key in cache`` to peek without
        touching the accounting.
        """
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Any, value: Any) -> None:
        self.dirty = True
        self._install(key, value)

    def _install(self, key: Any, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def get_or_compute(self, key: Any, compute: Callable[[], Any]) -> Any:
        value = self.get(key)
        if value is None:
            value = compute()
            self.put(key, value)
        return value

    # ------------------------------------------------------------------
    # Warm-worker state shipping

    def export_entries(
        self, limit: int | None = DEFAULT_EXPORT_LIMIT
    ) -> list[tuple[Any, Any]]:
        """Most-recently-used ``(key, value)`` pairs, oldest first.

        The pairs are ordered so that importing them in sequence leaves
        the receiving cache with the same LRU ordering.
        """
        pairs = list(self._entries.items())
        if limit is not None and len(pairs) > limit:
            pairs = pairs[-limit:]
        return pairs

    def import_entries(self, pairs: Iterable[tuple[Any, Any]]) -> int:
        """Install exported pairs; returns the number imported.

        Restored entries do not mark the stage dirty — they came from
        a snapshot, so they are already persisted somewhere.
        """
        count = 0
        for key, value in pairs:
            self._install(key, value)
            count += 1
        return count


class DenseAnalysisCache(StageCache):
    """Content-addressed LRU cache of dense dataflow analyses.

    Keys are :func:`~repro.dataflow.nest_analysis.dense_analysis_key`
    triples — (einsum, architecture, mapping) content keys — which
    deliberately exclude tensor densities: the dense step never reads
    them, so one analysis serves every SAF/density variant of a
    mapping. On a hit for a *different* workload object the cached
    :class:`~repro.dataflow.nest_analysis.DenseTraffic` is rebound to
    the new workload (a shallow copy sharing the immutable traffic
    records).
    """

    def __init__(self, maxsize: int = DEFAULT_STAGE_SIZES["dense"]):
        super().__init__(maxsize=maxsize, name="dense")

    def get_or_compute(self, workload, arch, mapping):  # type: ignore[override]
        return self.get_or_compute_keyed(workload, arch, mapping)[0]

    def get_or_compute_keyed(self, workload, arch, mapping):
        """Like :meth:`get_or_compute` but returns ``(dense, key)`` so
        callers can derive downstream stage keys without recomputing
        the (einsum, arch, mapping) content hashes. The returned key is
        a :class:`CachedHashKey` — the stage is consulted up to three
        times per evaluation (and the key is re-embedded in every
        downstream stage key), so its deep-tuple hash is paid once."""
        from dataclasses import replace

        from repro.dataflow.nest_analysis import (
            analyze_dataflow,
            dense_analysis_key,
        )

        key = CachedHashKey(dense_analysis_key(workload, arch, mapping))
        cached = self.get(key)
        if cached is not None:
            return replace(cached, workload=workload), key
        dense = analyze_dataflow(workload, arch, mapping)
        # Store with the workload stripped: the key ignores densities,
        # so keeping the first-seen workload would pin its density
        # models (potentially whole ActualDataDensity tensors) far
        # beyond their lifetime. Hits always rebind the caller's.
        self.put(key, replace(dense, workload=None))
        return dense, key


#: Stage names whose entries the dense-specific machinery builds.
_STAGE_CLASSES: dict[str, type[StageCache]] = {
    "dense": DenseAnalysisCache,
}


class AnalysisCache:
    """A registry of named :class:`StageCache` stages.

    Stages are created lazily on first access, sized by
    :data:`DEFAULT_STAGE_SIZES` unless overridden via ``stage_sizes``.
    The ``"dense"`` stage instantiates :class:`DenseAnalysisCache`; all
    other stages are plain :class:`StageCache` tables.
    """

    def __init__(self, stage_sizes: dict[str, int] | None = None):
        self._stage_sizes = dict(stage_sizes or {})
        self._stages: dict[str, StageCache] = {}

    def stage(self, name: str, maxsize: int | None = None) -> StageCache:
        """The stage named ``name``, created on first use.

        ``maxsize`` only applies at creation; asking for a different
        size once the stage exists is a programming error and raises.
        """
        existing = self._stages.get(name)
        if existing is not None:
            if maxsize is not None and maxsize != existing.maxsize:
                raise ValueError(
                    f"stage {name!r} already exists with maxsize "
                    f"{existing.maxsize}, cannot resize to {maxsize}"
                )
            return existing
        size = maxsize
        if size is None:
            size = self._stage_sizes.get(name)
        if size is None:
            size = DEFAULT_STAGE_SIZES.get(name, DEFAULT_STAGE_SIZE)
        cls = _STAGE_CLASSES.get(name)
        stage = cls(maxsize=size) if cls else StageCache(size, name=name)
        self._stages[name] = stage
        return stage

    @property
    def dense(self) -> DenseAnalysisCache:
        stage = self.stage("dense")
        assert isinstance(stage, DenseAnalysisCache)
        return stage

    @property
    def sparse(self) -> StageCache:
        return self.stage("sparse")

    def stage_names(self) -> list[str]:
        return sorted(self._stages)

    def is_dirty(self) -> bool:
        """True when any stage holds content no snapshot has captured."""
        return any(stage.dirty for stage in self._stages.values())

    def mark_clean(self) -> None:
        """Record that the current contents have been spilled."""
        for stage in self._stages.values():
            stage.dirty = False

    def stats(self) -> dict[str, dict[str, float]]:
        return {name: stage.stats() for name, stage in self._stages.items()}

    def clear(self) -> None:
        for stage in self._stages.values():
            stage.clear()

    # ------------------------------------------------------------------
    # Warm-worker state shipping

    def export_state(
        self, per_stage_limit: int | None = DEFAULT_EXPORT_LIMIT
    ) -> dict[str, list[tuple[Any, Any]]]:
        """Picklable snapshot of every stage's hottest entries."""
        return {
            name: stage.export_entries(per_stage_limit)
            for name, stage in self._stages.items()
            if len(stage)
        }

    def import_state(self, state: dict[str, list[tuple[Any, Any]]]) -> int:
        """Install a snapshot from :meth:`export_state`; returns the
        total number of entries imported."""
        total = 0
        for name, pairs in state.items():
            total += self.stage(name).import_entries(pairs)
        return total


# ----------------------------------------------------------------------
# Persistent on-disk tier

#: Bump when the snapshot payload layout (not the cached *content*)
#: changes incompatibly; older ``v<N>`` directories are then ignored
#: and can be swept with :meth:`PersistentCache.prune_stale_versions`.
PERSISTENT_SCHEMA_VERSION = 1

_CODE_HASH: str | None = None


def repro_code_hash() -> str:
    """Content hash of the installed ``repro`` package sources.

    blake2b over every ``*.py`` file (path + bytes) under the package
    root, memoised per process. Any source change — which could change
    what a content key means or what a stage computes — lands snapshots
    in a fresh namespace, which is the persistent tier's invalidation
    story: conservative, automatic, and never wrong.
    """
    global _CODE_HASH
    if _CODE_HASH is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.blake2b(digest_size=16)
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_HASH = digest.hexdigest()
    return _CODE_HASH


class ObjectStore:
    """Corruption-safe content-addressed on-disk object store.

    Layout::

        <root>/v<schema>/<namespace>/<blake2b(key)>.pkl

    ``root`` defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.
    ``namespace`` defaults to ``py<maj><min>-<repro_code_hash()>`` so
    stored objects never outlive the code (or pickle format) that
    wrote them. ``key`` is a free-form string naming one object —
    callers derive it from content, never identity, so a fleet of
    workers pointed at one ``root`` shares a single warm tier safely:
    two writers racing on the same key are writing the same bytes.

    Writes are atomic (temp file + ``os.replace``) so a crashed or
    concurrent run can never leave a half-written object in place;
    loads that hit an unreadable or mismatched file discard it and
    report a miss. Instances are picklable (plain path + strings) so a
    process-pool initializer can reopen the same store in workers.

    Subclasses pick the payload field name (``payload_field``) and may
    tighten :meth:`_validate`; the on-disk envelope always carries
    ``schema`` / ``namespace`` / ``key`` headers so stores with
    different payloads can safely share one directory tree (distinct
    keys) or be told apart (mismatched field is a miss).
    """

    #: Name of the payload slot inside the on-disk envelope.
    payload_field = "value"

    def __init__(
        self,
        root: str | Path | None = None,
        namespace: str | None = None,
        version: int = PERSISTENT_SCHEMA_VERSION,
    ):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or (
                Path.home() / ".cache" / "repro"
            )
        self.root = Path(root)
        if namespace is None:
            namespace = (
                f"py{sys.version_info[0]}{sys.version_info[1]}"
                f"-{repro_code_hash()}"
            )
        self.namespace = namespace
        self.version = version

    @property
    def store_dir(self) -> Path:
        return self.root / f"v{self.version}" / self.namespace

    def path_for(self, key: str) -> Path:
        digest = hashlib.blake2b(key.encode(), digest_size=16).hexdigest()
        return self.store_dir / f"{digest}.pkl"

    def _validate(self, value: Any) -> bool:
        """Whether a deserialized payload is shaped as expected;
        anything failing this is discarded as corrupt."""
        return value is not None

    def get(self, key: str) -> Any | None:
        """The object stored under ``key``, or ``None``.

        Any failure — missing file, truncated/corrupt pickle, or a
        payload whose schema/namespace/key does not match — is a miss;
        unreadable files are removed so they cannot fail again.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            # Missing file or a transient read failure (EIO, EACCES,
            # sharing violation): a miss, but never destroy the file —
            # it may be perfectly good on the next attempt.
            return None
        try:
            payload = pickle.loads(data)
        except Exception:
            # The bytes themselves are bad (truncated/corrupt pickle):
            # discard so the store recovers on the next spill.
            self._discard(path)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != self.version
            or payload.get("namespace") != self.namespace
            or payload.get("key") != key
            or self.payload_field not in payload
            or not self._validate(payload[self.payload_field])
        ):
            self._discard(path)
            return None
        return payload[self.payload_field]

    def put(self, key: str, value: Any) -> Path:
        """Atomically write ``value`` under ``key``; returns the
        object's path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": self.version,
            "namespace": self.namespace,
            "key": key,
            self.payload_field: value,
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            self._discard(Path(tmp))
            raise
        return path

    def invalidate(self, key: str | None = None) -> None:
        """Drop one object (``key``) or the whole namespace."""
        if key is not None:
            self._discard(self.path_for(key))
        else:
            shutil.rmtree(self.store_dir, ignore_errors=True)

    def prune_stale_versions(self) -> int:
        """Remove object directories of other schema versions;
        returns how many were swept."""
        current = f"v{self.version}"
        swept = 0
        try:
            entries = list(self.root.iterdir())
        except OSError:
            return 0
        for entry in entries:
            if (
                entry.is_dir()
                and entry.name.startswith("v")
                and entry.name != current
                and entry.name[1:].isdigit()
            ):
                shutil.rmtree(entry, ignore_errors=True)
                swept += 1
        return swept

    def sibling(self, suffix: str) -> "ObjectStore":
        """A plain :class:`ObjectStore` sharing this store's root and
        version but namespaced ``<namespace>-<suffix>``.

        The distributed layer uses this to park candidate streams and
        other shared blobs next to the analysis snapshots without the
        two payload shapes ever colliding on a key.
        """
        return ObjectStore(
            root=self.root,
            namespace=f"{self.namespace}-{suffix}",
            version=self.version,
        )

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass


class PersistentCache(ObjectStore):
    """On-disk tier for analysis-cache snapshots.

    An :class:`ObjectStore` whose payload is a stage-state snapshot
    (``AnalysisCache.export_state()``): a dict of stage name → entry
    pairs, stored under the envelope field ``"stages"`` — the exact
    on-disk format this class wrote before it grew the generic base,
    so existing stores stay readable. ``key`` is derived from
    workload/design content (see
    :func:`repro.model.engine.persistent_state_key`).
    """

    payload_field = "stages"

    def _validate(self, value: Any) -> bool:
        return isinstance(value, dict)

    def load(self, key: str) -> dict[str, list[tuple[Any, Any]]] | None:
        """The stage-state snapshot stored under ``key``, or ``None``."""
        return self.get(key)

    def store(
        self, key: str, stages: dict[str, list[tuple[Any, Any]]]
    ) -> Path:
        """Atomically write ``stages`` (an ``export_state()`` snapshot)
        under ``key``; returns the snapshot path."""
        return self.put(key, dict(stages))


_GLOBAL_CACHE: AnalysisCache | None = None


def global_cache() -> AnalysisCache:
    """The process-wide :class:`AnalysisCache`.

    Hosts stages whose results are independent of any evaluator's
    configuration and therefore safe to share process-wide — currently
    the ``"tile-format"`` stage used by
    :mod:`repro.sparse.format_analyzer`.
    """
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = AnalysisCache()
    return _GLOBAL_CACHE
