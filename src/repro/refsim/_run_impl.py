"""Implementation of the cycle-level simulator's main loop.

Separated from :mod:`repro.refsim.simulator` to keep the state-heavy
execution kernel readable. The kernel tracks, per spatial instance and
per cycle: tile residency (fills/drains/refills with stationarity),
operand latches with broadcast (multicast) de-duplication, and
reduction-tree-merged output updates — mirroring the semantics the
analytical model prices statistically.
"""

from __future__ import annotations

import numpy as np

from repro.refsim import simulator as _sim


def run_simulation(sim) -> "_sim.SimulationCounts":
    counts = _sim.SimulationCounts()
    dims = list(sim.einsum.dims)
    dim_coords = {d: 0 for d in dims}
    loops = sim.loops
    loop_indices = [0] * len(loops)

    inputs = sim.einsum.inputs
    output = sim.einsum.output
    keep_innermost = {
        t.name: sim.mapping.keep_chain(t.name)[-1]
        for t in sim.einsum.tensors
    }
    chains = {
        t.name: sim.mapping.keep_chain(t.name) for t in sim.einsum.tensors
    }

    spatial_positions = [i for i, rec in enumerate(loops) if rec.spatial]
    temporal_positions = [i for i, rec in enumerate(loops) if not rec.spatial]

    def instance_key(depth: int) -> tuple[int, ...]:
        return tuple(
            loop_indices[i] for i in spatial_positions if i < depth
        )

    def temporal_key(depth: int) -> tuple[int, ...]:
        return tuple(
            loop_indices[i] for i in temporal_positions if i < depth
        )

    tile_extents = {
        idx: sim._tile_extents(idx) for idx in range(sim.num_levels)
    }

    # ------------------------------------------------------------------
    # Tile residency state (per level, tensor, instance).
    last_origin: dict[tuple, tuple] = {}
    seen_origins: dict[tuple, set] = {}
    pending_drain: dict[tuple, dict[str, int]] = {}
    last_parent_read: dict[tuple, tuple] = {}
    drained_parent: set = set()

    out_data = sim.data[output.name].astype(float).copy()

    def tile_words(level_name: str, tensor, tile) -> float:
        if sim._is_compressed(level_name, tensor.name):
            return float(np.count_nonzero(tile))
        return float(tile.size)

    def output_tile(origin_coords: dict[str, int], level_index: int):
        extents = tile_extents[level_index]
        arr_slices = []
        for rank in output.ranks:
            start = 0
            span = 0
            for term in rank.terms:
                start += term.coefficient * origin_coords.get(term.dim, 0)
                span += term.coefficient * (extents.get(term.dim, 1) - 1)
            arr_slices.append(slice(start, start + span + 1))
        return out_data[tuple(arr_slices)]

    # ------------------------------------------------------------------
    # Output accumulation state.
    out_written: dict[tuple, int] = {}
    out_episode = [0]
    out_latch: dict[tuple, tuple] = {}
    out_name = output.name
    out_level = keep_innermost[out_name]
    out_level_index = sim.level_names.index(out_level)
    # Spatial loops at/below the output's keeping level that are
    # irrelevant to it merge updates in a reduction tree.
    out_relevant_spatial = [
        i
        for i in spatial_positions
        if loops[i].level_index <= out_level_index
        and loops[i].dim in output.dims
    ]
    out_red = 1
    for i in spatial_positions:
        if (
            loops[i].level_index <= out_level_index
            and loops[i].dim not in output.dims
        ):
            out_red *= loops[i].bound

    # ------------------------------------------------------------------
    # Operand latch / broadcast state.
    latched: dict[tuple, tuple] = {}
    bcast_seen: dict[str, set] = {t.name: set() for t in inputs}
    current_cycle = [None]

    skip_leaders, gate_leaders = sim.skip_leaders, sim.gate_leaders
    storage_skip_on, storage_gate_on = sim.storage_skip_on, sim.storage_gate_on

    def drain_output(level_index: int, inst: tuple) -> None:
        key = (level_index, out_name, inst)
        snapshot = pending_drain.pop(key, None)
        if snapshot is None:
            return
        level_name = sim.level_names[level_index]
        tile = output_tile(snapshot, level_index)
        words = tile_words(level_name, output, tile)
        chain = chains[out_name]
        pos = chain.index(level_name)
        counts.read_counter(level_name, out_name).actual += words
        if pos > 0:
            parent = chain[pos - 1]
            parent_words = tile_words(parent, output, tile)
            counts.write_counter(parent, out_name).actual += parent_words

    def mark_refilled(origin: tuple, level_index: int) -> None:
        extents = tile_extents[level_index]
        out_episode[0] += 1
        episode = out_episode[0]
        shape = output.tile_rank_extents(extents)
        grids = np.indices(shape).reshape(len(shape), -1).T
        for offset in grids:
            coords = tuple(o + g for o, g in zip(origin, offset))
            out_written[coords] = episode

    def handle_fills(depth: int) -> None:
        for level_index in range(sim.num_levels - 1, -1, -1):
            if sim._prefix[level_index] != depth:
                continue
            level_name = sim.level_names[level_index]
            inst = instance_key(depth)
            t_key = temporal_key(depth)
            for tensor in sim.einsum.tensors:
                chain = chains[tensor.name]
                if level_name not in chain:
                    continue
                if chain.index(level_name) == 0:
                    continue
                origin = sim._tensor_coords(tensor, dim_coords)
                key = (level_index, tensor.name, inst)
                if last_origin.get(key) == origin:
                    continue
                if tensor.is_output:
                    drain_output(level_index, inst)
                    last_origin[key] = origin
                    pending_drain[key] = dict(dim_coords)
                    seen = seen_origins.setdefault(key, set())
                    if origin in seen:
                        tile = output_tile(dict(dim_coords), level_index)
                        refill = tile_words(level_name, tensor, tile)
                        counts.write_counter(
                            level_name, tensor.name
                        ).actual += refill
                        parent = chain[chain.index(level_name) - 1]
                        counts.read_counter(parent, tensor.name).actual += (
                            tile_words(parent, tensor, tile)
                        )
                        if level_name == chain[-1]:
                            mark_refilled(origin, level_index)
                    seen.add(origin)
                    continue
                last_origin[key] = origin
                tile = sim._tile_slice(
                    tensor, dim_coords, tile_extents[level_index]
                )
                words = tile_words(level_name, tensor, tile)
                counts.fills[(level_name, tensor.name)] = (
                    counts.fills.get((level_name, tensor.name), 0.0) + words
                )
                counts.write_counter(level_name, tensor.name).actual += words
                # One parent read can be multicast to sibling instances
                # requesting the same tile in the same temporal step.
                parent = chain[chain.index(level_name) - 1]
                read_key = (level_index, tensor.name)
                if last_parent_read.get(read_key) != (t_key, origin):
                    last_parent_read[read_key] = (t_key, origin)
                    counts.read_counter(parent, tensor.name).actual += (
                        tile_words(parent, tensor, tile)
                    )

    def compute_slot() -> None:
        cycle = temporal_key(len(loops))
        if cycle != current_cycle[0]:
            current_cycle[0] = cycle
            for seen in bcast_seen.values():
                seen.clear()
        lane = instance_key(len(loops))

        operand_values = {}
        for tensor in inputs:
            coords = sim._tensor_coords(tensor, dim_coords)
            operand_values[tensor.name] = (
                sim.data[tensor.name][coords],
                coords,
            )
        skipped = any(
            operand_values[name][0] == 0
            for name in operand_values
            if name in skip_leaders
        )
        gated = False
        if skipped:
            counts.computes.skipped += 1
        else:
            gated = any(
                operand_values[name][0] == 0
                for name in operand_values
                if name in gate_leaders
            )
            if gated:
                counts.computes.gated += 1
            else:
                counts.computes.actual += 1

        # Operand fetches: explicit storage SAFs (or the tensor's own
        # walked metadata) eliminate them; compute-only skipping does
        # not. A fetch serves all lanes needing the same datum this
        # cycle (broadcast), and each lane latches its datum across
        # cycles where its coordinate is unchanged.
        for tensor in inputs:
            name = tensor.name
            value, coords = operand_values[name]
            level = keep_innermost[name]
            compressed = sim._is_compressed(level, name)
            fetch_skipped = any(
                operand_values.get(leader, (1,))[0] == 0
                for leader in storage_skip_on.get(name, ())
            )
            if value == 0 and compressed and name in skip_leaders:
                fetch_skipped = True
            if fetch_skipped:
                continue
            latch_key = (name, lane)
            if latched.get(latch_key) == coords:
                continue
            latched[latch_key] = coords
            if coords in bcast_seen[name]:
                continue  # broadcast already fetched this datum
            bcast_seen[name].add(coords)
            counter = counts.read_counter(level, name)
            fetch_gated = any(
                operand_values.get(leader, (1,))[0] == 0
                for leader in storage_gate_on.get(name, ())
            )
            if value == 0 and compressed:
                fetch_gated = True
            if fetch_gated:
                counter.gated += 1
            else:
                counter.actual += 1

        if skipped:
            return
        coords = sim._tensor_coords(output, dim_coords)
        if gated:
            counts.write_counter(out_level, out_name).gated += 1.0 / out_red
            return
        product = 1.0
        for value, _c in operand_values.values():
            product *= float(value)
        out_data[coords] += product
        # The accumulator (one per output-relevant lane group, fed by a
        # reduction tree across the irrelevant lanes) writes back when
        # its output coordinate changes.
        group = tuple(loop_indices[i] for i in out_relevant_spatial)
        if out_latch.get(group) == coords:
            return
        out_latch[group] = coords
        counts.write_counter(out_level, out_name).actual += 1
        if out_written.get(coords) == out_episode[0]:
            counts.read_counter(out_level, out_name).actual += 1
        out_written[coords] = out_episode[0]

    def recurse(depth: int) -> None:
        handle_fills(depth)
        if depth == len(loops):
            compute_slot()
            return
        rec = loops[depth]
        base = dim_coords[rec.dim]
        for i in range(rec.bound):
            loop_indices[depth] = i
            dim_coords[rec.dim] = base + i * rec.stride
            recurse(depth + 1)
        dim_coords[rec.dim] = base
        loop_indices[depth] = 0

    recurse(0)
    for level_index in range(sim.num_levels):
        for key in [
            k for k in list(pending_drain) if k[0] == level_index
        ]:
            drain_output(level_index, key[2])
    sim.output_data = out_data
    counts.cycles = counts.computes.cycled / sim.spatial_fanout
    return counts
