"""Cycle-level simulation of a mapped loop nest over actual data.

The simulator executes every point of the iteration space in schedule
order (the mapping's loop nest), tracking:

* compute slots, classified actual / gated / skipped by real
  per-element intersection of the operand values,
* operand reads at each tensor's innermost keeping level, with
  operand-latch reuse (a read only when the operand coordinate
  changes),
* tile fill/drain traffic at every storage level, with stationarity
  (a fill only when the resident tile's origin changes) and
  compressed-format word counts from the actual nonzero counts,
* output accumulation (read-modify-write) behaviour.

It is deliberately an *actual-data, per-operation* simulator — the
class of baseline the paper validates against and compares simulation
speed with (Table 5). It is orders of magnitude slower than the
analytical model, which is the point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.spec import Architecture
from repro.common.errors import SpecError
from repro.common.util import prod
from repro.mapping.mapping import Mapping
from repro.sparse.saf import SAFKind, SAFSpec
from repro.workload.einsum import EinsumSpec, TensorRef


@dataclass
class ActionCounts:
    actual: float = 0.0
    gated: float = 0.0
    skipped: float = 0.0

    @property
    def total(self) -> float:
        return self.actual + self.gated + self.skipped

    @property
    def cycled(self) -> float:
        return self.actual + self.gated


@dataclass
class SimulationCounts:
    """All counters produced by one simulation run."""

    computes: ActionCounts = field(default_factory=ActionCounts)
    #: (level, tensor) -> reads / writes counters (data words).
    reads: dict[tuple[str, str], ActionCounts] = field(default_factory=dict)
    writes: dict[tuple[str, str], ActionCounts] = field(default_factory=dict)
    fills: dict[tuple[str, str], float] = field(default_factory=dict)
    cycles: float = 0.0

    def read_counter(self, level: str, tensor: str) -> ActionCounts:
        return self.reads.setdefault((level, tensor), ActionCounts())

    def write_counter(self, level: str, tensor: str) -> ActionCounts:
        return self.writes.setdefault((level, tensor), ActionCounts())


@dataclass(frozen=True)
class _LoopRec:
    dim: str
    bound: int
    level_index: int
    spatial: bool
    stride: int  # contribution of one iteration to the dim coordinate


class CycleLevelSimulator:
    """Execute a mapping over actual tensor data and count everything.

    ``data`` maps tensor names to dense numpy arrays whose shapes match
    ``einsum.tensor_shape``. SAF semantics honoured: compressed formats
    (word counts follow actual nonzeros), compute gating/skipping, and
    leader-follower storage skipping at both compute-feed and transfer
    granularity.
    """

    def __init__(
        self,
        einsum: EinsumSpec,
        arch: Architecture,
        mapping: Mapping,
        data: dict[str, np.ndarray],
        safs: SAFSpec | None = None,
    ):
        self.einsum = einsum
        self.arch = arch
        self.mapping = mapping
        self.safs = safs or SAFSpec()
        mapping.validate(einsum, arch)
        self.data = {}
        for tensor in einsum.tensors:
            if tensor.name not in data:
                raise SpecError(f"no data provided for tensor {tensor.name!r}")
            arr = np.asarray(data[tensor.name])
            want = einsum.tensor_shape(tensor.name)
            if tuple(arr.shape) != tuple(want):
                raise SpecError(
                    f"tensor {tensor.name!r} data shape {arr.shape} != "
                    f"expected {want}"
                )
            self.data[tensor.name] = arr

        self._build_loops()
        self._classify_saf_roles()

    # ------------------------------------------------------------------
    # Setup

    def _build_loops(self) -> None:
        level_maps = list(reversed(self.mapping.levels))  # inner-first
        num_levels = len(level_maps)
        raw: list[tuple[str, int, int, bool]] = []
        for idx in range(num_levels - 1, -1, -1):
            lm = level_maps[idx]
            for loop in lm.temporal:
                raw.append((loop.dim, loop.bound, idx, False))
            for loop in lm.spatial:
                raw.append((loop.dim, loop.bound, idx, True))
        # Strides: product of bounds of later (inner) loops of same dim.
        loops: list[_LoopRec] = []
        for pos, (dim, bound, level, spatial) in enumerate(raw):
            stride = 1
            for dim2, bound2, _l2, _s2 in raw[pos + 1 :]:
                if dim2 == dim:
                    stride *= bound2
            loops.append(_LoopRec(dim, bound, level, spatial, stride))
        self.loops = loops
        self.num_levels = num_levels
        self.level_names = [lm.level for lm in level_maps]
        # Prefix length per level: loops at levels strictly above it.
        self._prefix: dict[int, int] = {}
        for level in range(num_levels - 1, -1, -1):
            self._prefix[level] = sum(
                1 for rec in loops if rec.level_index > level
            )
        self.spatial_fanout = int(
            prod(rec.bound for rec in loops if rec.spatial)
        )

    def _classify_saf_roles(self) -> None:
        """Which tensors drive skipping/gating at the compute units, and
        which storage fetches each SAF eliminates."""
        inputs = {t.name for t in self.einsum.inputs}
        self.skip_leaders: set[str] = set()
        self.gate_leaders: set[str] = set()
        #: target tensor -> leaders whose zeros eliminate its fetches.
        self.storage_skip_on: dict[str, set[str]] = {}
        self.storage_gate_on: dict[str, set[str]] = {}
        for saf in self.safs.compute_safs:
            conditioned = set(saf.conditioned_on) or inputs
            target = (
                self.skip_leaders
                if saf.kind is SAFKind.SKIP
                else self.gate_leaders
            )
            target |= conditioned & inputs
        for saf in self.safs.storage_safs:
            leaders = set(saf.conditioned_on) & inputs
            table = (
                self.storage_skip_on
                if saf.kind is SAFKind.SKIP
                else self.storage_gate_on
            )
            table.setdefault(saf.target, set()).update(leaders)
            if saf.kind is SAFKind.SKIP:
                self.skip_leaders |= leaders
            else:
                self.gate_leaders |= leaders
        # Compressed operand formats walked by skipping hardware.
        for tensor in self.einsum.inputs:
            chain = self.mapping.keep_chain(tensor.name)
            fmt = self.safs.format_for(chain[-1], tensor.name)
            if fmt is not None and fmt.is_compressed:
                if tensor.name in self.skip_leaders | self.gate_leaders:
                    continue
                self.gate_leaders.add(tensor.name)
        self.gate_leaders -= self.skip_leaders

    def _is_compressed(self, level: str, tensor: str) -> bool:
        fmt = self.safs.format_for(level, tensor)
        return fmt is not None and fmt.is_compressed

    # ------------------------------------------------------------------
    # Helpers over the iteration state

    def _tensor_coords(
        self, tensor: TensorRef, dim_coords: dict[str, int]
    ) -> tuple[int, ...]:
        coords = []
        for rank in tensor.ranks:
            value = 0
            for term in rank.terms:
                value += term.coefficient * dim_coords.get(term.dim, 0)
            coords.append(value)
        return tuple(coords)

    def _tile_slice(
        self,
        tensor: TensorRef,
        origin_coords: dict[str, int],
        extents: dict[str, int],
    ) -> np.ndarray:
        arr = self.data[tensor.name]
        slices = []
        for rank in tensor.ranks:
            start = 0
            span = 0
            for term in rank.terms:
                start += term.coefficient * origin_coords.get(term.dim, 0)
                span += term.coefficient * (extents.get(term.dim, 1) - 1)
            slices.append(slice(start, start + span + 1))
        return arr[tuple(slices)]

    def _tile_extents(self, level_index: int) -> dict[str, int]:
        extents = {d: 1 for d in self.einsum.dims}
        for rec in self.loops:
            if rec.level_index <= level_index:
                extents[rec.dim] *= rec.bound
        return extents

    # ------------------------------------------------------------------
    # Main run

    def run(self) -> SimulationCounts:
        """Execute the mapped loop nest over the actual data.

        Delegates to :func:`repro.refsim._run_impl.run_simulation`,
        which implements the instance-aware execution kernel. After the
        run, ``self.output_data`` holds the computed output tensor.
        """
        from repro.refsim._run_impl import run_simulation

        return run_simulation(self)
