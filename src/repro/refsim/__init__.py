"""Cycle-level reference simulator (validation substrate).

Plays the role of the design-specific simulators and STONNE-style
cycle-level baselines the paper validates against (Table 5, Fig. 11,
Fig. 12): it iterates *actual tensor data* through the mapped loop
nest, performing real per-element intersection checks, and counts every
storage access and compute slot.
"""

from repro.refsim.simulator import CycleLevelSimulator, SimulationCounts

__all__ = ["CycleLevelSimulator", "SimulationCounts"]
