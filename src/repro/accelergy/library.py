"""Primitive component energy models.

Per-action energies follow public 45nm numbers (Horowitz ISSCC'14 and
the Eyeriss energy hierarchy: RF ~ 1x, NoC ~ 2x, global buffer ~ 6x,
DRAM ~ 200x a MAC). SRAM access energy scales with the square root of
capacity (CACTI-flavored) and linearly with access width. The paper's
artifact makes the same substitution of a public node for the authors'
proprietary technology data.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.common.errors import SpecError

#: Reference data word width all base energies are calibrated at.
REFERENCE_WORD_BITS = 16


class ComponentModel(ABC):
    """Base class for primitive components.

    ``attrs`` carries instance attributes from the architecture spec
    (e.g. capacity, word width); models read what they need and ignore
    the rest, mirroring Accelergy's attribute-passing style.
    """

    def __init__(self, attrs: dict | None = None):
        self.attrs = dict(attrs or {})

    @abstractmethod
    def energy_per_action(self, action: str) -> float:
        """Energy in pJ for one action (e.g. 'read', 'write', 'op')."""

    @property
    def gated_fraction(self) -> float:
        """Energy of a gated action relative to an actual one.

        Clock/control overhead remains when a unit idles for a cycle;
        10% is a representative figure and can be overridden per level
        via ``component_attrs={'gated_fraction': ...}``.
        """
        return float(self.attrs.get("gated_fraction", 0.10))

    def _width_scale(self, bits_attr: str = "word_bits") -> float:
        bits = float(self.attrs.get(bits_attr, REFERENCE_WORD_BITS))
        return bits / REFERENCE_WORD_BITS


class DramModel(ComponentModel):
    """Off-chip DRAM: flat per-word access energy (pin + array)."""

    BASE_PJ = 200.0  # per 16-bit word

    def energy_per_action(self, action: str) -> float:
        if action in ("read", "write"):
            return self.BASE_PJ * self._width_scale()
        if action in ("metadata_read", "metadata_write"):
            return self.BASE_PJ * self._width_scale("metadata_word_bits")
        raise SpecError(f"dram has no action {action!r}")


class SramModel(ComponentModel):
    """On-chip SRAM: energy scales with sqrt(capacity) and width."""

    BASE_PJ = 1.1  # per 16-bit access of a 1KB array
    WRITE_FACTOR = 1.1

    def _capacity_scale(self) -> float:
        capacity_words = float(self.attrs.get("capacity_words") or 1024.0)
        word_bits = float(self.attrs.get("word_bits", REFERENCE_WORD_BITS))
        kib = max(0.0625, capacity_words * word_bits / 8.0 / 1024.0)
        return math.sqrt(kib)

    def energy_per_action(self, action: str) -> float:
        base = self.BASE_PJ * self._capacity_scale()
        if action == "read":
            return base * self._width_scale()
        if action == "write":
            return base * self.WRITE_FACTOR * self._width_scale()
        if action == "metadata_read":
            return base * self._width_scale("metadata_word_bits")
        if action == "metadata_write":
            return (
                base * self.WRITE_FACTOR * self._width_scale("metadata_word_bits")
            )
        raise SpecError(f"sram has no action {action!r}")


class RegFileModel(ComponentModel):
    """Small register file / scratchpad near the compute units."""

    BASE_PJ = 0.45  # per 16-bit access

    def energy_per_action(self, action: str) -> float:
        if action in ("read", "write"):
            return self.BASE_PJ * self._width_scale()
        if action in ("metadata_read", "metadata_write"):
            return self.BASE_PJ * self._width_scale("metadata_word_bits")
        raise SpecError(f"regfile has no action {action!r}")


class LatchModel(ComponentModel):
    """Pipeline latch / operand register (cheapest storage)."""

    BASE_PJ = 0.08

    def energy_per_action(self, action: str) -> float:
        if action in ("read", "write", "metadata_read", "metadata_write"):
            return self.BASE_PJ * self._width_scale()
        raise SpecError(f"latch has no action {action!r}")


class MacModel(ComponentModel):
    """Multiply-accumulate unit (16-bit fixed point by default)."""

    BASE_PJ = 2.2

    def energy_per_action(self, action: str) -> float:
        if action == "op":
            # Multiplier energy grows ~quadratically with width.
            return self.BASE_PJ * self._width_scale() ** 2
        raise SpecError(f"mac has no action {action!r}")


class IntersectionModel(ComponentModel):
    """Metadata intersection / coordinate comparison unit."""

    BASE_PJ = 0.25

    def energy_per_action(self, action: str) -> float:
        if action in ("op", "check"):
            return self.BASE_PJ
        raise SpecError(f"intersection unit has no action {action!r}")


COMPONENT_LIBRARY: dict[str, type[ComponentModel]] = {
    "dram": DramModel,
    "sram": SramModel,
    "regfile": RegFileModel,
    "latch": LatchModel,
    "mac": MacModel,
    "intersection": IntersectionModel,
}


def build_component(name: str, attrs: dict | None = None) -> ComponentModel:
    """Instantiate a component model from the library by class name."""
    try:
        cls = COMPONENT_LIBRARY[name]
    except KeyError:
        raise SpecError(
            f"unknown component class {name!r}; library has "
            f"{sorted(COMPONENT_LIBRARY)}"
        ) from None
    return cls(attrs)
