"""The Accelergy backend: binds architecture levels to energy models."""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.accelergy.library import ComponentModel, build_component


@dataclass(frozen=True)
class StorageEnergy:
    """Per-action energies (pJ) of one storage level."""

    read: float
    write: float
    metadata_read: float
    metadata_write: float
    gated_fraction: float

    def action_energy(self, action: str, kind: str) -> float:
        """Energy of one fine-grained action.

        ``action`` is read/write/metadata_read/metadata_write; ``kind``
        is actual/gated/skipped.
        """
        base = getattr(self, action)
        if kind == "actual":
            return base
        if kind == "gated":
            return base * self.gated_fraction
        if kind == "skipped":
            return 0.0
        raise ValueError(f"unknown action kind {kind!r}")


@dataclass(frozen=True)
class ComputeEnergy:
    """Per-operation energies (pJ) of the compute level."""

    op: float
    gated_fraction: float

    def action_energy(self, kind: str) -> float:
        if kind == "actual":
            return self.op
        if kind == "gated":
            return self.op * self.gated_fraction
        if kind == "skipped":
            return 0.0
        raise ValueError(f"unknown action kind {kind!r}")


class Accelergy:
    """Energy estimation backend for an architecture.

    Builds one component model per storage level (passing through the
    level's capacity/width attributes) plus the compute model, and
    exposes per-action energies to the micro-architecture step.
    """

    def __init__(self, arch: Architecture):
        self.arch = arch
        self._storage: dict[str, StorageEnergy] = {}
        self._models: dict[str, ComponentModel] = {}
        for level in arch.levels:
            self._storage[level.name] = self._build_storage(level)
        self._compute = self._build_compute(arch.compute)

    def _build_storage(self, level: StorageLevel) -> StorageEnergy:
        attrs = {
            "capacity_words": level.capacity_words,
            "word_bits": level.word_bits,
            "metadata_word_bits": level.metadata_word_bits,
            **level.component_attrs,
        }
        model = build_component(level.component, attrs)
        self._models[level.name] = model
        return StorageEnergy(
            read=model.energy_per_action("read"),
            write=model.energy_per_action("write"),
            metadata_read=model.energy_per_action("metadata_read"),
            metadata_write=model.energy_per_action("metadata_write"),
            gated_fraction=model.gated_fraction,
        )

    def _build_compute(self, compute: ComputeLevel) -> ComputeEnergy:
        model = build_component(compute.component, dict(compute.component_attrs))
        self._models[compute.name] = model
        return ComputeEnergy(
            op=model.energy_per_action("op"),
            gated_fraction=model.gated_fraction,
        )

    def storage(self, level_name: str) -> StorageEnergy:
        return self._storage[level_name]

    @property
    def compute(self) -> ComputeEnergy:
        return self._compute

    def component(self, name: str) -> ComponentModel:
        return self._models[name]
