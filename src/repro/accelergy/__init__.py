"""Mini-Accelergy: architecture-level energy estimation backend.

The paper uses Accelergy [54] to translate fine-grained action counts
into energy. This subpackage provides the same role: a library of
primitive components (DRAM, SRAM, register file, MAC, intersection
unit) with analytically-scaled per-action energies on a public
45nm-flavored calibration, and a backend that binds architecture
levels to component models.
"""

from repro.accelergy.backend import Accelergy, ComputeEnergy, StorageEnergy
from repro.accelergy.library import COMPONENT_LIBRARY, ComponentModel

__all__ = [
    "Accelergy",
    "StorageEnergy",
    "ComputeEnergy",
    "ComponentModel",
    "COMPONENT_LIBRARY",
]
