"""Sparse modeling step: density models, format models, SAF analyzers."""

from repro.sparse.density import (
    ActualDataDensity,
    BandedDensity,
    DensityModel,
    FixedStructuredDensity,
    StructuredNMDensity,
    UniformDensity,
)
from repro.sparse.formats import (
    Bitmask,
    CoordinatePayload,
    FormatSpec,
    RankFormat,
    RunLengthEncoding,
    Uncompressed,
    UncompressedOffsetPairs,
    classic_format,
)
from repro.sparse.saf import ComputeSAF, SAFSpec, StorageSAF

__all__ = [
    "DensityModel",
    "UniformDensity",
    "FixedStructuredDensity",
    "StructuredNMDensity",
    "BandedDensity",
    "ActualDataDensity",
    "RankFormat",
    "Uncompressed",
    "Bitmask",
    "CoordinatePayload",
    "RunLengthEncoding",
    "UncompressedOffsetPairs",
    "FormatSpec",
    "classic_format",
    "SAFSpec",
    "StorageSAF",
    "ComputeSAF",
]
