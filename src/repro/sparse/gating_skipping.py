"""Gating/Skipping analyzer (Sec 5.3.4).

Evaluates how many ineffectual operations each gating/skipping SAF
eliminates. The crux is identifying the *leader tile*: the region of
the leader tensor that a follower access is exclusively paired with,
which is determined by the data reuse the mapping creates (Fig. 10).

* For compute-feed accesses, the follower datum stays latched at the
  compute unit across the innermost run of loops irrelevant to it; the
  leader tile spans exactly those loops.
* For tile transfers, the follower tile's residency episode spans the
  child tile plus the outside loops it is stationary across; the leader
  tile spans that episode.

The probability that a leader tile is empty comes from the leader's
statistical density model; with multiple hierarchical SAFs on the same
leader, the elimination events nest, so the analyzer keeps the finest
granularity (minimum keep probability) rather than multiplying.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SpecError
from repro.dataflow.nest_analysis import DenseTraffic
from repro.sparse.saf import SAFKind, SAFSpec, StorageSAF
from repro.workload.einsum import TensorRef


@dataclass(frozen=True, slots=True)
class EliminationSource:
    """One elimination mechanism acting on a flow.

    ``keep`` is the probability an operation survives this source
    (e.g. P(leader tile nonempty)). Sources with the same ``leader``
    describe nested events at different granularities and are combined
    by minimum keep; independent leaders multiply.
    """

    kind: SAFKind
    leader: str
    keep: float
    origin: str = ""
    #: True when an explicit storage-SAF intersection unit produces
    #: this source; each decided operation then costs a check.
    is_intersection: bool = False


@dataclass(frozen=True, slots=True)
class FlowClassification:
    """Fractions of a flow's operations that are skipped/gated/actual."""

    actual: float
    gated: float
    skipped: float

    @classmethod
    def from_sources(
        cls, sources: list[EliminationSource]
    ) -> "FlowClassification":
        if not sources:
            # Identical to running the combination on zero sources
            # (k_skip = k_gate = 1): the flow survives untouched.
            return NO_ELIMINATION
        skip_keeps: dict[str, float] = {}
        gate_keeps: dict[str, float] = {}
        for src in sources:
            table = skip_keeps if src.kind is SAFKind.SKIP else gate_keeps
            prev = table.get(src.leader, 1.0)
            table[src.leader] = min(prev, src.keep)
        k_skip = 1.0
        for keep in skip_keeps.values():
            k_skip *= keep
        k_gate = 1.0
        for leader, keep in gate_keeps.items():
            # A gate source nested inside a skip source on the same
            # leader only gates what the skip did not already remove.
            nested_skip = skip_keeps.get(leader, 1.0)
            if nested_skip > 0:
                keep = min(1.0, keep / nested_skip)
            k_gate *= keep
        actual = k_skip * k_gate
        gated = k_skip * (1.0 - k_gate)
        skipped = 1.0 - k_skip
        return cls(actual=actual, gated=gated, skipped=skipped)


NO_ELIMINATION = FlowClassification(actual=1.0, gated=0.0, skipped=0.0)


class GatingSkippingAnalyzer:
    """Derives flow classifications for one (design, workload, mapping).

    The analyzer is constructed from the dense traffic (which carries
    the loop-nest view) and the design's SAF specification.
    """

    def __init__(
        self,
        dense: DenseTraffic,
        safs: SAFSpec,
        *,
        shared: dict | None = None,
    ):
        self.dense = dense
        self.safs = safs
        self.einsum = dense.workload.einsum
        self.workload = dense.workload
        self.nest = dense.nest
        # Per-analysis memos: many flows of one loop nest re-derive the
        # same leader keep probability (same leader, same pairing
        # extents) and the output-update classification re-collects the
        # compute sources. Memoising inside the analyzer keeps the
        # scalar and vectorized post-processing paths on the exact same
        # floats while removing the repeated dict/projection work.
        #
        # ``shared`` extends those memos *across* analyzers: the
        # candidates of one mapspace search share workload (densities),
        # SAF spec, and architecture, so leader keeps and the
        # mapping-structure-keyed classifications recur block after
        # block. Every shared entry is a pure function of its key given
        # that fixed context — callers own scoping the dict to it.
        self._shared = shared
        if shared is not None:
            self._keep_memo = shared.setdefault("keep", {})
        else:
            self._keep_memo = {}
        self._compute_sources: list[EliminationSource] | None = None
        self._inputs_innermost: tuple[str, ...] | None = None

    def _inputs_innermost_keeps(self) -> tuple[str, ...]:
        """Each input's innermost keeping level, in einsum order.

        Shared-memo keys for the compute-source collection and the
        update classification both hinge on exactly this projection of
        the mapping, so it is derived once per analyzer.
        """
        if self._inputs_innermost is None:
            keep_chain = self.dense.mapping.keep_chain
            self._inputs_innermost = tuple(
                keep_chain(t.name)[-1] for t in self.einsum.inputs
            )
        return self._inputs_innermost

    # ------------------------------------------------------------------
    # Leader tile computation

    def _leader_keep(
        self, leader_name: str, pair_extents: dict[str, int]
    ) -> float:
        """P(leader tile nonempty) for the given pairing extents."""
        memo_key = (leader_name, tuple(sorted(pair_extents.items())))
        cached = self._keep_memo.get(memo_key)
        if cached is not None:
            return cached
        leader = self.einsum.tensor(leader_name)
        extents = {d: pair_extents.get(d, 1) for d in self.einsum.dims}
        shape = leader.tile_rank_extents(extents)
        model = self.workload.density_of(leader_name)
        keep = model.prob_nonempty(shape)
        self._keep_memo[memo_key] = keep
        return keep

    def compute_feed_extents(self, follower: TensorRef) -> dict[str, int]:
        """Pairing extents for a compute-feed access of ``follower``."""
        return dict(self.dense.latch_extents.get(follower.name, {}))

    def transfer_extents(
        self, follower: TensorRef, child_level: str
    ) -> dict[str, int]:
        """Pairing extents for a tile transfer into ``child_level``."""
        child_index = self.dense.arch.level_index(child_level)
        return self.nest.episode_span_extents(child_index, follower.dims)

    # ------------------------------------------------------------------
    # Source collection per flow

    def storage_saf_sources(
        self,
        follower: TensorRef,
        saf: StorageSAF,
        pair_extents: dict[str, int],
    ) -> list[EliminationSource]:
        sources = []
        for leader_name in saf.conditioned_on:
            keep = self._leader_keep(leader_name, pair_extents)
            sources.append(
                EliminationSource(
                    kind=saf.kind,
                    leader=leader_name,
                    keep=keep,
                    origin=saf.describe(),
                    is_intersection=True,
                )
            )
        return sources

    def flow_sources(
        self, follower: TensorRef, flow_level: str
    ) -> list[EliminationSource]:
        """Sources acting on the flow of ``follower`` sourced at
        ``flow_level`` (compute-feed if innermost keeping level, else
        the transfer to the next keeping level below).

        SAFs at ancestor keeping levels propagate downward: a tile
        never delivered generates no lower-level traffic either. Each
        ancestor SAF keeps its own (coarser) granularity; the
        per-leader minimum-keep rule in
        :class:`FlowClassification` resolves the nesting.
        """
        chain = self.dense.mapping.keep_chain(follower.name)
        if flow_level not in chain:
            raise SpecError(
                f"flow level {flow_level!r} is not in {follower.name!r}'s "
                f"keep chain {chain}"
            )
        sources: list[EliminationSource] = []
        position = chain.index(flow_level)
        for level in chain[: position + 1]:
            for saf in self.safs.storage_safs_at(level):
                if saf.target != follower.name:
                    continue
                extents = self._granularity_for(follower, level, chain)
                sources.extend(
                    self.storage_saf_sources(follower, saf, extents)
                )
        # NOTE: compute SAFs do NOT appear here. Eliminating an operand
        # *fetch* requires an explicit storage SAF (Table 3); a design
        # that only skips compute (e.g. STC's post-fetch 4:2 selection)
        # still pays the full fetch bandwidth — the bottleneck of
        # Sec 7.1.3.
        return sources

    def _granularity_for(
        self, follower: TensorRef, saf_level: str, chain: list[str]
    ) -> dict[str, int]:
        """Pairing extents at which a SAF at ``saf_level`` operates."""
        if saf_level == chain[-1]:
            return self.compute_feed_extents(follower)
        child = chain[chain.index(saf_level) + 1]
        return self.transfer_extents(follower, child)

    def _own_format_source(
        self, follower: TensorRef, level: str
    ) -> EliminationSource | None:
        fmt = self.safs.format_for(level, follower.name)
        if fmt is None or not fmt.is_compressed:
            return None
        density = self.workload.density_of(follower.name).density
        kind = (
            SAFKind.SKIP
            if self._tensor_drives_skipping(follower.name)
            else SAFKind.GATE
        )
        return EliminationSource(
            kind=kind,
            leader=follower.name,
            keep=density,
            origin=f"compressed format at {level}",
        )

    def tensor_drives_skipping(self, tensor: str) -> bool:
        """Public alias used by the post-processing step."""
        return self._tensor_drives_skipping(tensor)

    def _tensor_drives_skipping(self, tensor: str) -> bool:
        """Whether the design walks this tensor's metadata to skip.

        True when any skipping SAF intersects on the tensor (it appears
        as a leader of a skip SAF, or a compute-skip SAF conditions on
        it / on all operands).
        """
        for saf in self.safs.storage_safs:
            if saf.kind is SAFKind.SKIP and tensor in saf.conditioned_on:
                return True
        for saf in self.safs.compute_safs:
            if saf.kind is not SAFKind.SKIP:
                continue
            if not saf.conditioned_on or tensor in saf.conditioned_on:
                return True
        return False

    # ------------------------------------------------------------------
    # Compute classification

    def compute_sources(self) -> list[EliminationSource]:
        """Elimination sources acting on the compute units.

        Combines explicit compute SAFs, implicit propagation from
        storage SAFs on the operand feeds, and compressed operand
        formats. All act at single-element granularity (keep = operand
        density).
        """
        if self._compute_sources is not None:
            return self._compute_sources
        shared = self._shared
        shared_key = None
        if shared is not None:
            # The collection depends on the mapping only through each
            # input's innermost keeping level (via the own-format
            # source); everything else is fixed search-wide.
            shared_key = ("compute-sources", self._inputs_innermost_keeps())
            cached = shared.get(shared_key)
            if cached is not None:
                self._compute_sources = cached
                return cached
        inputs = {t.name: t for t in self.einsum.inputs}
        sources: list[EliminationSource] = []
        for saf in self.safs.compute_safs:
            conditioned = saf.conditioned_on or tuple(inputs)
            for name in conditioned:
                if name not in inputs:
                    continue
                sources.append(
                    EliminationSource(
                        kind=saf.kind,
                        leader=name,
                        keep=self.workload.density_of(name).density,
                        origin=saf.describe(),
                    )
                )
        for saf in self.safs.storage_safs:
            if saf.target not in inputs and saf.target != self.einsum.output.name:
                continue
            if saf.target == self.einsum.output.name:
                continue  # output SAFs do not decide compute
            for leader_name in saf.conditioned_on:
                if leader_name not in inputs:
                    continue
                sources.append(
                    EliminationSource(
                        kind=saf.kind,
                        leader=leader_name,
                        keep=self.workload.density_of(leader_name).density,
                        origin=f"implicit from {saf.describe()}",
                    )
                )
        for name, tensor in inputs.items():
            chain = self.dense.mapping.keep_chain(name)
            own = self._own_format_source(tensor, chain[-1])
            if own is not None:
                sources.append(own)
        self._compute_sources = sources
        if shared_key is not None:
            shared[shared_key] = sources
        return sources

    def classify_compute(self) -> FlowClassification:
        shared = self._shared
        if shared is None:
            return FlowClassification.from_sources(self.compute_sources())
        # Pure function of the compute-source collection, which is
        # itself keyed by the inputs' innermost keeping levels.
        key = ("compute-cls", self._inputs_innermost_keeps())
        cached = shared.get(key)
        if cached is None:
            cached = FlowClassification.from_sources(self.compute_sources())
            shared[key] = cached
        return cached

    def classify_output_updates(self) -> FlowClassification:
        """Classification of accumulator write-backs.

        The accumulator flushes once per latch group (the innermost
        temporal loops irrelevant to the output, merged across the
        spatial reduction lanes); a flush is ineffectual only when
        *every* compute in its group was. Leader keeps are therefore
        re-evaluated at the group granularity rather than per compute.
        """
        out = self.einsum.output
        extents = dict(self.dense.latch_extents.get(out.name, {}))
        chain = self.dense.mapping.keep_chain(out.name)
        innermost_idx = self.dense.arch.level_index(chain[-1])
        for loop in self.nest.boundary_spatial(innermost_idx, -1):
            if loop.dim not in out.dims:
                extents[loop.dim] = extents.get(loop.dim, 1) * loop.bound
        shared = self._shared
        shared_key = None
        if shared is not None:
            # Fully determined by the compute-source collection (keyed
            # by the inputs' innermost keeping levels) and the group
            # extents — both mapping-derived, everything else fixed.
            shared_key = (
                "update-classification",
                self._inputs_innermost_keeps(),
                tuple(sorted(extents.items())),
            )
            cached = shared.get(shared_key)
            if cached is not None:
                return cached
        sources = [
            EliminationSource(
                kind=s.kind,
                leader=s.leader,
                keep=self._leader_keep(s.leader, extents),
                origin=f"{s.origin} (update group)",
            )
            for s in self.compute_sources()
        ]
        classification = FlowClassification.from_sources(sources)
        if shared_key is not None:
            shared[shared_key] = classification
        return classification

    def classify_flow(
        self, follower: TensorRef, flow_level: str
    ) -> FlowClassification:
        return FlowClassification.from_sources(
            self.flow_sources(follower, flow_level)
        )
