"""Format analyzer (Sec 5.3.3): representation overhead per stored tile.

For the tile a tensor keeps at a storage level, this module derives the
expected and worst-case storage occupancy in the level's representation
format: payload words (data values actually materialised) plus metadata
bits, rank by rank, using the statistical fiber characterisation from
the density model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.cache import global_cache
from repro.common.util import prod
from repro.sparse.density import DensityModel
from repro.sparse.formats import FormatSpec


@dataclass
class RankOccupancy:
    """Occupancy contribution of one format rank."""

    format_name: str
    fiber_shape: int
    stored_fibers: float
    nonempty_elements: float
    metadata_bits: float


@dataclass
class TileOccupancy:
    """Expected/worst-case storage occupancy of one tile in one format.

    ``payload_words`` counts the data values materialised (compressed
    formats store only nonzeros); ``metadata_bits`` is the total
    encoding overhead. ``dense_words`` is the uncompressed tile size for
    compression-rate computations.
    """

    dense_words: int
    payload_words: float
    metadata_bits: float
    worst_payload_words: float
    worst_metadata_bits: float
    per_rank: list[RankOccupancy] = field(default_factory=list)

    def occupancy_words(self, word_bits: int) -> float:
        """Expected total occupancy in data-word equivalents."""
        return self.payload_words + self.metadata_bits / word_bits

    def worst_occupancy_words(self, word_bits: int) -> float:
        return self.worst_payload_words + self.worst_metadata_bits / word_bits

    def compression_rate(self, word_bits: int) -> float:
        """Dense words divided by encoded words (higher = better)."""
        encoded = self.occupancy_words(word_bits)
        if encoded <= 0:
            return float("inf")
        return self.dense_words / encoded

    @property
    def payload_fraction(self) -> float:
        """Stored payload words per dense word (<= 1 when compressed)."""
        if self.dense_words == 0:
            return 1.0
        return self.payload_words / self.dense_words

    def metadata_bits_per_element(self) -> float:
        """Metadata bits accompanying one dense element's worth of tile."""
        if self.dense_words == 0:
            return 0.0
        return self.metadata_bits / self.dense_words


#: Memo for :func:`analyze_tile_format`, keyed by
#: ``(format key, rank extents, density key)``. The same (format, tile
#: shape, density) triple recurs for every mapping sharing a tile size
#: and for every SAF variant of a mapspace sweep. Hosted as the
#: ``"tile-format"`` stage of the process-global
#: :class:`~repro.common.cache.AnalysisCache` so the engine can ship
#: its entries to parallel workers alongside the other stages.
TILE_FORMAT_STAGE = "tile-format"


def _tile_stage():
    return global_cache().stage(TILE_FORMAT_STAGE)


def clear_tile_format_cache() -> None:
    """Drop all memoised tile-format analyses (mainly for tests)."""
    _tile_stage().clear()


def analyze_tile_format(
    fmt: FormatSpec,
    rank_extents: tuple[int, ...],
    density: DensityModel,
) -> TileOccupancy:
    """Statistically characterise one tile's encoded occupancy.

    Results are memoised module-wide when both the format and the
    density model expose content keys (``cache_key()``); callers must
    treat the returned :class:`TileOccupancy` as read-only.

    Walks format ranks outer to inner. At each rank, the expected count
    of nonempty coordinates equals the number of coordinate positions
    times the probability that the subtree hanging below one position
    is nonempty (from the density model). Uncompressed ranks materialise
    every position of every stored fiber; compressed ranks keep only
    nonempty ones.
    """
    density_key = density.cache_key()
    if density_key is None:
        return _analyze_tile_format(fmt, rank_extents, density)
    key = (fmt.cache_key(), tuple(rank_extents), density_key)
    return _tile_stage().get_or_compute(
        key, lambda: _analyze_tile_format(fmt, rank_extents, density)
    )


def _analyze_tile_format(
    fmt: FormatSpec,
    rank_extents: tuple[int, ...],
    density: DensityModel,
) -> TileOccupancy:
    extents = fmt.group_extents(rank_extents)
    dense_words = int(prod(extents))
    # Statistically-largest occupancy (Sec 5.4): capacity is sized for
    # mean + 3 sigma, not the absolute worst case.
    max_nnz = density.quantile_occupancy(dense_words)

    per_rank: list[RankOccupancy] = []
    metadata_bits = 0.0
    worst_metadata_bits = 0.0
    stored_fibers = 1.0
    worst_stored_fibers = 1.0
    positions_so_far = 1  # coordinate positions down to current rank
    stored_positions = 1.0
    worst_stored_positions = 1.0

    for rank_index, rank in enumerate(fmt.ranks):
        fiber_shape = extents[rank_index]
        positions_so_far *= fiber_shape
        subtree = int(prod(extents[rank_index + 1 :]))
        # Expected nonempty coordinates at this rank across the tile.
        p_nonempty = density.prob_nonempty(subtree)
        nonempty = positions_so_far * p_nonempty
        worst_nonempty = float(min(positions_so_far, max_nnz))

        bits = rank.format.metadata_bits(fiber_shape, stored_fibers, nonempty)
        worst_bits = rank.format.metadata_bits(
            fiber_shape, worst_stored_fibers, worst_nonempty
        )
        metadata_bits += bits
        worst_metadata_bits += worst_bits
        per_rank.append(
            RankOccupancy(
                format_name=repr(rank.format),
                fiber_shape=fiber_shape,
                stored_fibers=stored_fibers,
                nonempty_elements=nonempty,
                metadata_bits=bits,
            )
        )

        if rank.format.compressed:
            stored_positions = nonempty
            worst_stored_positions = worst_nonempty
        else:
            stored_positions = stored_fibers * fiber_shape
            worst_stored_positions = worst_stored_fibers * fiber_shape
        stored_fibers = stored_positions
        worst_stored_fibers = worst_stored_positions

    return TileOccupancy(
        dense_words=dense_words,
        payload_words=stored_positions,
        metadata_bits=metadata_bits,
        worst_payload_words=worst_stored_positions,
        worst_metadata_bits=worst_metadata_bits,
        per_rank=per_rank,
    )
