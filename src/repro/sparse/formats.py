"""Per-rank representation format models (Sec 3.1.1 and 5.3.3).

A tensor tile is described rank by rank (outer to inner); each rank is
encoded with a per-dimension format. The format model answers: how many
metadata bits does this rank add, and does it prune the payload
positions to nonzeros only? Composing per-rank formats yields classic
formats (Table 2): CSR = UOP-CP, 2D COO = CP^2 (flattened), CSB =
UOP-CP-CP, 3-D CSF = CP-CP-CP.

The overhead formulas follow the paper directly, e.g.::

    Overhead_RLE = #nonempty_elements * run_length_bitwidth
    Overhead_B   = total #elements    * 1 bit
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.common.errors import SpecError


def _coord_bits(fiber_shape: int) -> int:
    """Bits to name one coordinate inside a fiber of ``fiber_shape``."""
    return max(1, math.ceil(math.log2(max(2, fiber_shape))))


class RankFormat(ABC):
    """Base class for per-rank (per-dimension) format models."""

    #: Whether this rank stores only nonempty coordinates (compressed)
    #: or all positions (uncompressed).
    compressed: bool = True

    @abstractmethod
    def metadata_bits(
        self,
        fiber_shape: int,
        stored_fibers: float,
        nonempty_elements: float,
    ) -> float:
        """Expected metadata bits for this rank across the whole tile.

        ``fiber_shape`` is the coordinate extent of one fiber,
        ``stored_fibers`` the (expected) number of fibers materialised
        at this rank, and ``nonempty_elements`` the (expected) total
        count of nonempty coordinates across those fibers.
        """

    @property
    def name(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return self.name


class Uncompressed(RankFormat):
    """U: all positions stored in place; zero metadata."""

    compressed = False

    def metadata_bits(
        self, fiber_shape: int, stored_fibers: float, nonempty_elements: float
    ) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "U"


class Bitmask(RankFormat):
    """B: one presence bit per coordinate position of each stored fiber."""

    def metadata_bits(
        self, fiber_shape: int, stored_fibers: float, nonempty_elements: float
    ) -> float:
        return stored_fibers * fiber_shape

    def __repr__(self) -> str:
        return "B"


class UncompressedBitmask(RankFormat):
    """UB: bitmask metadata but payloads kept at all positions.

    Used by designs (e.g. Eyeriss on-chip inputs) that keep data
    uncompressed yet carry a zero-flag per element to drive gating.
    """

    compressed = False

    def metadata_bits(
        self, fiber_shape: int, stored_fibers: float, nonempty_elements: float
    ) -> float:
        return stored_fibers * fiber_shape

    def __repr__(self) -> str:
        return "UB"


@dataclass(frozen=True)
class CoordinatePayload(RankFormat):
    """CP: explicit coordinate (multi-bit) per nonzero payload.

    ``coord_bits`` overrides the default ``ceil(log2(fiber_shape))``,
    e.g. STC's 2-bit offsets inside blocks of four.
    """

    coord_bits: int | None = None

    def metadata_bits(
        self, fiber_shape: int, stored_fibers: float, nonempty_elements: float
    ) -> float:
        bits = self.coord_bits or _coord_bits(fiber_shape)
        return nonempty_elements * bits

    def __repr__(self) -> str:
        return "CP" if self.coord_bits is None else f"CP({self.coord_bits}b)"


@dataclass(frozen=True)
class RunLengthEncoding(RankFormat):
    """RLE: run of zeros before each nonzero, in ``run_bits`` bits.

    Runs longer than ``2**run_bits - 1`` need padding tokens; the
    expected overflow token count is approximated from the average run
    length assuming geometrically distributed runs.
    """

    run_bits: int = 4

    def __post_init__(self) -> None:
        if self.run_bits <= 0:
            raise SpecError(f"run_bits must be positive, got {self.run_bits}")

    def metadata_bits(
        self, fiber_shape: int, stored_fibers: float, nonempty_elements: float
    ) -> float:
        base = nonempty_elements * self.run_bits
        # Overflow padding: average zero-run length within stored fibers.
        total_positions = stored_fibers * fiber_shape
        zeros = max(0.0, total_positions - nonempty_elements)
        if nonempty_elements > 0:
            avg_run = zeros / nonempty_elements
            max_run = 2**self.run_bits - 1
            if avg_run > 0 and max_run > 0:
                # Each run of length L needs floor(L / max_run) extra tokens.
                extra_tokens = nonempty_elements * (avg_run / max_run)
                # Only runs exceeding max_run pay; scale by that chance
                # under a geometric run-length approximation.
                p_long = math.exp(-max_run / max(avg_run, 1e-9))
                base += extra_tokens * p_long * self.run_bits
        return base

    def __repr__(self) -> str:
        return f"RLE({self.run_bits}b)"


@dataclass(frozen=True)
class UncompressedOffsetPairs(RankFormat):
    """UOP: start (inclusive) / end (non-inclusive) offsets per
    coordinate position.

    Each stored fiber keeps a shared offsets array with
    ``fiber_shape + 1`` entries (CSR's row-pointer array); this cost is
    paid for empty positions too, which is what makes UOP-based formats
    expensive for hyper-sparse tiles.
    """

    offset_bits: int | None = None

    def metadata_bits(
        self, fiber_shape: int, stored_fibers: float, nonempty_elements: float
    ) -> float:
        if self.offset_bits is not None:
            bits = self.offset_bits
        else:
            bits = max(1, math.ceil(math.log2(max(2, nonempty_elements + 1))))
        return stored_fibers * (fiber_shape + 1) * bits

    def __repr__(self) -> str:
        return "UOP" if self.offset_bits is None else f"UOP({self.offset_bits}b)"


@dataclass(frozen=True)
class FormatRank:
    """One rank of a :class:`FormatSpec`.

    ``flattened_ranks`` > 1 means this format rank covers that many
    consecutive tensor ranks flattened into one coordinate space (the
    superscript notation of Table 2, e.g. 2D COO = CP^2).
    """

    format: RankFormat
    flattened_ranks: int = 1

    def __post_init__(self) -> None:
        if self.flattened_ranks <= 0:
            raise SpecError(
                f"flattened_ranks must be positive, got {self.flattened_ranks}"
            )


@dataclass
class FormatSpec:
    """Full hierarchical representation format for one tensor.

    ``ranks`` run outer to inner and must jointly cover the tensor's
    rank count once flattening is accounted for. A ``FormatSpec`` of all
    :class:`Uncompressed` ranks is the dense representation.
    """

    ranks: list[FormatRank] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.ranks:
            raise SpecError("FormatSpec requires at least one rank")

    @property
    def tensor_rank_count(self) -> int:
        return sum(r.flattened_ranks for r in self.ranks)

    @property
    def is_compressed(self) -> bool:
        """True if any rank prunes payloads to nonzeros."""
        return any(r.format.compressed for r in self.ranks)

    def cache_key(self) -> tuple:
        """Hashable content key; format specs with equal keys produce
        identical occupancy analyses (used to memoise the format
        analyzer). Per-rank formats are identified by type and repr,
        which encodes their bit-width parameters."""
        return tuple(
            (type(r.format).__name__, repr(r.format), r.flattened_ranks)
            for r in self.ranks
        )

    def group_extents(self, rank_extents: tuple[int, ...]) -> list[int]:
        """Collapse per-tensor-rank extents into per-format-rank extents.

        If the tile has fewer ranks than the format covers (an inner
        tile may not expose outer ranks), the extents are left-padded
        with 1.
        """
        extents = list(rank_extents)
        need = self.tensor_rank_count
        if len(extents) < need:
            extents = [1] * (need - len(extents)) + extents
        elif len(extents) > need:
            # Flatten surplus outer ranks into the outermost format rank.
            head = 1
            for e in extents[: len(extents) - need + 1]:
                head *= e
            extents = [head] + extents[len(extents) - need + 1 :]
        grouped: list[int] = []
        idx = 0
        for rank in self.ranks:
            size = 1
            for _ in range(rank.flattened_ranks):
                size *= extents[idx]
                idx += 1
            grouped.append(size)
        return grouped

    def describe(self) -> str:
        parts = []
        for rank in self.ranks:
            text = repr(rank.format)
            if rank.flattened_ranks > 1:
                text += f"^{rank.flattened_ranks}"
            parts.append(text)
        return "-".join(parts)

    def __repr__(self) -> str:
        return f"FormatSpec({self.describe()})"


_CLASSIC_FORMATS: dict[str, list[FormatRank]] = {}


def _register_classics() -> None:
    _CLASSIC_FORMATS.update(
        {
            # Compressed Sparse Row: UOP over rows, CP over columns.
            "CSR": [
                FormatRank(UncompressedOffsetPairs()),
                FormatRank(CoordinatePayload()),
            ],
            # 2D coordinate list: CP over flattened (row, col).
            "COO": [FormatRank(CoordinatePayload(), flattened_ranks=2)],
            # Compressed Sparse Block.
            "CSB": [
                FormatRank(UncompressedOffsetPairs()),
                FormatRank(CoordinatePayload()),
                FormatRank(CoordinatePayload()),
            ],
            # 3D Compressed Sparse Fiber.
            "CSF": [
                FormatRank(CoordinatePayload()),
                FormatRank(CoordinatePayload()),
                FormatRank(CoordinatePayload()),
            ],
        }
    )


_register_classics()


def classic_format(name: str) -> FormatSpec:
    """Build a classic format by name: CSR, COO, CSB, or CSF (Table 2)."""
    key = name.upper()
    if key not in _CLASSIC_FORMATS:
        raise SpecError(
            f"unknown classic format {name!r}; expected one of "
            f"{sorted(_CLASSIC_FORMATS)}"
        )
    return FormatSpec(list(_CLASSIC_FORMATS[key]))


def dense_format(num_ranks: int) -> FormatSpec:
    """All-uncompressed format for a tensor with ``num_ranks`` ranks."""
    return FormatSpec([FormatRank(Uncompressed()) for _ in range(num_ranks)])
