"""Traffic post-processing (Sec 5.3.5): assemble the sparse traffic.

Combines the three analyzers — format analyzer, gating/skipping
analyzer, and the dense dataflow traffic — into per-(level, tensor)
fine-grained action counts. Per-tile effects are evaluated locally and
scaled by the number of tiles moved, and SAF interactions are resolved
here (e.g. format metadata skipped along with skipped data transfers).

Vectorized pipeline
-------------------

The walk over (level, tensor) flows is *descriptive*: it only decides
which dense totals split under which classification, format scaling,
and residue rule. The arithmetic itself is delegated to an emitter:

* :class:`_ScalarEmitter` computes each split immediately with the
  original scalar helpers (:func:`_data_split`,
  :func:`_metadata_split`) — this is the equivalence oracle, selected
  with ``analyze_sparse(..., vectorized=False)``.
* :class:`_BatchEmitter` records every flow of the whole loop nest and
  evaluates all of them in one set of elementwise numpy operations at
  flush time, then scatters the results back in emission order.

Both paths are bit-identical: the batched expressions mirror the
scalar formulas operation for operation (IEEE-754 elementwise), and
the scatter preserves per-accumulator addition order. The default is
the vectorized path; set the ``REPRO_SCALAR_SPARSE`` environment
variable (or pass ``vectorized=False``) to force the oracle.

The emitter contract extends *across* loop nests: because rows are
stored column-wise and the scatter replays per-accumulator emission
order, one :class:`_BatchEmitter` can record the flows of **many**
analyses — e.g. every surviving candidate mapping of one mapspace
search block — and evaluate them all in a single stacked numpy pass.
:func:`analyze_sparse_batch` does exactly that: each analysis occupies
a contiguous segment of the batch columns, elementwise float64
operations are position-independent, and the per-candidate scatter
preserves each accumulator's addition order, so the stacked results
are bit-identical to running :func:`analyze_sparse` once per analysis.

:func:`sparse_analysis_key` derives the content key under which a whole
:class:`~repro.sparse.traffic.SparseTraffic` is memoised by the
engine's ``"sparse"`` cache stage (see :mod:`repro.common.cache`).
"""

from __future__ import annotations

import os

from repro.common.cache import CachedHashKey
from repro.common.util import prod
from repro.dataflow.nest_analysis import DenseTraffic, dense_analysis_key
from repro.sparse.density import UniformDensity
from repro.sparse.format_analyzer import TileOccupancy, analyze_tile_format
from repro.sparse.formats import FormatSpec, dense_format
from repro.sparse.gating_skipping import (
    NO_ELIMINATION,
    FlowClassification,
    GatingSkippingAnalyzer,
)
from repro.sparse.saf import SAFSpec
from repro.sparse.traffic import ActionBreakdown, SparseTraffic
from repro.workload.einsum import TensorRef
from repro.workload.spec import Workload

#: Default backend for :func:`analyze_sparse`. The scalar oracle can be
#: forced process-wide by setting ``REPRO_SCALAR_SPARSE`` to anything
#: but an explicit falsy value ("", "0", "false", "no", "off").
VECTORIZED_DEFAULT = os.environ.get("REPRO_SCALAR_SPARSE", "").lower() in (
    "", "0", "false", "no", "off",
)


def ensure_output_density(workload: Workload) -> None:
    """Derive the output tensor's density when the user left it unset.

    An output element is nonzero if any of its reduction contributions
    is effectual: ``d_out = 1 - (1 - prod(d_in)) ** reduction_volume``
    under independence. Users can override by supplying an explicit
    density model for the output.
    """
    out = workload.einsum.output
    if out.name in workload.densities:
        return
    d_eff = 1.0
    for tensor in workload.einsum.inputs:
        d_eff *= workload.density_of(tensor.name).density
    reduction_volume = prod(
        bound
        for dim, bound in workload.einsum.dims.items()
        if dim in workload.einsum.reduction_dims
    )
    d_out = 1.0 - (1.0 - d_eff) ** reduction_volume
    workload.densities[out.name] = UniformDensity(
        d_out, workload.einsum.tensor_size(out.name)
    )


def sparse_analysis_key(
    dense: DenseTraffic, safs: SAFSpec, dense_key: tuple | None = None
) -> tuple | None:
    """Content key of one whole sparse analysis, or ``None``.

    A :class:`SparseTraffic` is fully determined by the dense analysis
    content (einsum, architecture, mapping), the SAF specification, and
    every tensor's density model, so the key is the triple of their
    content keys. Returns ``None`` — uncacheable — when any density
    model does not expose a content key. Derives the output density
    first (idempotent) so it participates in the key. Callers that
    already hold the dense content key (the engine's dense stage
    returns it) pass it as ``dense_key`` to skip recomputing it.
    """
    workload = dense.workload
    ensure_output_density(workload)
    density_keys = []
    for tensor in workload.einsum.tensors:
        key = workload.density_of(tensor.name).cache_key()
        if key is None:
            return None
        density_keys.append((tensor.name, key))
    if dense_key is None:
        dense_key = CachedHashKey(
            dense_analysis_key(workload, dense.arch, dense.mapping)
        )
    elif not isinstance(dense_key, CachedHashKey):
        dense_key = CachedHashKey(dense_key)
    # The dense key rides inside the sparse key as its hash-memoising
    # wrapper: the sparse tuple is itself hashed by four stages, and
    # every one of those hashes then reuses the dense key's cached
    # digest instead of re-walking the deep (einsum, arch, mapping)
    # triple.
    return (dense_key, safs.cache_key(), tuple(density_keys))


class _LevelFormatInfo:
    """Cached per-(level, tensor) format scaling factors."""

    def __init__(
        self,
        occupancy: TileOccupancy,
        word_bits: int,
        metadata_word_bits: int,
        compressed: bool,
    ):
        self.occupancy = occupancy
        self.compressed = compressed
        self.payload_fraction = occupancy.payload_fraction if compressed else 1.0
        bits_per_elem = occupancy.metadata_bits_per_element()
        self.metadata_words_per_element = bits_per_elem / metadata_word_bits
        self.occupancy_words = occupancy.occupancy_words(word_bits)
        self.worst_occupancy_words = occupancy.worst_occupancy_words(word_bits)
        self.compression_rate = occupancy.compression_rate(word_bits)


# ----------------------------------------------------------------------
# Split arithmetic: scalar oracle helpers and the two emitters.


def _data_split(
    total: float,
    cls: FlowClassification,
    payload_fraction: float,
    residue: str = "skip",
) -> ActionBreakdown:
    """Split dense data traffic into fine-grained actions.

    ``cls`` carries SAF-driven elimination; ``payload_fraction`` is the
    share of positions a compressed format materialises. The
    compressed-away residue costs nothing on bulk transfers
    (``residue='skip'``); on positional compute-feed accesses without
    skipping hardware the unit idles through them (``residue='gate'``,
    the bitmask-design behaviour of Fig. 1).
    """
    actual = total * cls.actual * payload_fraction
    if residue == "gate":
        gated = total * (cls.gated + cls.actual * (1.0 - payload_fraction))
    else:
        gated = total * cls.gated * payload_fraction
    skipped = max(0.0, total - actual - gated)
    return ActionBreakdown(actual=actual, gated=gated, skipped=skipped)


def _metadata_split(
    total_dense: float,
    cls: FlowClassification,
    info: _LevelFormatInfo,
    positional: bool = False,
) -> ActionBreakdown:
    """Metadata traffic accompanying data traffic.

    For bulk transfers, a skipped tile's metadata never moves either.
    For positional (compute-feed) streams the intersection/positioning
    hardware walks the *entire* stored metadata stream — deciding to
    skip a position still requires reading its encoding — so the full
    (compressed) metadata volume is charged as actual.
    """
    total_meta = total_dense * info.metadata_words_per_element
    if positional:
        return ActionBreakdown(actual=total_meta, gated=0.0, skipped=0.0)
    return ActionBreakdown(
        actual=total_meta * (cls.actual + cls.gated),
        gated=0.0,
        skipped=total_meta * cls.skipped,
    )


class _ScalarEmitter:
    """Immediate per-flow arithmetic — the equivalence oracle."""

    def data(self, breakdown, total, cls, payload_fraction, residue="skip"):
        breakdown.add(_data_split(total, cls, payload_fraction, residue))

    def metadata(self, breakdown, total_dense, cls, info, positional=False):
        breakdown.add(_metadata_split(total_dense, cls, info, positional))

    def split(self, breakdown, total, actual_frac, gated_frac):
        breakdown.add(ActionBreakdown.split(total, actual_frac, gated_frac))

    def raw(self, breakdown, actual, gated, skipped):
        breakdown.add(
            ActionBreakdown(actual=actual, gated=gated, skipped=skipped)
        )

    def flush(self):
        pass


#: Sub-batch tags of the batch emitter. Rows are grouped by formula at
#: emission time so the flush runs each formula once over a dense
#: column block — no masks, no branches.
_DATA_SKIP = 0  # data split, skip residue (also plain splits, p = 1)
_DATA_GATE = 1  # data split, gate residue
_META_BULK = 2  # metadata accompanying bulk transfers
_META_POS = 3  # positional metadata (full stream charged actual)
_RAW = 4  # precomputed components pass straight through


class _BatchEmitter:
    """Deferred arithmetic: one numpy evaluation for the whole nest.

    Rows are stored column-wise in per-formula sub-batches; ``flush``
    evaluates each formula with elementwise float64 operations that
    mirror the scalar helpers operation for operation, then scatters
    results back in emission order so per-accumulator addition order
    matches the scalar path exactly (bit-identical results).
    """

    __slots__ = ("order", "batches")

    def __init__(self):
        #: (tag, row index within sub-batch, target breakdown), in
        #: emission order — the scatter replays this sequence.
        self.order: list[tuple[int, int, ActionBreakdown]] = []
        self.batches = (
            ([], [], [], []),  # _DATA_SKIP: t, fa, fg, payload
            ([], [], [], []),  # _DATA_GATE: t, fa, fg, payload
            ([], [], [], [], []),  # _META_BULK: t, fa, fg, fs, words/elem
            ([], []),  # _META_POS: t, words/elem
            ([], [], []),  # _RAW: actual, gated, skipped
        )

    def data(self, breakdown, total, cls, payload_fraction, residue="skip"):
        tag = _DATA_GATE if residue == "gate" else _DATA_SKIP
        t, fa, fg, p = self.batches[tag]
        self.order.append((tag, len(t), breakdown))
        t.append(total)
        fa.append(cls.actual)
        fg.append(cls.gated)
        p.append(payload_fraction)

    def metadata(self, breakdown, total_dense, cls, info, positional=False):
        if positional:
            t, w = self.batches[_META_POS]
            self.order.append((_META_POS, len(t), breakdown))
            t.append(total_dense)
            w.append(info.metadata_words_per_element)
            return
        t, fa, fg, fs, w = self.batches[_META_BULK]
        self.order.append((_META_BULK, len(t), breakdown))
        t.append(total_dense)
        fa.append(cls.actual)
        fg.append(cls.gated)
        fs.append(cls.skipped)
        w.append(info.metadata_words_per_element)

    def split(self, breakdown, total, actual_frac, gated_frac):
        # total * f * 1.0 is IEEE-identical to total * f, so a plain
        # fraction split is a data split with unit payload.
        t, fa, fg, p = self.batches[_DATA_SKIP]
        self.order.append((_DATA_SKIP, len(t), breakdown))
        t.append(total)
        fa.append(actual_frac)
        fg.append(gated_frac)
        p.append(1.0)

    def raw(self, breakdown, actual, gated, skipped):
        a, g, s = self.batches[_RAW]
        self.order.append((_RAW, len(a), breakdown))
        a.append(actual)
        g.append(gated)
        s.append(skipped)

    def flush(self):
        if not self.order:
            return
        import numpy as np

        asarray = np.asarray
        results: list[tuple[list, list | float, list | float]] = [
            ([], 0.0, 0.0)
        ] * 5

        t, fa, fg, p = self.batches[_DATA_SKIP]
        if t:
            ta, faa, fga, pa = (
                asarray(t), asarray(fa), asarray(fg), asarray(p)
            )
            a = ta * faa * pa
            g = ta * fga * pa
            s = np.maximum(0.0, ta - a - g)
            results[_DATA_SKIP] = (a.tolist(), g.tolist(), s.tolist())

        t, fa, fg, p = self.batches[_DATA_GATE]
        if t:
            ta, faa, fga, pa = (
                asarray(t), asarray(fa), asarray(fg), asarray(p)
            )
            a = ta * faa * pa
            g = ta * (fga + faa * (1.0 - pa))
            s = np.maximum(0.0, ta - a - g)
            results[_DATA_GATE] = (a.tolist(), g.tolist(), s.tolist())

        t, fa, fg, fs, w = self.batches[_META_BULK]
        if t:
            tm = asarray(t) * asarray(w)
            a = tm * (asarray(fa) + asarray(fg))
            s = tm * asarray(fs)
            # gated metadata does not exist: a gated access still moves
            # its encoding with the tile.
            results[_META_BULK] = (a.tolist(), 0.0, s.tolist())

        t, w = self.batches[_META_POS]
        if t:
            a = asarray(t) * asarray(w)
            results[_META_POS] = (a.tolist(), 0.0, 0.0)

        results[_RAW] = self.batches[_RAW]

        # tolist() round-trips float64 -> Python float exactly; the
        # replay preserves per-accumulator addition order.
        for tag, row, breakdown in self.order:
            a, g, s = results[tag]
            breakdown.add_components(
                a[row],
                g if isinstance(g, float) else g[row],
                s if isinstance(s, float) else s[row],
            )


# ----------------------------------------------------------------------
# The analysis walk.


def analyze_sparse(
    dense: DenseTraffic,
    safs: SAFSpec,
    *,
    vectorized: bool | None = None,
) -> SparseTraffic:
    """Run the sparse modeling step on top of dense traffic.

    ``vectorized`` selects the batched numpy arithmetic (default) or
    the scalar oracle path; both produce bit-identical results. The
    module default follows :data:`VECTORIZED_DEFAULT`.
    """
    if vectorized is None:
        vectorized = VECTORIZED_DEFAULT
    emitter = _BatchEmitter() if vectorized else _ScalarEmitter()
    sparse = _record_sparse(dense, safs, emitter)
    emitter.flush()
    return sparse


def analyze_sparse_batch(
    jobs,
    *,
    vectorized: bool | None = None,
    memo: dict | None = None,
) -> list[SparseTraffic]:
    """Run the sparse modeling step for many analyses in one pass.

    ``jobs`` is a sequence of ``(dense, safs)`` pairs — typically the
    surviving candidate mappings of one mapspace-search block. Under
    the vectorized backend every analysis records its flows into one
    shared :class:`_BatchEmitter` and a single flush evaluates the
    stacked arrays; each analysis owns a contiguous segment of the
    batch, so the scatter preserves per-candidate accumulation order
    and the results are bit-identical to calling :func:`analyze_sparse`
    once per pair (the equivalence oracle, which the scalar backend
    falls back to directly).

    ``memo`` is an optional *cross-call* walk memo: candidates of one
    mapspace search re-derive the same leader-keep probabilities,
    format scalings, and compute-source collections over and over, so
    the engine threads one plain dict through every block of a search.
    All memoised values are pure functions of their keys **given a
    fixed workload (densities), SAF spec, and architecture** — callers
    must pass a fresh dict per such context and never share one across
    contexts. Memoisation returns the exact objects the unmemoised
    walk would compute, so results remain bit-identical. The scalar
    oracle path ignores the memo entirely.
    """
    if vectorized is None:
        vectorized = VECTORIZED_DEFAULT
    if not vectorized:
        return [
            analyze_sparse(dense, safs, vectorized=False)
            for dense, safs in jobs
        ]
    emitter = _BatchEmitter()
    results = [
        _record_sparse(dense, safs, emitter, memo=memo)
        for dense, safs in jobs
    ]
    emitter.flush()
    return results


def _record_sparse(
    dense: DenseTraffic, safs: SAFSpec, emitter, memo: dict | None = None
) -> SparseTraffic:
    """The descriptive analysis walk: classify every (level, tensor)
    flow and describe its split arithmetic to ``emitter``. The caller
    owns the flush, which lets one batch emitter stack many walks."""
    workload = dense.workload
    ensure_output_density(workload)
    analyzer = GatingSkippingAnalyzer(dense, safs, shared=memo)
    sparse = SparseTraffic()

    compute_cls = analyzer.classify_compute()
    sparse.compute = ActionBreakdown.split(
        dense.computes, compute_cls.actual, compute_cls.gated
    )
    sparse.compute_fractions = (
        compute_cls.actual,
        compute_cls.gated,
        compute_cls.skipped,
    )

    fmt_cache: dict[tuple[str, str], _LevelFormatInfo] = {}

    def fmt_info(level: str, tensor: str) -> _LevelFormatInfo:
        key = (level, tensor)
        info = fmt_cache.get(key)
        if info is not None:
            return info
        record = dense.at(level, tensor)
        # Across the candidates of one search the same (level, tensor,
        # tile shape) recurs constantly; the scaling factors are a pure
        # function of that triple once workload/SAFs/arch are fixed.
        memo_key = (
            ("fmt", level, tensor, record.tile_rank_extents)
            if memo is not None
            else None
        )
        if memo_key is not None:
            info = memo.get(memo_key)
            if info is not None:
                fmt_cache[key] = info
                return info
        spec = safs.format_for(level, tensor)
        compressed = spec is not None and spec.is_compressed
        fmt: FormatSpec = spec or dense_format(len(record.tile_rank_extents))
        occ = analyze_tile_format(
            fmt,
            record.tile_rank_extents,
            workload.density_of(tensor),
        )
        arch_level = dense.arch.level(level)
        info = _LevelFormatInfo(
            occ,
            arch_level.word_bits,
            arch_level.metadata_word_bits,
            compressed,
        )
        fmt_cache[key] = info
        if memo_key is not None:
            memo[memo_key] = info
        return info

    for tensor in workload.einsum.tensors:
        chain = dense.mapping.keep_chain(tensor.name)
        if tensor.is_output:
            _process_output(
                dense, analyzer, sparse, tensor, chain, fmt_info,
                compute_cls, emitter,
            )
        else:
            _process_operand(
                dense, analyzer, sparse, tensor, chain, fmt_info, emitter
            )

    # Record occupancy for every (level, tensor) pair.
    for (level, name), record in dense.traffic.items():
        info = fmt_info(level, name)
        actions = sparse.at(level, name)
        actions.occupancy_words = info.occupancy_words
        actions.worst_occupancy_words = info.worst_occupancy_words
        actions.compression_rate = info.compression_rate
    return sparse


def _process_operand(
    dense: DenseTraffic,
    analyzer: GatingSkippingAnalyzer,
    sparse: SparseTraffic,
    tensor: TensorRef,
    chain: list[str],
    fmt_info,
    emitter,
) -> None:
    name = tensor.name
    innermost = chain[-1]

    # Compute-feed reads at the innermost keeping level. Zero positions
    # of a compressed operand are skipped when the design walks its
    # metadata, gated otherwise (cycles spent idling).
    record = dense.at(innermost, name)
    sources = analyzer.flow_sources(tensor, innermost)
    cls = FlowClassification.from_sources(sources)
    info = fmt_info(innermost, name)
    actions = sparse.at(innermost, name)
    feed = record.compute_feed_reads
    # The intersection unit merges the two *compressed* coordinate
    # streams, touching ~(nnz_follower + nnz_leader) entries rather
    # than every dense position.
    own_density = dense.workload.density_of(name).density
    for source in sources:
        if not source.is_intersection:
            continue
        walked = min(
            1.0,
            own_density + dense.workload.density_of(source.leader).density,
        )
        actions.intersection_checks += feed * walked
    residue = (
        "skip" if analyzer.tensor_drives_skipping(name) else "gate"
    ) if info.compressed else "skip"
    emitter.data(actions.data_reads, feed, cls, info.payload_fraction, residue)
    emitter.metadata(actions.metadata_reads, feed, cls, info, positional=True)

    # Transfers along the keep chain (parent reads + child fills).
    for parent, child in zip(chain, chain[1:]):
        t_sources = analyzer.flow_sources(tensor, parent)
        cls_t = FlowClassification.from_sources(t_sources)
        parent_record = dense.at(parent, name)
        child_record = dense.at(child, name)
        p_info = fmt_info(parent, name)
        c_info = fmt_info(child, name)

        parent_actions = sparse.at(parent, name)
        # Tile-granular intersection decisions at the transfer source.
        tiles_decided = child_record.episodes * child_record.instances
        parent_actions.intersection_checks += tiles_decided * sum(
            1 for s in t_sources if s.is_intersection
        )
        parent_reads = parent_record.transfer_reads
        emitter.data(
            parent_actions.data_reads, parent_reads, cls_t,
            p_info.payload_fraction,
        )
        emitter.metadata(
            parent_actions.metadata_reads, parent_reads, cls_t, p_info
        )

        child_actions = sparse.at(child, name)
        fills = child_record.fills
        emitter.data(
            child_actions.data_writes, fills, cls_t, c_info.payload_fraction
        )
        emitter.metadata(child_actions.metadata_writes, fills, cls_t, c_info)


def _process_output(
    dense: DenseTraffic,
    analyzer: GatingSkippingAnalyzer,
    sparse: SparseTraffic,
    tensor: TensorRef,
    chain: list[str],
    fmt_info,
    compute_cls: FlowClassification,
    emitter,
) -> None:
    name = tensor.name
    innermost = chain[-1]

    # Updates from compute: the accumulator flushes once per latch
    # group, and a flush survives if any compute in its group did —
    # classified at group granularity (Sec 5.3.4's statistical
    # characterisation at the right tile shape).
    record = dense.at(innermost, name)
    info = fmt_info(innermost, name)
    actions = sparse.at(innermost, name)
    updates = record.update_writes
    update_cls = analyzer.classify_output_updates()
    emitter.split(
        actions.data_writes, updates, update_cls.actual, update_cls.gated
    )
    # Accumulation (read-modify-write) reads: every surviving update
    # beyond each element's first write per episode reads the partial.
    # The first writes are a fixed count (tile establishment), so they
    # are subtracted from the surviving updates, not scaled.
    rmw = record.rmw_reads
    first_writes = updates - rmw
    rmw_actual = max(0.0, updates * update_cls.actual - first_writes)
    emitter.raw(
        actions.data_reads, rmw_actual, 0.0, max(0.0, rmw - rmw_actual)
    )

    # Drains and refills along the chain.
    for parent, child in zip(chain, chain[1:]):
        cls_d = _drain_classification(analyzer, tensor, parent, child)
        parent_record = dense.at(parent, name)
        child_record = dense.at(child, name)
        p_info = fmt_info(parent, name)
        c_info = fmt_info(child, name)
        reduction = _boundary_reduction(dense, parent, child, tensor)

        child_actions = sparse.at(child, name)
        drains = child_record.drains
        emitter.data(
            child_actions.data_reads, drains, cls_d, c_info.payload_fraction
        )
        emitter.metadata(child_actions.metadata_reads, drains, cls_d, c_info)

        parent_actions = sparse.at(parent, name)
        arriving = drains / reduction
        emitter.data(
            parent_actions.data_writes, arriving, cls_d,
            p_info.payload_fraction,
        )
        emitter.metadata(
            parent_actions.metadata_writes, arriving, cls_d, p_info
        )

        refills = child_record.refill_writes
        if refills > 0:
            emitter.data(
                child_actions.data_writes, refills, cls_d,
                c_info.payload_fraction,
            )
            emitter.data(
                parent_actions.data_reads, refills / reduction, cls_d,
                p_info.payload_fraction,
            )


def _drain_classification(
    analyzer: GatingSkippingAnalyzer,
    tensor: TensorRef,
    parent: str,
    child: str,
) -> FlowClassification:
    """Classification of output drain traffic at a chain boundary.

    Only explicit SAFs targeting the output at the parent level apply
    (e.g. ExTensor's ``Skip Z <- A & B`` at every level); leader tiles
    span the child tile's residency episode.
    """
    sources = []
    for saf in analyzer.safs.storage_safs_at(parent):
        if saf.target != tensor.name:
            continue
        extents = analyzer.transfer_extents(tensor, child)
        sources.extend(analyzer.storage_saf_sources(tensor, saf, extents))
    if not sources:
        return NO_ELIMINATION
    return FlowClassification.from_sources(sources)


def _boundary_reduction(
    dense: DenseTraffic, parent: str, child: str, tensor: TensorRef
) -> float:
    """Spatial reduction factor between two keeping levels."""
    nest = dense.nest
    parent_idx = dense.arch.level_index(parent)
    child_idx = dense.arch.level_index(child)
    if not dense.arch.level(parent).spatial_reduction:
        return 1.0
    factor = 1.0
    for loop in nest.boundary_spatial(parent_idx, child_idx):
        if loop.dim not in tensor.dims:
            factor *= loop.bound
    return factor
