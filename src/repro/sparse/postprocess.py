"""Traffic post-processing (Sec 5.3.5): assemble the sparse traffic.

Combines the three analyzers — format analyzer, gating/skipping
analyzer, and the dense dataflow traffic — into per-(level, tensor)
fine-grained action counts. Per-tile effects are evaluated locally and
scaled by the number of tiles moved, and SAF interactions are resolved
here (e.g. format metadata skipped along with skipped data transfers).
"""

from __future__ import annotations

from repro.common.util import prod
from repro.dataflow.nest_analysis import DenseTraffic, TensorTraffic
from repro.sparse.density import UniformDensity
from repro.sparse.format_analyzer import TileOccupancy, analyze_tile_format
from repro.sparse.formats import FormatSpec, dense_format
from repro.sparse.gating_skipping import (
    NO_ELIMINATION,
    FlowClassification,
    GatingSkippingAnalyzer,
)
from repro.sparse.saf import SAFSpec
from repro.sparse.traffic import ActionBreakdown, LevelTensorActions, SparseTraffic
from repro.workload.einsum import TensorRef
from repro.workload.spec import Workload


def ensure_output_density(workload: Workload) -> None:
    """Derive the output tensor's density when the user left it unset.

    An output element is nonzero if any of its reduction contributions
    is effectual: ``d_out = 1 - (1 - prod(d_in)) ** reduction_volume``
    under independence. Users can override by supplying an explicit
    density model for the output.
    """
    out = workload.einsum.output
    if out.name in workload.densities:
        return
    d_eff = 1.0
    for tensor in workload.einsum.inputs:
        d_eff *= workload.density_of(tensor.name).density
    reduction_volume = prod(
        bound
        for dim, bound in workload.einsum.dims.items()
        if dim in workload.einsum.reduction_dims
    )
    d_out = 1.0 - (1.0 - d_eff) ** reduction_volume
    workload.densities[out.name] = UniformDensity(
        d_out, workload.einsum.tensor_size(out.name)
    )


class _LevelFormatInfo:
    """Cached per-(level, tensor) format scaling factors."""

    def __init__(
        self,
        occupancy: TileOccupancy,
        word_bits: int,
        metadata_word_bits: int,
        compressed: bool,
    ):
        self.occupancy = occupancy
        self.compressed = compressed
        self.payload_fraction = occupancy.payload_fraction if compressed else 1.0
        bits_per_elem = occupancy.metadata_bits_per_element()
        self.metadata_words_per_element = bits_per_elem / metadata_word_bits
        self.occupancy_words = occupancy.occupancy_words(word_bits)
        self.worst_occupancy_words = occupancy.worst_occupancy_words(word_bits)
        self.compression_rate = occupancy.compression_rate(word_bits)


def analyze_sparse(dense: DenseTraffic, safs: SAFSpec) -> SparseTraffic:
    """Run the sparse modeling step on top of dense traffic."""
    workload = dense.workload
    ensure_output_density(workload)
    analyzer = GatingSkippingAnalyzer(dense, safs)
    sparse = SparseTraffic()

    compute_cls = analyzer.classify_compute()
    sparse.compute = ActionBreakdown.split(
        dense.computes, compute_cls.actual, compute_cls.gated
    )
    sparse.compute_fractions = (
        compute_cls.actual,
        compute_cls.gated,
        compute_cls.skipped,
    )

    fmt_cache: dict[tuple[str, str], _LevelFormatInfo] = {}

    def fmt_info(level: str, tensor: str) -> _LevelFormatInfo:
        key = (level, tensor)
        if key not in fmt_cache:
            record = dense.at(level, tensor)
            spec = safs.format_for(level, tensor)
            compressed = spec is not None and spec.is_compressed
            fmt: FormatSpec = spec or dense_format(len(record.tile_rank_extents))
            occ = analyze_tile_format(
                fmt,
                record.tile_rank_extents,
                workload.density_of(tensor),
            )
            arch_level = dense.arch.level(level)
            fmt_cache[key] = _LevelFormatInfo(
                occ,
                arch_level.word_bits,
                arch_level.metadata_word_bits,
                compressed,
            )
        return fmt_cache[key]

    for tensor in workload.einsum.tensors:
        chain = dense.mapping.keep_chain(tensor.name)
        if tensor.is_output:
            _process_output(
                dense, analyzer, sparse, tensor, chain, fmt_info, compute_cls
            )
        else:
            _process_operand(dense, analyzer, sparse, tensor, chain, fmt_info)

    # Record occupancy for every (level, tensor) pair.
    for (level, name), record in dense.traffic.items():
        info = fmt_info(level, name)
        actions = sparse.at(level, name)
        actions.occupancy_words = info.occupancy_words
        actions.worst_occupancy_words = info.worst_occupancy_words
        actions.compression_rate = info.compression_rate
    return sparse


def _data_split(
    total: float,
    cls: FlowClassification,
    payload_fraction: float,
    residue: str = "skip",
) -> ActionBreakdown:
    """Split dense data traffic into fine-grained actions.

    ``cls`` carries SAF-driven elimination; ``payload_fraction`` is the
    share of positions a compressed format materialises. The
    compressed-away residue costs nothing on bulk transfers
    (``residue='skip'``); on positional compute-feed accesses without
    skipping hardware the unit idles through them (``residue='gate'``,
    the bitmask-design behaviour of Fig. 1).
    """
    actual = total * cls.actual * payload_fraction
    if residue == "gate":
        gated = total * (cls.gated + cls.actual * (1.0 - payload_fraction))
    else:
        gated = total * cls.gated * payload_fraction
    skipped = max(0.0, total - actual - gated)
    return ActionBreakdown(actual=actual, gated=gated, skipped=skipped)


def _metadata_split(
    total_dense: float,
    cls: FlowClassification,
    info: _LevelFormatInfo,
    positional: bool = False,
) -> ActionBreakdown:
    """Metadata traffic accompanying data traffic.

    For bulk transfers, a skipped tile's metadata never moves either.
    For positional (compute-feed) streams the intersection/positioning
    hardware walks the *entire* stored metadata stream — deciding to
    skip a position still requires reading its encoding — so the full
    (compressed) metadata volume is charged as actual.
    """
    total_meta = total_dense * info.metadata_words_per_element
    if positional:
        return ActionBreakdown(actual=total_meta, gated=0.0, skipped=0.0)
    return ActionBreakdown(
        actual=total_meta * (cls.actual + cls.gated),
        gated=0.0,
        skipped=total_meta * cls.skipped,
    )


def _process_operand(
    dense: DenseTraffic,
    analyzer: GatingSkippingAnalyzer,
    sparse: SparseTraffic,
    tensor: TensorRef,
    chain: list[str],
    fmt_info,
) -> None:
    name = tensor.name
    innermost = chain[-1]

    # Compute-feed reads at the innermost keeping level. Zero positions
    # of a compressed operand are skipped when the design walks its
    # metadata, gated otherwise (cycles spent idling).
    record = dense.at(innermost, name)
    sources = analyzer.flow_sources(tensor, innermost)
    cls = FlowClassification.from_sources(sources)
    info = fmt_info(innermost, name)
    actions = sparse.at(innermost, name)
    feed = record.compute_feed_reads
    # The intersection unit merges the two *compressed* coordinate
    # streams, touching ~(nnz_follower + nnz_leader) entries rather
    # than every dense position.
    own_density = dense.workload.density_of(name).density
    for source in sources:
        if not source.is_intersection:
            continue
        walked = min(
            1.0,
            own_density + dense.workload.density_of(source.leader).density,
        )
        actions.intersection_checks += feed * walked
    residue = (
        "skip" if analyzer.tensor_drives_skipping(name) else "gate"
    ) if info.compressed else "skip"
    actions.data_reads.add(
        _data_split(feed, cls, info.payload_fraction, residue)
    )
    actions.metadata_reads.add(
        _metadata_split(feed, cls, info, positional=True)
    )

    # Transfers along the keep chain (parent reads + child fills).
    for parent, child in zip(chain, chain[1:]):
        t_sources = analyzer.flow_sources(tensor, parent)
        cls_t = FlowClassification.from_sources(t_sources)
        parent_record = dense.at(parent, name)
        child_record = dense.at(child, name)
        p_info = fmt_info(parent, name)
        c_info = fmt_info(child, name)

        parent_actions = sparse.at(parent, name)
        # Tile-granular intersection decisions at the transfer source.
        tiles_decided = child_record.episodes * child_record.instances
        parent_actions.intersection_checks += tiles_decided * sum(
            1 for s in t_sources if s.is_intersection
        )
        parent_reads = parent_record.transfer_reads
        parent_actions.data_reads.add(
            _data_split(parent_reads, cls_t, p_info.payload_fraction)
        )
        parent_actions.metadata_reads.add(
            _metadata_split(parent_reads, cls_t, p_info)
        )

        child_actions = sparse.at(child, name)
        fills = child_record.fills
        child_actions.data_writes.add(
            _data_split(fills, cls_t, c_info.payload_fraction)
        )
        child_actions.metadata_writes.add(_metadata_split(fills, cls_t, c_info))


def _process_output(
    dense: DenseTraffic,
    analyzer: GatingSkippingAnalyzer,
    sparse: SparseTraffic,
    tensor: TensorRef,
    chain: list[str],
    fmt_info,
    compute_cls: FlowClassification,
) -> None:
    name = tensor.name
    innermost = chain[-1]

    # Updates from compute: the accumulator flushes once per latch
    # group, and a flush survives if any compute in its group did —
    # classified at group granularity (Sec 5.3.4's statistical
    # characterisation at the right tile shape).
    record = dense.at(innermost, name)
    info = fmt_info(innermost, name)
    actions = sparse.at(innermost, name)
    updates = record.update_writes
    update_cls = analyzer.classify_output_updates()
    actions.data_writes.add(
        ActionBreakdown.split(updates, update_cls.actual, update_cls.gated)
    )
    # Accumulation (read-modify-write) reads: every surviving update
    # beyond each element's first write per episode reads the partial.
    # The first writes are a fixed count (tile establishment), so they
    # are subtracted from the surviving updates, not scaled.
    rmw = record.rmw_reads
    first_writes = updates - rmw
    rmw_actual = max(0.0, updates * update_cls.actual - first_writes)
    actions.data_reads.add(
        ActionBreakdown(
            actual=rmw_actual,
            gated=0.0,
            skipped=max(0.0, rmw - rmw_actual),
        )
    )

    # Drains and refills along the chain.
    for parent, child in zip(chain, chain[1:]):
        cls_d = _drain_classification(analyzer, tensor, parent, child)
        parent_record = dense.at(parent, name)
        child_record = dense.at(child, name)
        p_info = fmt_info(parent, name)
        c_info = fmt_info(child, name)
        reduction = _boundary_reduction(dense, parent, child, tensor)

        child_actions = sparse.at(child, name)
        drains = child_record.drains
        child_actions.data_reads.add(
            _data_split(drains, cls_d, c_info.payload_fraction)
        )
        child_actions.metadata_reads.add(_metadata_split(drains, cls_d, c_info))

        parent_actions = sparse.at(parent, name)
        arriving = drains / reduction
        parent_actions.data_writes.add(
            _data_split(arriving, cls_d, p_info.payload_fraction)
        )
        parent_actions.metadata_writes.add(
            _metadata_split(arriving, cls_d, p_info)
        )

        refills = child_record.refill_writes
        if refills > 0:
            child_actions.data_writes.add(
                _data_split(refills, cls_d, c_info.payload_fraction)
            )
            parent_actions.data_reads.add(
                _data_split(refills / reduction, cls_d, p_info.payload_fraction)
            )


def _drain_classification(
    analyzer: GatingSkippingAnalyzer,
    tensor: TensorRef,
    parent: str,
    child: str,
) -> FlowClassification:
    """Classification of output drain traffic at a chain boundary.

    Only explicit SAFs targeting the output at the parent level apply
    (e.g. ExTensor's ``Skip Z <- A & B`` at every level); leader tiles
    span the child tile's residency episode.
    """
    sources = []
    for saf in analyzer.safs.storage_safs_at(parent):
        if saf.target != tensor.name:
            continue
        extents = analyzer.transfer_extents(tensor, child)
        sources.extend(analyzer.storage_saf_sources(tensor, saf, extents))
    if not sources:
        return NO_ELIMINATION
    return FlowClassification.from_sources(sources)


def _boundary_reduction(
    dense: DenseTraffic, parent: str, child: str, tensor: TensorRef
) -> float:
    """Spatial reduction factor between two keeping levels."""
    nest = dense.nest
    parent_idx = dense.arch.level_index(parent)
    child_idx = dense.arch.level_index(child)
    if not dense.arch.level(parent).spatial_reduction:
        return 1.0
    factor = 1.0
    for loop in nest.boundary_spatial(parent_idx, child_idx):
        if loop.dim not in tensor.dims:
            factor *= loop.bound
    return factor
