"""Sparse traffic data model: fine-grained action breakdowns (Sec 5.3.4).

The sparse modeling step decomposes every dense traffic number into
three fine-grained action types: *actual* (happened, full cost),
*gated* (unit idles: cycle spent, energy saved) and *skipped* (cycle
and energy saved). Data and metadata accesses are tracked separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class ActionBreakdown:
    """Counts of one action split into actual / gated / skipped.

    Slotted: the sparse walk allocates a handful of breakdowns per
    (level, tensor) pair for every candidate of a search, so the
    per-instance ``__dict__`` is measurable overhead.
    """

    actual: float = 0.0
    gated: float = 0.0
    skipped: float = 0.0

    @property
    def total(self) -> float:
        return self.actual + self.gated + self.skipped

    @property
    def cycled(self) -> float:
        """Operations that consume cycles (actual + gated)."""
        return self.actual + self.gated

    def add(self, other: "ActionBreakdown") -> None:
        self.actual += other.actual
        self.gated += other.gated
        self.skipped += other.skipped

    def add_components(
        self, actual: float, gated: float, skipped: float
    ) -> None:
        """Accumulate raw components without building an intermediate
        :class:`ActionBreakdown` (the vectorized scatter path)."""
        self.actual += actual
        self.gated += gated
        self.skipped += skipped

    def scaled(self, factor: float) -> "ActionBreakdown":
        return ActionBreakdown(
            self.actual * factor, self.gated * factor, self.skipped * factor
        )

    @classmethod
    def split(
        cls, total: float, actual_frac: float, gated_frac: float
    ) -> "ActionBreakdown":
        """Split ``total`` by fractions; the remainder is skipped."""
        actual = total * actual_frac
        gated = total * gated_frac
        skipped = max(0.0, total - actual - gated)
        return cls(actual, gated, skipped)


@dataclass(slots=True)
class LevelTensorActions:
    """All sparse actions of one tensor at one storage level."""

    tensor: str
    level: str
    data_reads: ActionBreakdown = field(default_factory=ActionBreakdown)
    data_writes: ActionBreakdown = field(default_factory=ActionBreakdown)
    metadata_reads: ActionBreakdown = field(default_factory=ActionBreakdown)
    metadata_writes: ActionBreakdown = field(default_factory=ActionBreakdown)
    #: Expected resident occupancy in data-word equivalents.
    occupancy_words: float = 0.0
    #: Worst-case occupancy (drives the capacity validity check).
    worst_occupancy_words: float = 0.0
    #: Compression rate of the resident tile (dense words / encoded).
    compression_rate: float = 1.0
    #: Intersection-unit decisions made for this tensor's flows at
    #: this level (Sec 3.1.3's hardware overhead of skipping).
    intersection_checks: float = 0.0

    @property
    def total_cycled_accesses(self) -> float:
        return (
            self.data_reads.cycled
            + self.data_writes.cycled
            + self.metadata_reads.cycled
            + self.metadata_writes.cycled
        )


@dataclass(slots=True)
class SparseTraffic:
    """Output of the sparse modeling step: filtered (sparse) traffic."""

    actions: dict[tuple[str, str], LevelTensorActions] = field(
        default_factory=dict
    )
    compute: ActionBreakdown = field(default_factory=ActionBreakdown)
    #: Fraction of dense computes classified {actual, gated, skipped}.
    compute_fractions: tuple[float, float, float] = (1.0, 0.0, 0.0)

    def at(self, level: str, tensor: str) -> LevelTensorActions:
        key = (level, tensor)
        actions = self.actions.get(key)
        if actions is None:
            actions = LevelTensorActions(tensor=tensor, level=level)
            self.actions[key] = actions
        return actions

    def level_actions(self, level: str) -> list[LevelTensorActions]:
        return [a for (lvl, _t), a in self.actions.items() if lvl == level]
