"""Statistical density models (Sec 5.3.2, Table 4).

A density model statistically characterises the occupancy (nonzero
count) of the fibers/tiles of a tensor, answering three questions the
analyzers ask:

* ``prob_empty(shape)`` — probability a tile of this shape is all-zero
  (drives gating/skipping savings),
* ``expected_occupancy(shape)`` — average nonzeros per tile (drives
  compressed traffic and format overhead),
* ``max_occupancy(shape)`` — worst case nonzeros (drives capacity
  validity checks).

``shape`` may be a scalar element count (coordinate-independent models
only need the size) or a per-rank extent tuple (coordinate-dependent
models such as :class:`BandedDensity` and :class:`ActualDataDensity`
exploit the geometry).

The hypergeometric/binomial statistics are computed with closed-form
log-gamma kernels (below) rather than ``scipy.stats``: the scalar
``hypergeom.pmf`` machinery dominated the evaluation hot loop, and the
same ``(tensor_size, nnz, tile_size)`` queries repeat across mappings
and SAF variants, so the kernels are memoised module-wide. numpy is
imported lazily — only :class:`ActualDataDensity` needs it — which
keeps ``import repro`` free of the numpy/scipy cold-start tax.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Sequence
from functools import lru_cache
from typing import TYPE_CHECKING

from repro.common.errors import SpecError
from repro.common.util import prod

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

TileShape = int | Sequence[int]

#: Probabilities below this are dropped from occupancy distributions,
#: matching the old scipy-backed behaviour.
_PMF_EPSILON = 1e-15


# ----------------------------------------------------------------------
# Closed-form distribution kernels.
#
# The models below only ever ask for hypergeometric/binomial pmfs at
# integer parameters, and the engine asks for the same parameters over
# and over (every mapping of a workload shares its tensor sizes and nnz
# counts), so every kernel is wrapped in an LRU cache.


@lru_cache(maxsize=1 << 16)
def _log_comb(n: int, k: int) -> float:
    """``log C(n, k)``; ``-inf`` outside the support."""
    if k < 0 or k > n or n < 0:
        return -math.inf
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


@lru_cache(maxsize=1 << 16)
def hypergeom_pmf(k: int, total: int, nnz: int, draws: int) -> float:
    """P(occupancy == k) drawing ``draws`` of ``total`` positions with
    ``nnz`` nonzeros: ``C(nnz, k) C(total-nnz, draws-k) / C(total, draws)``."""
    if k < max(0, draws - (total - nnz)) or k > min(nnz, draws):
        return 0.0
    log_p = (
        _log_comb(nnz, k)
        + _log_comb(total - nnz, draws - k)
        - _log_comb(total, draws)
    )
    return math.exp(log_p)


@lru_cache(maxsize=1 << 16)
def hypergeom_prob_empty(total: int, nnz: int, draws: int) -> float:
    """P(occupancy == 0) = ``C(total-nnz, draws) / C(total, draws)``.

    Evaluated as the falling-factorial product over the shorter of
    ``draws`` and ``nnz`` when that is small (numerically exact), with
    the log-gamma form as the large-parameter fallback.
    """
    if nnz <= 0:
        return 1.0
    if draws <= 0:
        return 1.0
    if draws > total - nnz:
        return 0.0
    span = min(draws, nnz)
    if span <= 4096:
        # P(empty) = prod_{i<span} (total - long - i) / (total - i) where
        # long is the longer of (draws, nnz); both orderings are exact.
        longer = max(draws, nnz)
        p = 1.0
        for i in range(span):
            p *= (total - longer - i) / (total - i)
        return p
    return hypergeom_pmf(0, total, nnz, draws)


@lru_cache(maxsize=1 << 16)
def binom_pmf(k: int, n: int, p: float) -> float:
    """Binomial pmf ``C(n, k) p^k (1-p)^(n-k)``."""
    if k < 0 or k > n:
        return 0.0
    if p <= 0.0:
        return 1.0 if k == 0 else 0.0
    if p >= 1.0:
        return 1.0 if k == n else 0.0
    log_p = _log_comb(n, k) + k * math.log(p) + (n - k) * math.log1p(-p)
    return math.exp(log_p)


@lru_cache(maxsize=4096)
def hypergeom_distribution(
    total: int, nnz: int, draws: int
) -> tuple[tuple[int, float], ...]:
    """Full ``(occupancy, probability)`` support of the hypergeometric."""
    lo = max(0, draws - (total - nnz))
    hi = min(nnz, draws)
    pairs = []
    for k in range(lo, hi + 1):
        p = hypergeom_pmf(k, total, nnz, draws)
        if p > _PMF_EPSILON:
            pairs.append((k, p))
    return tuple(pairs)


@lru_cache(maxsize=4096)
def binom_distribution(
    size: int, density: float
) -> tuple[tuple[int, float], ...]:
    """Full ``(occupancy, probability)`` support of the binomial."""
    pairs = []
    for k in range(size + 1):
        p = binom_pmf(k, size, density)
        if p > _PMF_EPSILON:
            pairs.append((k, p))
    return tuple(pairs)


def _tile_size(shape: TileShape) -> int:
    if isinstance(shape, int):
        if shape <= 0:
            raise SpecError(f"tile size must be positive, got {shape}")
        return shape
    size = int(prod(shape))
    if size <= 0:
        raise SpecError(f"tile shape must be positive, got {tuple(shape)}")
    return size


class DensityModel(ABC):
    """Base class for all statistical density models."""

    @property
    @abstractmethod
    def density(self) -> float:
        """Overall fraction of nonzero values in the tensor."""

    @abstractmethod
    def prob_empty(self, shape: TileShape) -> float:
        """Probability that a tile of ``shape`` contains only zeros."""

    def cache_key(self) -> tuple | None:
        """Hashable content key for memoising derived analyses.

        Two models with equal keys must answer every query identically.
        ``None`` (the default) marks the model as uncacheable; analyses
        then fall back to recomputing.
        """
        return None

    def prob_nonempty(self, shape: TileShape) -> float:
        return 1.0 - self.prob_empty(shape)

    def expected_occupancy(self, shape: TileShape) -> float:
        """Expected nonzero count in a tile of ``shape``."""
        return _tile_size(shape) * self.density

    def max_occupancy(self, shape: TileShape) -> int:
        """Worst-case nonzero count in a tile of ``shape``."""
        return _tile_size(shape)

    def quantile_occupancy(self, shape: TileShape, sigmas: float = 3.0) -> float:
        """Statistically-largest tile occupancy (mean + ``sigmas`` std).

        The paper's validity check sizes buffers for the *statistical*
        largest tile rather than the absolute worst case (Sec 5.4);
        models with known variance override this. The base
        implementation is conservative (the absolute maximum).
        """
        return float(self.max_occupancy(shape))

    def monotone_occupancy_bound(self, shape: TileShape) -> float | None:
        """A lower bound of :meth:`quantile_occupancy` that is
        *monotone* in the tile extents, or ``None`` when the model
        cannot provide one.

        Used by the engine's capacity prefilter to derive dominance
        witnesses for mapspace pruning: a witness is only sound when
        growing the tile can never shrink the bound. Models whose
        expected occupancy is provably ``size * density`` (uniform,
        structured) opt in; coordinate-dependent models default to
        ``None`` and simply forgo subtree pruning.
        """
        return None

    def occupancy_distribution(self, shape: TileShape) -> list[tuple[int, float]]:
        """``(occupancy, probability)`` pairs for a tile of ``shape``.

        The default two-point approximation preserves ``prob_empty`` and
        the conditional mean; exact models override this.
        """
        p_empty = self.prob_empty(shape)
        mean = self.expected_occupancy(shape)
        if p_empty >= 1.0 or mean <= 0.0:
            return [(0, 1.0)]
        conditional = mean / (1.0 - p_empty)
        k = max(1, round(conditional))
        return [(0, p_empty), (k, 1.0 - p_empty)]

    def expected_occupancy_given_nonempty(self, shape: TileShape) -> float:
        p_empty = self.prob_empty(shape)
        if p_empty >= 1.0:
            return 0.0
        return self.expected_occupancy(shape) / (1.0 - p_empty)


class UniformDensity(DensityModel):
    """Uniformly random nonzero placement (Table 4, row 2).

    With ``tensor_size`` positions holding exactly
    ``round(tensor_size * density)`` nonzeros, the occupancy of a tile
    of size *s* is hypergeometric. When ``tensor_size`` is omitted the
    model uses the infinite-tensor (binomial) limit, where
    ``P(empty) = (1 - density) ** s``.
    """

    def __init__(self, density: float, tensor_size: int | None = None):
        if not 0.0 <= density <= 1.0:
            raise SpecError(f"density must be in [0, 1], got {density}")
        if tensor_size is not None and tensor_size <= 0:
            raise SpecError(f"tensor_size must be positive, got {tensor_size}")
        self._density = density
        self.tensor_size = tensor_size

    @property
    def density(self) -> float:
        return self._density

    def cache_key(self) -> tuple:
        return ("uniform", self._density, self.tensor_size)

    @property
    def _nnz(self) -> int | None:
        if self.tensor_size is None:
            return None
        return int(round(self.tensor_size * self._density))

    def prob_empty(self, shape: TileShape) -> float:
        size = _tile_size(shape)
        if self._density == 0.0:
            return 1.0
        if self.tensor_size is None:
            return (1.0 - self._density) ** size
        n = self.tensor_size
        return hypergeom_prob_empty(n, self._nnz, min(size, n))

    def expected_occupancy(self, shape: TileShape) -> float:
        return _tile_size(shape) * self._density

    def max_occupancy(self, shape: TileShape) -> int:
        size = _tile_size(shape)
        if self._nnz is None:
            return size
        return min(size, self._nnz)

    def quantile_occupancy(self, shape: TileShape, sigmas: float = 3.0) -> float:
        size = _tile_size(shape)
        d = self._density
        if self.tensor_size is None:
            variance = size * d * (1.0 - d)
        else:
            n = self.tensor_size
            size = min(size, n)
            # Hypergeometric variance with finite-population correction.
            fpc = (n - size) / max(1, n - 1)
            variance = size * d * (1.0 - d) * fpc
        estimate = size * d + sigmas * math.sqrt(max(0.0, variance))
        return float(min(self.max_occupancy(size), estimate))

    def monotone_occupancy_bound(self, shape: TileShape) -> float:
        # Expected occupancy: monotone in the tile size and never
        # above the mean + 3 sigma quantile.
        return _tile_size(shape) * self._density

    def occupancy_distribution(self, shape: TileShape) -> list[tuple[int, float]]:
        size = _tile_size(shape)
        if self._density == 0.0:
            return [(0, 1.0)]
        if self.tensor_size is None:
            return list(binom_distribution(size, self._density))
        n = self.tensor_size
        return list(hypergeom_distribution(n, self._nnz, min(size, n)))

    def __repr__(self) -> str:
        return (
            f"UniformDensity(density={self._density}, "
            f"tensor_size={self.tensor_size})"
        )


class FixedStructuredDensity(DensityModel):
    """N:M structured sparsity (Table 4, row 1).

    Every aligned block of ``block_size`` elements along the innermost
    axis holds exactly ``nonzeros_per_block`` nonzeros, so occupancy of
    block-aligned tiles is deterministic. Within a partial block the
    nonzero positions are unknown, modeled as hypergeometric inside the
    block.
    """

    def __init__(self, nonzeros_per_block: int, block_size: int):
        if nonzeros_per_block < 0 or block_size <= 0:
            raise SpecError(
                f"invalid structure {nonzeros_per_block}:{block_size}"
            )
        if nonzeros_per_block > block_size:
            raise SpecError(
                f"structure {nonzeros_per_block}:{block_size} is infeasible"
            )
        self.nonzeros_per_block = nonzeros_per_block
        self.block_size = block_size

    @property
    def density(self) -> float:
        return self.nonzeros_per_block / self.block_size

    def cache_key(self) -> tuple:
        return ("structured", self.nonzeros_per_block, self.block_size)

    def _split(self, shape: TileShape) -> tuple[int, int]:
        """Full blocks and remainder elements covered by the tile."""
        size = _tile_size(shape)
        return size // self.block_size, size % self.block_size

    def prob_empty(self, shape: TileShape) -> float:
        if self.nonzeros_per_block == 0:
            return 1.0
        full, rem = self._split(shape)
        if full > 0:
            return 0.0
        return hypergeom_prob_empty(
            self.block_size, self.nonzeros_per_block, rem
        )

    def expected_occupancy(self, shape: TileShape) -> float:
        return _tile_size(shape) * self.density

    def monotone_occupancy_bound(self, shape: TileShape) -> float:
        # Expected occupancy: monotone, and structured sparsity keeps
        # the per-block occupancy at or above it deterministically.
        return _tile_size(shape) * self.density

    def max_occupancy(self, shape: TileShape) -> int:
        full, rem = self._split(shape)
        return full * self.nonzeros_per_block + min(rem, self.nonzeros_per_block)

    def occupancy_distribution(self, shape: TileShape) -> list[tuple[int, float]]:
        full, rem = self._split(shape)
        base = full * self.nonzeros_per_block
        if rem == 0:
            return [(base, 1.0)]
        pairs = hypergeom_distribution(
            self.block_size, self.nonzeros_per_block, rem
        )
        return [(base + k, p) for k, p in pairs]

    def __repr__(self) -> str:
        return (
            f"FixedStructuredDensity({self.nonzeros_per_block}:"
            f"{self.block_size})"
        )


class StructuredNMDensity(DensityModel):
    """Row-aware N:M structured sparsity (e.g. the 2:4 tensor-core
    pattern the DSTC design exploits).

    Every aligned block of ``m`` consecutive elements along the
    *innermost* axis holds exactly ``n`` nonzeros. Unlike
    :class:`FixedStructuredDensity` — which flattens a multi-rank tile
    into one contiguous run — this model respects row boundaries: a
    tile of shape ``(..., c)`` covers ``prod(outer)`` independent row
    segments of ``c`` elements each, every segment starting
    block-aligned (tiles whose innermost extent divides into the
    block grid, the shapes N:M hardware produces). Each segment spans
    ``c // m`` full blocks (exactly ``n`` nonzeros apiece,
    deterministic) plus one partial block of ``c % m`` positions whose
    occupancy is hypergeometric inside the block, independent across
    rows. Scalar shape queries are treated as a single row segment.
    """

    def __init__(self, n: int, m: int):
        if m <= 0 or n < 0:
            raise SpecError(f"invalid N:M structure {n}:{m}")
        if n > m:
            raise SpecError(f"N:M structure {n}:{m} is infeasible")
        self.n = n
        self.m = m

    @property
    def density(self) -> float:
        return self.n / self.m

    def cache_key(self) -> tuple:
        return ("structured-nm", self.n, self.m)

    def _split(self, shape: TileShape) -> tuple[int, int, int]:
        """(row segments, full blocks per row, remainder per row)."""
        size = _tile_size(shape)  # validates positivity
        if isinstance(shape, int):
            rows, inner = 1, shape
        else:
            dims = tuple(int(s) for s in shape)
            inner = dims[-1]
            rows = size // inner
        return rows, inner // self.m, inner % self.m

    def prob_empty(self, shape: TileShape) -> float:
        if self.n == 0:
            return 1.0
        rows, full, rem = self._split(shape)
        if full > 0:
            return 0.0
        # Independent partial blocks, one per row segment.
        return hypergeom_prob_empty(self.m, self.n, rem) ** rows

    def expected_occupancy(self, shape: TileShape) -> float:
        return _tile_size(shape) * self.density

    def monotone_occupancy_bound(self, shape: TileShape) -> float:
        # Expected occupancy: monotone in every extent, and the
        # structure keeps block occupancies at it deterministically.
        return _tile_size(shape) * self.density

    def max_occupancy(self, shape: TileShape) -> int:
        rows, full, rem = self._split(shape)
        return rows * (full * self.n + min(rem, self.n))

    def quantile_occupancy(self, shape: TileShape, sigmas: float = 3.0) -> float:
        rows, full, rem = self._split(shape)
        mean = _tile_size(shape) * self.density
        if rem == 0 or self.m == 1:
            return float(mean)  # fully deterministic
        # Per-row partial block: hypergeometric(total=m, nnz=n,
        # draws=rem) variance, independent across rows.
        d = self.density
        fpc = (self.m - rem) / max(1, self.m - 1)
        variance = rows * rem * d * (1.0 - d) * fpc
        estimate = mean + sigmas * math.sqrt(max(0.0, variance))
        return float(min(self.max_occupancy(shape), estimate))

    #: Row counts above this fall back to the two-point approximation
    #: in :meth:`occupancy_distribution` — the exact convolution's
    #: support grows linearly with the row count.
    _EXACT_CONVOLUTION_ROWS = 64

    def occupancy_distribution(self, shape: TileShape) -> list[tuple[int, float]]:
        rows, full, rem = self._split(shape)
        base = rows * full * self.n
        if rem == 0 or self.n == 0:
            return [(base, 1.0)]
        if rows > self._EXACT_CONVOLUTION_ROWS:
            return super().occupancy_distribution(shape)
        pairs = hypergeom_distribution(self.m, self.n, rem)
        dist = {0: 1.0}
        for _ in range(rows):
            folded: dict[int, float] = {}
            for have, p0 in dist.items():
                for k, p in pairs:
                    q = p0 * p
                    if q > _PMF_EPSILON:
                        folded[have + k] = folded.get(have + k, 0.0) + q
            dist = folded
        return sorted((base + k, p) for k, p in dist.items())

    def __repr__(self) -> str:
        return f"StructuredNMDensity({self.n}:{self.m})"


class BandedDensity(DensityModel):
    """Diagonal-band sparsity for 2D matrices (Table 4, row 3).

    Element ``(i, j)`` may be nonzero only when ``|i - j| <= band_width``;
    ``fill_density`` thins the band uniformly. The model is
    coordinate-dependent: tiles near the diagonal are dense, tiles far
    from it are empty. Scalar-shape queries treat the tile as a
    ``1 x s`` row segment at a uniformly random position.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        band_width: int,
        fill_density: float = 1.0,
    ):
        if rows <= 0 or cols <= 0:
            raise SpecError(f"matrix shape must be positive, got {rows}x{cols}")
        if band_width < 0:
            raise SpecError(f"band_width must be >= 0, got {band_width}")
        if not 0.0 <= fill_density <= 1.0:
            raise SpecError(f"fill_density must be in [0,1], got {fill_density}")
        self.rows = rows
        self.cols = cols
        self.band_width = band_width
        self.fill_density = fill_density
        # Precompute in-band indicator lazily for large matrices.
        self._band_elems = self._count_band_elements()

    def _count_band_elements(self) -> int:
        count = 0
        for i in range(self.rows):
            lo = max(0, i - self.band_width)
            hi = min(self.cols - 1, i + self.band_width)
            if hi >= lo:
                count += hi - lo + 1
        return count

    @property
    def density(self) -> float:
        return self._band_elems * self.fill_density / (self.rows * self.cols)

    def cache_key(self) -> tuple:
        return (
            "banded",
            self.rows,
            self.cols,
            self.band_width,
            self.fill_density,
        )

    def _band_overlap(self, r0: int, c0: int, th: int, tw: int) -> int:
        """Number of in-band elements inside tile [r0, r0+th) x [c0, c0+tw)."""
        overlap = 0
        for i in range(r0, min(r0 + th, self.rows)):
            lo = max(c0, i - self.band_width)
            hi = min(c0 + tw - 1, self.cols - 1, i + self.band_width)
            if hi >= lo:
                overlap += hi - lo + 1
        return overlap

    def _normalize_shape(self, shape: TileShape) -> tuple[int, int]:
        if isinstance(shape, int):
            return (1, shape)
        dims = [d for d in shape if d > 1] or [1]
        if len(dims) == 1:
            # Ambiguous orientation; treat as a row segment.
            return (1, dims[0])
        if len(dims) == 2:
            return (dims[0], dims[1])
        raise SpecError(
            f"BandedDensity supports 2D tiles, got shape {tuple(shape)}"
        )

    def tile_prob_empty(self, origin: tuple[int, int], shape: TileShape) -> float:
        """Coordinate-dependent P(empty) for a tile at a given origin."""
        th, tw = self._normalize_shape(shape)
        overlap = self._band_overlap(origin[0], origin[1], th, tw)
        return (1.0 - self.fill_density) ** overlap if overlap else 1.0

    def prob_empty(self, shape: TileShape) -> float:
        """P(empty) averaged over all aligned tile positions."""
        th, tw = self._normalize_shape(shape)
        total, count = 0.0, 0
        for r0 in range(0, self.rows, th):
            for c0 in range(0, self.cols, tw):
                total += self.tile_prob_empty((r0, c0), (th, tw))
                count += 1
        return total / count if count else 1.0

    def expected_occupancy(self, shape: TileShape) -> float:
        th, tw = self._normalize_shape(shape)
        total, count = 0.0, 0
        for r0 in range(0, self.rows, th):
            for c0 in range(0, self.cols, tw):
                total += self._band_overlap(r0, c0, th, tw) * self.fill_density
                count += 1
        return total / count if count else 0.0

    def max_occupancy(self, shape: TileShape) -> int:
        th, tw = self._normalize_shape(shape)
        best = 0
        for r0 in range(0, self.rows, th):
            for c0 in range(0, self.cols, tw):
                best = max(best, self._band_overlap(r0, c0, th, tw))
        return best

    def __repr__(self) -> str:
        return (
            f"BandedDensity({self.rows}x{self.cols}, band={self.band_width}, "
            f"fill={self.fill_density})"
        )


class ActualDataDensity(DensityModel):
    """Exact statistics from real tensor data (Table 4, row 4).

    Enumerates the coordinate-space tiling of the provided array for
    each queried tile shape; results are cached per shape. Slower but
    exact — this is the model the paper uses to close the gap on
    Eyeriss V2 layers where statistical approximation shows error.
    """

    def __init__(self, data: "np.ndarray"):
        import numpy as np

        self.data = np.asarray(data)
        if self.data.size == 0:
            raise SpecError("ActualDataDensity requires a non-empty tensor")
        self._cache: dict[tuple[int, ...], "np.ndarray"] = {}
        self._content_key: tuple | None = None

    def cache_key(self) -> tuple:
        """Content key: a bytes digest of the tensor.

        Two models over bit-identical arrays answer every query
        identically, so hashing the raw buffer (plus shape and dtype,
        which the buffer alone does not encode) lets real-data
        workloads share the tile-format and sparse-analysis memos
        instead of being keyed by array identity. The digest is
        computed once, on first request, and reused for the lifetime
        of the model; callers must not mutate ``data`` afterwards.
        """
        if self._content_key is None:
            import hashlib

            import numpy as np

            buffer = np.ascontiguousarray(self.data)
            digest = hashlib.blake2b(
                buffer.tobytes(), digest_size=16
            ).hexdigest()
            self._content_key = (
                "actual-data",
                self.data.shape,
                str(self.data.dtype),
                digest,
            )
        return self._content_key

    @property
    def density(self) -> float:
        import numpy as np

        return float(np.count_nonzero(self.data)) / self.data.size

    def _normalize_shape(self, shape: TileShape) -> tuple[int, ...]:
        if isinstance(shape, int):
            # Interpret as a contiguous run along the innermost axis.
            full = [1] * (self.data.ndim - 1) + [shape]
            return tuple(full)
        shape = tuple(int(s) for s in shape)
        if len(shape) < self.data.ndim:
            shape = (1,) * (self.data.ndim - len(shape)) + shape
        elif len(shape) > self.data.ndim:
            extra, rest = shape[: -self.data.ndim], shape[-self.data.ndim :]
            if any(e != 1 for e in extra):
                raise SpecError(
                    f"tile shape {shape} has more ranks than data "
                    f"({self.data.ndim})"
                )
            shape = rest
        return tuple(min(s, d) for s, d in zip(shape, self.data.shape))

    def _occupancies(self, shape: tuple[int, ...]) -> "np.ndarray":
        import numpy as np

        if shape not in self._cache:
            counts = []
            ranges = [
                range(0, dim, t) for dim, t in zip(self.data.shape, shape)
            ]
            grids = np.meshgrid(*[np.asarray(r) for r in ranges], indexing="ij")
            origins = np.stack([g.ravel() for g in grids], axis=-1)
            for origin in origins:
                slices = tuple(
                    slice(int(o), int(o) + t) for o, t in zip(origin, shape)
                )
                counts.append(int(np.count_nonzero(self.data[slices])))
            self._cache[shape] = np.asarray(counts)
        return self._cache[shape]

    def prob_empty(self, shape: TileShape) -> float:
        import numpy as np

        occ = self._occupancies(self._normalize_shape(shape))
        return float(np.mean(occ == 0))

    def expected_occupancy(self, shape: TileShape) -> float:
        import numpy as np

        occ = self._occupancies(self._normalize_shape(shape))
        return float(np.mean(occ))

    def max_occupancy(self, shape: TileShape) -> int:
        import numpy as np

        occ = self._occupancies(self._normalize_shape(shape))
        return int(np.max(occ))

    def occupancy_distribution(self, shape: TileShape) -> list[tuple[int, float]]:
        import numpy as np

        occ = self._occupancies(self._normalize_shape(shape))
        values, counts = np.unique(occ, return_counts=True)
        total = counts.sum()
        return [(int(v), float(c) / total) for v, c in zip(values, counts)]

    def __repr__(self) -> str:
        return (
            f"ActualDataDensity(shape={self.data.shape}, "
            f"density={self.density:.3f})"
        )


def intersection_nonempty_probability(
    a: DensityModel, b: DensityModel, shape: TileShape
) -> float:
    """P(both tiles nonempty) assuming independent operand tensors.

    The statistical approximation the paper identifies as its main
    error source on Eyeriss V2 (Sec 6.3.2): when nonzero locations are
    correlated the true ratio deviates.
    """
    return a.prob_nonempty(shape) * b.prob_nonempty(shape)


def effectual_compute_fraction(operands: Sequence[DensityModel]) -> float:
    """Fraction of dense compute with all operands nonzero (independent)."""
    if not operands:
        return 1.0
    return float(prod(m.density for m in operands))
