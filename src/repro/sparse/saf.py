"""Sparse Acceleration Feature (SAF) specifications (Sec 3).

The taxonomy classifies sparsity-aware acceleration into three
orthogonal features:

* **representation format** — how nonzero locations are encoded
  (:mod:`repro.sparse.formats`),
* **gating** — idle during ineffectual operations (saves energy only),
* **skipping** — do not spend cycles on ineffectual operations (saves
  energy and time).

Gating/skipping at storage is based on intersections:
``Skip B <- A`` is a leader-follower intersection (A leads), and
``Skip A <-> B`` is double-sided, modeled as the pair of
leader-follower SAFs in both directions (Sec 5.3.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import SpecError


class SAFKind(enum.Enum):
    """Whether ineffectual operations are gated (idle) or skipped."""

    GATE = "gate"
    SKIP = "skip"


@dataclass(frozen=True)
class StorageSAF:
    """Gating or skipping applied to a storage level.

    ``target`` accesses at ``level`` are eliminated when the leader
    tile(s) of every tensor in ``conditioned_on`` is empty... more
    precisely: the access is *kept* only when all leader tiles are
    nonempty (an access conditioned on A and B is eliminated if either
    leader is empty), matching ``Skip Z <- A & B`` semantics.

    A double-sided intersection ``Skip A <-> B`` is expressed as two
    instances: ``StorageSAF(skip, A, [B])`` and ``StorageSAF(skip, B, [A])``.
    """

    kind: SAFKind
    target: str
    conditioned_on: tuple[str, ...]
    level: str

    def __post_init__(self) -> None:
        if not self.conditioned_on:
            raise SpecError(
                f"SAF on {self.target!r} must be conditioned on at least "
                "one tensor"
            )
        if self.target in self.conditioned_on:
            raise SpecError(
                f"SAF target {self.target!r} cannot condition on itself"
            )

    def describe(self) -> str:
        arrow = " <- ".join([self.target, " & ".join(self.conditioned_on)])
        return f"{self.kind.value.capitalize()} {arrow} @ {self.level}"

    def __repr__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class ComputeSAF:
    """Gating or skipping applied to the compute units.

    Conditioned on the operand tensors listed (default: all operands):
    a compute with any all-zero conditioned operand is eliminated.
    """

    kind: SAFKind
    conditioned_on: tuple[str, ...] = ()

    def describe(self) -> str:
        cond = " & ".join(self.conditioned_on) if self.conditioned_on else "operands"
        return f"{self.kind.value.capitalize()} Compute <- {cond}"

    def __repr__(self) -> str:
        return self.describe()


def gate_storage(target: str, conditioned_on, level: str) -> StorageSAF:
    """Shorthand for ``Gate target <- conditioned_on @ level``."""
    return StorageSAF(SAFKind.GATE, target, _tupled(conditioned_on), level)


def skip_storage(target: str, conditioned_on, level: str) -> StorageSAF:
    """Shorthand for ``Skip target <- conditioned_on @ level``."""
    return StorageSAF(SAFKind.SKIP, target, _tupled(conditioned_on), level)


def double_sided(
    kind: SAFKind, tensor_a: str, tensor_b: str, level: str
) -> list[StorageSAF]:
    """``A <-> B``: the pair of leader-follower SAFs in both directions."""
    return [
        StorageSAF(kind, tensor_a, (tensor_b,), level),
        StorageSAF(kind, tensor_b, (tensor_a,), level),
    ]


def gate_compute(conditioned_on=()) -> ComputeSAF:
    return ComputeSAF(SAFKind.GATE, _tupled(conditioned_on))


def skip_compute(conditioned_on=()) -> ComputeSAF:
    return ComputeSAF(SAFKind.SKIP, _tupled(conditioned_on))


def _tupled(value) -> tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    return tuple(value)


@dataclass
class SAFSpec:
    """All SAFs of one design plus per-level representation formats.

    ``formats`` maps ``(level_name, tensor_name)`` to a
    :class:`~repro.sparse.formats.FormatSpec`; unlisted pairs default to
    uncompressed. ``storage_safs`` and ``compute_safs`` list the
    gating/skipping features.
    """

    formats: dict[tuple[str, str], object] = field(default_factory=dict)
    storage_safs: list[StorageSAF] = field(default_factory=list)
    compute_safs: list[ComputeSAF] = field(default_factory=list)
    #: Lazily-computed content key; treat the spec as frozen once it
    #: has been evaluated (the engine keys caches on this).
    _cache_key: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def format_for(self, level: str, tensor: str):
        return self.formats.get((level, tensor))

    def cache_key(self) -> tuple:
        """Canonical hashable content key.

        Two SAF specs with equal keys filter traffic identically: same
        per-(level, tensor) formats, same storage SAFs (order
        preserved — it is observable through accumulation order), same
        compute SAFs. Used by the engine's sparse-analysis cache stage.
        Computed once and memoised: do not mutate a spec after it has
        been evaluated.
        """
        if self._cache_key is None:
            formats = tuple(
                sorted(
                    (level, tensor, fmt.cache_key())
                    for (level, tensor), fmt in self.formats.items()
                )
            )
            self._cache_key = (
                formats,
                tuple(self.storage_safs),
                tuple(self.compute_safs),
            )
        return self._cache_key

    def storage_safs_at(self, level: str) -> list[StorageSAF]:
        return [s for s in self.storage_safs if s.level == level]

    def describe(self) -> str:
        lines = []
        for (level, tensor), fmt in sorted(self.formats.items()):
            lines.append(f"{level}/{tensor}: {fmt.describe()}")
        lines.extend(s.describe() for s in self.storage_safs)
        lines.extend(s.describe() for s in self.compute_safs)
        return "\n".join(lines) if lines else "(dense design: no SAFs)"
