"""The Sparseloop evaluation engine (Fig. 5).

``Evaluator.evaluate`` runs the three decoupled modeling steps:

1. dataflow modeling (dense traffic from the mapping),
2. sparse modeling (SAF filtering with statistical density models),
3. micro-architectural modeling (validity, cycles, energy).

A :class:`Design` bundles the architecture, the SAF specification, and
how mappings are obtained (fixed, per-workload factory, or a mapspace
search through :class:`~repro.mapping.mapspace.Mapper`).

Fast-path machinery
-------------------

The engine is built for design-space-exploration traffic, where the
same dense analysis and the same candidate mappings are evaluated over
and over with different SAF configurations:

* unified analysis cache — every :class:`Evaluator` owns an
  :class:`~repro.common.cache.AnalysisCache` whose named stages memoise
  whole pipeline steps by content key: the ``"dense"`` stage
  (:class:`~repro.common.cache.DenseAnalysisCache`) reuses dataflow
  analyses across SAF/density variants of a mapping, the ``"sparse"``
  stage reuses entire :class:`~repro.sparse.traffic.SparseTraffic`
  results across repeated evaluations of one (mapping, SAF, density)
  point — e.g. SAF sweeps that revisit density levels, or network
  layers sharing shapes — and the micro-model stages (``"validity"``,
  ``"latency"``, ``"energy"``) memoise the model's tail under the same
  sparse content key, so a sparse-stage hit short-circuits the entire
  evaluation. Pass ``cache=None`` to disable, or share one instance
  across evaluators to pool hits. Cached results are read-only by
  convention.
* persistent tier — pass ``persistent=PersistentCache(...)`` (and call
  :meth:`Evaluator.warm_start` / :meth:`Evaluator.spill_cache`, or let
  :meth:`Evaluator.evaluate_network` do both around its fan-out) to
  spill cache snapshots to a versioned on-disk store so repeated CLI
  runs, sweeps, and CI jobs start warm. Snapshot identity comes from
  :func:`persistent_state_key`; worker initializers reopen the same
  store so even first-touch parallel runs warm from disk.
* capacity pre-filter — ``search_mappings`` rejects candidates whose
  *lower-bound* tile footprint already overflows a storage level
  before running the full dense→sparse→micro pipeline. The bound is
  strictly optimistic (payload-only, statistical occupancy), so no
  mapping the full validity check would accept is ever dropped. When
  the overflow also holds under a *monotone* bound, the reason is fed
  back to the :class:`~repro.mapping.mapspace.Mapper`
  (``register_overflow``) so whole factorization subtrees dominated by
  the failing tile shape are pruned instead of being rejected one by
  one.
* batch/parallel APIs — :meth:`Evaluator.evaluate_many` and
  ``search_mappings(..., parallel=N)`` fan work out over a process
  pool in deterministic contiguous chunks; results (including search
  tie-breaking) are identical to the serial order. Worker processes
  start *warm*: the parent ships its hottest cache entries (dense,
  sparse, and the process-global tile-format stage) through the pool
  initializer. Parallel mode requires picklable designs/workloads/
  objectives (module-level functions, not lambdas).
"""

from __future__ import annotations

import hashlib
import os
import random
import warnings
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field, replace
from itertools import islice
from pathlib import Path

import numpy as np

from repro.accelergy.backend import Accelergy
from repro.arch.spec import Architecture
from repro.common.cache import (
    DEFAULT_EXPORT_LIMIT,
    AnalysisCache,
    CachedHashKey,
    DenseAnalysisCache,
    PersistentCache,
    global_cache,
)
from repro.common.errors import (
    MappingError,
    ReproError,
    SpecError,
    ValidationError,
)
from repro.dataflow.nest_analysis import (
    DENSE_VECTORIZED_DEFAULT,
    DenseTraffic,
    analyze_dataflow,
    analyze_dataflow_batch,
    dense_analysis_key,
)
from repro.mapping.mapping import Mapping
from repro.mapping.mapspace import (
    CANDIDATES_STAGE,
    Mapper,
    MapspaceConstraints,
    sampled_candidates_key,
)
from repro.micro.energy import ENERGY_STAGE, compute_energy
from repro.micro.latency import LATENCY_STAGE, compute_latency
from repro.micro.validity import (
    VALIDITY_STAGE,
    check_validity,
    overflow_error,
)
from repro.model.result import EvaluationResult
from repro.search.evolutionary import (
    EvolutionConfig,
    genome_key,
    genome_of,
    make_offspring,
)
from repro.search.frontier import ParetoFrontier
from repro.search.objective import Objective, resolve_objective
from repro.sparse.format_analyzer import TILE_FORMAT_STAGE
from repro.sparse.postprocess import (
    VECTORIZED_DEFAULT,
    analyze_sparse,
    analyze_sparse_batch,
    ensure_output_density,
    sparse_analysis_key,
)
from repro.sparse.saf import SAFSpec
from repro.sparse.traffic import SparseTraffic
from repro.workload.spec import Workload

__all__ = [
    "Design",
    "DenseAnalysisCache",
    "Evaluator",
    "OverflowReason",
    "PersistentCache",
    "SearchOutcome",
    "persistent_state_key",
]

MappingFactory = Callable[[Workload, Architecture], Mapping]

#: Cache stage memoising whole :class:`~repro.model.result.FusedResult`
#: objects by graph + design + resolved sub-nest + density content.
FUSED_STAGE = "fused"

#: Default backend for the capacity prefilter in the batched search
#: strategy. The scalar oracle (:meth:`Evaluator._capacity_overflow`
#: per candidate) can be forced process-wide by setting
#: ``REPRO_SCALAR_PREFILTER`` to anything but an explicit falsy value.
PREFILTER_VECTORIZED_DEFAULT = os.environ.get(
    "REPRO_SCALAR_PREFILTER", ""
).lower() in ("", "0", "false", "no", "off")

#: Entry points that already emitted their deprecation warning this
#: process (so heavy sweeps through legacy call sites warn once, not
#: once per evaluation). Tests reset this to re-assert the warning.
_DEPRECATION_WARNED: set[str] = set()


def _warn_deprecated(name: str, replacement: str) -> None:
    """Emit the once-per-process deprecation warning for a legacy
    :class:`Evaluator` entry point."""
    if name in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(name)
    warnings.warn(
        f"Evaluator.{name}() is deprecated; use {replacement} from "
        "repro.api instead (see docs/api.md for the migration table)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class Design:
    """A complete accelerator design point.

    Exactly one of ``mapping``, ``mapping_factory``, or ``constraints``
    decides how each workload is scheduled:

    * ``mapping`` — a fixed mapping (single-workload studies),
    * ``mapping_factory`` — callable producing a mapping per workload
      (the native dataflow of a design, e.g. SCNN's
      PlanarTiled-InputStationary),
    * ``constraints`` — a mapspace to search with the built-in mapper.
    """

    name: str
    arch: Architecture
    safs: SAFSpec = field(default_factory=SAFSpec)
    mapping: Mapping | None = None
    mapping_factory: MappingFactory | None = None
    constraints: MapspaceConstraints | None = None

    def mapping_for(self, workload: Workload) -> Mapping | None:
        if self.mapping is not None:
            return self.mapping
        if self.mapping_factory is not None:
            return self.mapping_factory(workload, self.arch)
        return None


@dataclass(frozen=True)
class OverflowReason:
    """Why the capacity pre-filter rejected a candidate mapping.

    ``dim_extents`` are the candidate's per-dimension tile extents at
    the overflowing ``level``. ``monotone`` is True when the overflow
    also holds under a monotone occupancy bound; the extents are then
    a sound witness for :meth:`~repro.mapping.mapspace.Mapper.
    register_overflow` subtree pruning.
    """

    level: str
    dim_extents: dict[str, int]
    used_words: float
    capacity_words: float
    monotone: bool = False


class _PrefilterReject:
    """One block-prefilter rejection, with the witness held *lazily*.

    The batched prefilter computes occupancy bounds for a whole block
    in stacked arrays; most rejects never register a witness (the
    mapper already dominates them, or the overflow is not monotone), so
    the per-dimension extents dict is only materialised from the block
    arrays on demand. ``reason()`` upgrades to a full
    :class:`OverflowReason` — bit-identical to the scalar oracle's.
    """

    __slots__ = (
        "level", "monotone", "used_words", "capacity_words",
        "_extent_cols", "_col", "_dims", "_reason",
    )

    def __init__(
        self,
        level: str,
        monotone: bool,
        used_words: float,
        capacity_words: float,
        extent_cols: dict | None = None,
        col: int = 0,
        dims: tuple[str, ...] = (),
        reason: OverflowReason | None = None,
    ):
        self.level = level
        self.monotone = monotone
        self.used_words = used_words
        self.capacity_words = capacity_words
        self._extent_cols = extent_cols
        self._col = col
        self._dims = dims
        self._reason = reason

    def witness_extents(self) -> dict[str, int]:
        """Per-dimension tile extents at the overflowing level."""
        if self._reason is not None:
            return self._reason.dim_extents
        cols = self._extent_cols
        return {d: int(cols[d][self._col]) for d in self._dims}

    def reason(self) -> OverflowReason:
        """The full scalar-oracle-equivalent :class:`OverflowReason`."""
        if self._reason is None:
            self._reason = OverflowReason(
                level=self.level,
                dim_extents=self.witness_extents(),
                used_words=self.used_words,
                capacity_words=self.capacity_words,
                monotone=self.monotone,
            )
        return self._reason


def _edp_objective(result: EvaluationResult) -> float:
    """Default search objective (module-level so it pickles)."""
    return result.edp


@dataclass
class SearchOutcome:
    """Everything a mapspace search produced.

    ``best`` is the ``(score, index, result)`` winner — the minimum
    ``(score, index)`` member of the frontier, which for a scalar
    objective is provably the serial oracle's first-strictly-better
    winner and for vector objectives guarantees the winner lies on
    the frontier. ``objective`` is the resolved
    :class:`~repro.search.objective.Objective` the scores and frontier
    axes came from.
    """

    objective: Objective
    strategy: str
    frontier: ParetoFrontier
    best: tuple[float, int, EvaluationResult] | None

    @property
    def best_result(self) -> EvaluationResult | None:
        return self.best[2] if self.best is not None else None

    @property
    def best_score(self) -> float | None:
        return self.best[0] if self.best is not None else None

    @property
    def best_index(self) -> int | None:
        return self.best[1] if self.best is not None else None


#: Per-architecture Accelergy backends. The backend is immutable after
#: construction (per-action energy tables only), so one instance serves
#: every evaluation of an architecture in the process; bounded by a
#: clear-on-overflow so sweeps over many architectures cannot leak.
_ACCELERGY_MEMO: dict[tuple, Accelergy] = {}


def _accelergy_for(arch: Architecture) -> Accelergy:
    key = arch.cache_key()
    backend = _ACCELERGY_MEMO.get(key)
    if backend is None:
        if len(_ACCELERGY_MEMO) >= 64:
            _ACCELERGY_MEMO.clear()
        backend = _ACCELERGY_MEMO[key] = Accelergy(arch)
    return backend


@dataclass
class Evaluator:
    """Runs the three-step Sparseloop model.

    Knobs:

    ``check_capacity``: raise when worst-case tiles overflow a level.
    ``search_budget``: mappings sampled when a design only provides
    mapspace constraints.
    ``search_seed``: RNG seed for mapspace sampling.
    ``cache``: the :class:`~repro.common.cache.AnalysisCache` memoising
    pipeline stages across evaluations (``None`` disables caching; a
    shared instance pools hits across evaluators). Each evaluator gets
    its own cache by default. Breaking change from the PR 1 API: the
    ``dense_cache=`` constructor argument is gone — pass ``cache=``
    (``Evaluator(cache=None)`` to disable, a shared ``AnalysisCache``
    to pool) — while the ``dense_cache`` *accessor* remains for
    stats/inspection of the dense stage.
    ``prefilter_capacity``: in ``search_mappings``, cheaply reject
    candidates whose optimistic tile footprint already overflows a
    finite storage level, skipping the full pipeline — and feed the
    overflow reason back to the mapper to prune dominated factorization
    subtrees. Never changes the search result (the bound is a strict
    lower bound of the validity check's occupancy); only applies when
    ``check_capacity`` is True.
    ``sparse_vectorized``: run the sparse post-processing stage with
    batched numpy arithmetic (the default, unless the
    ``REPRO_SCALAR_SPARSE`` environment variable forced the scalar
    oracle process-wide) or the scalar oracle path; both are
    bit-identical (see :mod:`repro.sparse.postprocess`).
    ``dense_vectorized``: run the dense nest analysis of each search
    block through the stacked backend
    (:func:`~repro.dataflow.nest_analysis.analyze_dataflow_batch`)
    instead of one scalar walk per candidate, and share the
    sparse-walk memo (leader keeps, format scalings) across the
    candidates of one search. Default follows ``REPRO_SCALAR_DENSE``;
    both backends are bit-identical.
    ``prefilter_vectorized``: run the capacity prefilter of the
    batched search strategy as one stacked numpy reduction per memory
    level and block instead of the scalar per-candidate scan
    (:meth:`_capacity_overflow`, which remains the bit-identical
    oracle). Default follows ``REPRO_SCALAR_PREFILTER``. Witness
    feedback into the mapper is unchanged: overflow extents are
    derived lazily from the block arrays only when a witness is
    actually registered.
    ``search_strategy`` / ``search_batch_size``: how the serial
    mapspace scan evaluates candidates. ``"batched"`` (the default)
    drives the search in candidate blocks — prefilter each candidate
    as it is drawn (feeding overflow witnesses straight back to the
    mapper, so generation between blocks is already pruned), then push
    every survivor of a block through **one stacked sparse evaluation**
    (:func:`~repro.sparse.postprocess.analyze_sparse_batch`) instead of
    one numpy pass per candidate — and, on the sampled path, replays
    the candidate stream from the ``"candidates"`` cache stage instead
    of re-drawing it. ``"serial"`` is the per-candidate oracle (the
    exact historical scan); both strategies return a bit-identical
    winner — same score, same stream index, same result — because the
    stacked arithmetic is elementwise and the scan preserves candidate
    order, prefilter decisions, and witness feedback points. The
    batched strategy keeps its block structure (and the candidate
    memo) even when the scalar sparse oracle is forced — the stacked
    flush simply degenerates to per-candidate scalar arithmetic.
    ``"evolutionary"`` breeds candidates in factorization space
    instead of scanning a fixed stream: population seeded from the
    ``"candidates"`` memo, crossover/mutation honouring
    ``fixed_factors`` by construction, overflow witnesses killing
    offspring before evaluation without consuming budget (see
    :meth:`_search_evolutionary` and ``docs/search.md``).
    ``evolution``: optional
    :class:`repro.search.evolutionary.EvolutionConfig` overriding the
    evolutionary strategy's knobs (population sizing, selection cut,
    mutation rate).
    ``persistent``: an optional
    :class:`~repro.common.cache.PersistentCache` on-disk tier.
    :meth:`warm_start` loads a snapshot into the in-memory cache and
    :meth:`spill_cache` writes one back; :meth:`evaluate_network` does
    both automatically, and parallel fan-outs hand the store to worker
    initializers so workers can warm from disk.
    ``persistent_key``: the snapshot identity used when
    :meth:`warm_start`/:meth:`spill_cache` are called without an
    explicit key (set automatically by the first keyed call).

    Batch evaluation: :meth:`evaluate_many` evaluates a list of jobs,
    and it, :meth:`search_mappings`, and :meth:`evaluate_network`
    accept ``parallel=N`` to fan out over ``N`` worker processes in
    deterministic contiguous chunks (results identical to serial).
    Workers are pre-warmed with the parent's cache entries.
    """

    check_capacity: bool = True
    search_budget: int = 64
    search_seed: int = 0
    cache: AnalysisCache | None = field(
        default_factory=AnalysisCache, repr=False
    )
    prefilter_capacity: bool = True
    sparse_vectorized: bool = field(
        default_factory=lambda: VECTORIZED_DEFAULT
    )
    dense_vectorized: bool = field(
        default_factory=lambda: DENSE_VECTORIZED_DEFAULT
    )
    prefilter_vectorized: bool = field(
        default_factory=lambda: PREFILTER_VECTORIZED_DEFAULT
    )
    persistent: PersistentCache | None = field(default=None, repr=False)
    persistent_key: str | None = field(default=None, repr=False)
    search_strategy: str = "batched"
    search_batch_size: int = 32
    evolution: EvolutionConfig | None = field(default=None, repr=False)

    @property
    def dense_cache(self) -> DenseAnalysisCache | None:
        """The dense analysis stage (legacy accessor)."""
        return self.cache.dense if self.cache is not None else None

    @property
    def sparse_cache(self):
        """The sparse analysis stage, or ``None`` when disabled."""
        return self.cache.sparse if self.cache is not None else None

    def evaluate(
        self,
        design: Design,
        workload: Workload,
        mapping: Mapping | None = None,
    ) -> EvaluationResult:
        """Deprecated entry point; use :class:`repro.api.Session`.

        Delegates to the same implementation the Session submits to, so
        results are identical; warns (once per process) to steer new
        code at the façade.
        """
        _warn_deprecated("evaluate", "Session.evaluate / Session.submit")
        return self._evaluate(design, workload, mapping)

    def _evaluate(
        self,
        design: Design,
        workload: Workload,
        mapping: Mapping | None = None,
    ) -> EvaluationResult:
        """Evaluate one design on one workload.

        ``mapping`` overrides the design's own mapping policy. If the
        design carries only mapspace constraints, the mapper searches
        for the lowest-EDP valid mapping.
        """
        mapping = mapping or design.mapping_for(workload)
        if mapping is None:
            if design.constraints is None:
                raise SpecError(
                    f"design {design.name!r} has no mapping, factory, or "
                    "constraints"
                )
            result = self._search_mappings(design, workload)
            if result is None:
                raise MappingError(
                    f"no valid mapping found for {design.name!r} on "
                    f"{workload.name!r} within budget {self.search_budget}"
                )
            return result
        return self._evaluate_mapping(design, workload, mapping)

    def _dense_analysis(
        self, design: Design, workload: Workload, mapping: Mapping
    ) -> DenseTraffic:
        return self._dense_analysis_keyed(design, workload, mapping)[0]

    def _dense_analysis_keyed(
        self, design: Design, workload: Workload, mapping: Mapping
    ) -> tuple[DenseTraffic, tuple | None]:
        if self.cache is None:
            return analyze_dataflow(workload, design.arch, mapping), None
        return self.cache.dense.get_or_compute_keyed(
            workload, design.arch, mapping
        )

    def _sparse_analysis(
        self,
        dense: DenseTraffic,
        safs: SAFSpec,
        dense_key: tuple | None = None,
    ) -> SparseTraffic:
        """Sparse post-processing through the ``"sparse"`` cache stage."""
        return self._sparse_analysis_keyed(dense, safs, dense_key)[0]

    def _sparse_analysis_keyed(
        self,
        dense: DenseTraffic,
        safs: SAFSpec,
        dense_key: tuple | None = None,
    ) -> tuple[SparseTraffic, CachedHashKey | None]:
        """Sparse post-processing, returning ``(sparse, key)``.

        The whole :class:`SparseTraffic` is memoised by
        :func:`~repro.sparse.postprocess.sparse_analysis_key`; hits
        return the stored (read-only) object. Uncacheable density
        models (no content key) fall back to recomputing and return a
        ``None`` key, which also opts the micro-model stages out. The
        key is handed back so the micro stages can reuse it: a sparse
        analysis fully determines validity, latency, and energy (the
        architecture key rides inside it via the dense key).
        """
        if self.cache is None:
            return (
                analyze_sparse(dense, safs, vectorized=self.sparse_vectorized),
                None,
            )
        key = sparse_analysis_key(dense, safs, dense_key)
        if key is None:
            return (
                analyze_sparse(dense, safs, vectorized=self.sparse_vectorized),
                None,
            )
        # One hash-memoising wrapper serves the sparse stage and all
        # three micro-model stages (several dict operations each).
        key = CachedHashKey(key)
        sparse = self.cache.sparse.get_or_compute(
            key,
            lambda: analyze_sparse(
                dense, safs, vectorized=self.sparse_vectorized
            ),
        )
        return sparse, key

    # ------------------------------------------------------------------
    # Micro-model stages (validity / latency / energy)

    def _staged_validity(
        self, design: Design, sparse: SparseTraffic, sparse_key: CachedHashKey | None
    ):
        """:func:`check_validity` through the ``"validity"`` stage.

        The usage report is cached with ``raise_on_invalid=False`` so
        one entry serves both capacity-checking and permissive
        evaluators; when this evaluator checks capacity, the first
        overflowing level (in architecture order, matching the uncached
        scan) re-raises the identical :class:`ValidationError`.
        """
        if self.cache is None or sparse_key is None:
            return check_validity(
                design.arch, sparse, raise_on_invalid=self.check_capacity
            )
        usage = self.cache.stage(VALIDITY_STAGE).get_or_compute(
            sparse_key,
            lambda: check_validity(
                design.arch, sparse, raise_on_invalid=False
            ),
        )
        if self.check_capacity:
            for level in design.arch.levels:
                report = usage[level.name]
                if not report.fits:
                    raise overflow_error(report)
        return usage

    def _staged_latency(
        self,
        design: Design,
        dense: DenseTraffic,
        sparse: SparseTraffic,
        sparse_key: CachedHashKey | None,
    ):
        """:func:`compute_latency` through the ``"latency"`` stage."""
        if self.cache is None or sparse_key is None:
            return compute_latency(design.arch, dense, sparse)
        return self.cache.stage(LATENCY_STAGE).get_or_compute(
            sparse_key, lambda: compute_latency(design.arch, dense, sparse)
        )

    def _staged_energy(
        self, design: Design, sparse: SparseTraffic, sparse_key: CachedHashKey | None
    ):
        """:func:`compute_energy` through the ``"energy"`` stage; the
        Accelergy backend itself is memoised per architecture
        (:func:`_accelergy_for`), so neither path re-derives the
        per-action energy tables."""
        if self.cache is None or sparse_key is None:
            return compute_energy(
                design.arch, sparse, _accelergy_for(design.arch)
            )
        return self.cache.stage(ENERGY_STAGE).get_or_compute(
            sparse_key,
            lambda: compute_energy(
                design.arch, sparse, _accelergy_for(design.arch)
            ),
        )

    def _evaluate_mapping(
        self, design: Design, workload: Workload, mapping: Mapping
    ) -> EvaluationResult:
        dense, dense_key = self._dense_analysis_keyed(design, workload, mapping)
        sparse, sparse_key = self._sparse_analysis_keyed(
            dense, design.safs, dense_key
        )
        return self._finish_evaluation(
            design, workload, dense, sparse, sparse_key
        )

    def _finish_evaluation(
        self,
        design: Design,
        workload: Workload,
        dense: DenseTraffic,
        sparse: SparseTraffic,
        sparse_key: CachedHashKey | None,
    ) -> EvaluationResult:
        """The micro-model tail shared by every evaluation path (the
        serial pipeline, the batched block scan, and its fallback), so
        the bit-identical contract hangs on one implementation."""
        usage = self._staged_validity(design, sparse, sparse_key)
        latency = self._staged_latency(design, dense, sparse, sparse_key)
        energy = self._staged_energy(design, sparse, sparse_key)
        return EvaluationResult(
            design_name=design.name,
            workload_name=workload.name or workload.einsum.name,
            dense=dense,
            sparse=sparse,
            latency=latency,
            energy=energy,
            usage=usage,
        )

    # ------------------------------------------------------------------
    # Capacity pre-filter

    def _capacity_overflow(
        self, design: Design, workload: Workload, mapping: Mapping
    ) -> OverflowReason | None:
        """Cheap detection of candidates that cannot possibly fit.

        Computes, per finite-capacity level, a *lower bound* on the
        worst-case occupancy the validity check will derive: the dense
        tile size for uncompressed tensors, the statistical-largest
        nonzero count (payload only, metadata ignored) for compressed
        ones. Because the bound never exceeds the real occupancy, a
        rejected candidate is guaranteed to fail ``check_validity``.

        Alongside it, a second, *monotone* bound is accumulated (dense
        tile sizes; ``DensityModel.monotone_occupancy_bound`` for
        compressed tensors — expected occupancy for uniform/structured
        models, which provably lower-bounds the statistical quantile;
        models without a monotone bound contribute zero, which only
        under-prunes). When the monotone bound alone
        overflows, the returned reason is flagged ``monotone``: any
        candidate whose tile extents at that level dominate these must
        overflow too, which is what lets the mapper prune whole
        factorization subtrees.
        """
        # The output density model participates in the bound; derive it
        # exactly as the sparse step would (idempotent).
        ensure_output_density(workload)
        einsum = workload.einsum
        extents = {dim: 1 for dim in einsum.dims}
        for level_map in reversed(mapping.levels):  # innermost first
            for loop in level_map.temporal + level_map.spatial:
                extents[loop.dim] *= loop.bound
            capacity = design.arch.level(level_map.level).capacity_words
            if capacity is None:
                continue
            used = 0.0
            monotone_used = 0.0
            for tensor in einsum.tensors:
                if not level_map.keeps(tensor.name):
                    continue
                tile = tensor.tile_size(extents)
                fmt = design.safs.format_for(level_map.level, tensor.name)
                if fmt is not None and fmt.is_compressed:
                    model = workload.densities.get(tensor.name)
                    if model is not None:
                        used += min(tile, model.quantile_occupancy(tile))
                        monotone = model.monotone_occupancy_bound(tile)
                        if monotone is not None:
                            monotone_used += monotone
                        continue
                used += tile
                monotone_used += tile
            if used > capacity:
                return OverflowReason(
                    level=level_map.level,
                    dim_extents=dict(extents),
                    used_words=used,
                    capacity_words=capacity,
                    monotone=monotone_used > capacity,
                )
        return None

    def _passes_capacity_prefilter(
        self, design: Design, workload: Workload, mapping: Mapping
    ) -> bool:
        """Boolean view of :meth:`_capacity_overflow`."""
        return self._capacity_overflow(design, workload, mapping) is None

    def _capacity_overflow_block(
        self,
        design: Design,
        workload: Workload,
        mappings: Sequence[Mapping],
        vectorized: bool | None = None,
    ) -> list[OverflowReason | None]:
        """Block view of :meth:`_capacity_overflow`: one
        :class:`OverflowReason` (or ``None``) per mapping.

        ``vectorized=None`` follows ``prefilter_vectorized``; the
        scalar path simply loops the oracle. Both paths are
        bit-identical — decision, overflowing level, bound values, and
        witness extents. The search itself keeps the lazier
        :class:`_PrefilterReject` records from
        :meth:`_prefilter_block`; this eager view serves equivalence
        tests and external callers.
        """
        if vectorized is None:
            vectorized = self.prefilter_vectorized
        if not vectorized:
            return [
                self._capacity_overflow(design, workload, mapping)
                for mapping in mappings
            ]
        return [
            None if reject is None else reject.reason()
            for reject in self._prefilter_block(design, workload, mappings)
        ]

    def _prefilter_block(
        self, design: Design, workload: Workload, mappings: Sequence[Mapping]
    ) -> list["_PrefilterReject | None"]:
        """Vectorized capacity prefilter over one block of candidates.

        Returns one :class:`_PrefilterReject` (``None`` = survivor) per
        mapping, matching :meth:`_capacity_overflow` per candidate
        bit for bit. Candidates are grouped by keep structure (level
        names + keep sets — uniform across any one mapper stream) so
        each group's occupancy bounds evaluate as stacked numpy
        reductions; groups the stacked path cannot handle exactly
        (single candidates, extents near the int64 range, capacities
        beyond float64 integer precision) fall back to the scalar
        oracle, whose Python-int arithmetic is exact.
        """
        ensure_output_density(workload)
        results: list[_PrefilterReject | None] = [None] * len(mappings)
        groups: dict[tuple, list[int]] = {}
        for i, mapping in enumerate(mappings):
            key = tuple(
                (
                    lvl.level,
                    None if lvl.keep is None else frozenset(lvl.keep),
                )
                for lvl in mapping.levels
            )
            groups.setdefault(key, []).append(i)
        for indices in groups.values():
            rejects = self._prefilter_group(
                design, workload, [mappings[i] for i in indices]
            )
            if rejects is None:
                for i in indices:
                    reason = self._capacity_overflow(
                        design, workload, mappings[i]
                    )
                    if reason is not None:
                        results[i] = _PrefilterReject(
                            level=reason.level,
                            monotone=reason.monotone,
                            used_words=reason.used_words,
                            capacity_words=reason.capacity_words,
                            reason=reason,
                        )
            else:
                for i, reject in zip(indices, rejects):
                    results[i] = reject
        return results

    def _prefilter_group(
        self, design: Design, workload: Workload, group: list[Mapping]
    ) -> list["_PrefilterReject | None"] | None:
        """Stacked occupancy bounds for one keep-structure group, or
        ``None`` when the group must use the scalar oracle.

        Mirrors :meth:`_capacity_overflow` with every per-candidate
        scalar replaced by a block column: tile extents accumulate
        innermost-first into int64 columns, per-tensor tile sizes are
        row-wise products, and the statistical occupancy models are
        evaluated once per *unique* tile size (the model calls are pure
        scalar functions, so deduplication changes nothing). Additions
        run in the scalar path's exact order, so the float64 bound
        accumulators — and therefore the reject decisions, flagged
        levels, and monotone flags — are bit-identical.
        """
        count = len(group)
        if count < 2:
            return None
        einsum = workload.einsum
        rep = group[0]
        dims = tuple(einsum.dims)
        ext_list: dict[str, list[int]] = {d: [1] * count for d in dims}
        rejects: list[_PrefilterReject | None] = [None] * count
        rejected = np.zeros(count, dtype=bool)
        for pos in range(len(rep.levels) - 1, -1, -1):  # innermost first
            for c, mapping in enumerate(group):
                level_map = mapping.levels[pos]
                for loop in level_map.temporal + level_map.spatial:
                    ext_list[loop.dim][c] *= loop.bound
            keep = rep.levels[pos]
            level_name = keep.level
            capacity = design.arch.level(level_name).capacity_words
            if capacity is None:
                continue
            if isinstance(capacity, int) and capacity >= 2**53:
                # float64 cannot represent the capacity exactly; the
                # scalar oracle's int/float comparisons are exact.
                return None
            # int64 safety: every intermediate of the tile products is
            # bounded by the tile size at the per-dim column maxima
            # (all factors/terms are >= 1), computed in exact ints.
            max_ext = {d: max(vals) for d, vals in ext_list.items()}
            if any(v >= 2**62 for v in max_ext.values()) or any(
                tensor.tile_size(max_ext) >= 2**62
                for tensor in einsum.tensors
                if keep.keeps(tensor.name)
            ):
                return None
            ext = {
                d: np.asarray(vals, dtype=np.int64)
                for d, vals in ext_list.items()
            }
            used = np.zeros(count)
            monotone_used = np.zeros(count)
            for tensor in einsum.tensors:
                if not keep.keeps(tensor.name):
                    continue
                tile = np.ones(count, dtype=np.int64)
                for rank in tensor.ranks:
                    span = np.zeros(count, dtype=np.int64)
                    for term in rank.terms:
                        span += term.coefficient * (ext[term.dim] - 1)
                    tile *= span + 1
                fmt = design.safs.format_for(level_name, tensor.name)
                if fmt is not None and fmt.is_compressed:
                    model = workload.densities.get(tensor.name)
                    if model is not None:
                        uniq, inverse = np.unique(
                            tile, return_inverse=True
                        )
                        quantile = np.asarray(
                            [
                                model.quantile_occupancy(int(v))
                                for v in uniq
                            ],
                            dtype=np.float64,
                        )[inverse]
                        used = used + np.minimum(
                            tile.astype(np.float64), quantile
                        )
                        bounds = [
                            model.monotone_occupancy_bound(int(v))
                            for v in uniq
                        ]
                        # A model without a monotone bound contributes
                        # nothing; adding 0.0 to the non-negative
                        # accumulator is bit-exact with skipping.
                        monotone_used = monotone_used + np.asarray(
                            [0.0 if b is None else b for b in bounds],
                            dtype=np.float64,
                        )[inverse]
                        continue
                used = used + tile
                monotone_used = monotone_used + tile
            over = (used > capacity) & ~rejected
            if over.any():
                mono_over = monotone_used > capacity
                for c in np.nonzero(over)[0]:
                    c = int(c)
                    rejects[c] = _PrefilterReject(
                        level=level_name,
                        monotone=bool(mono_over[c]),
                        used_words=float(used[c]),
                        capacity_words=capacity,
                        extent_cols=ext,
                        col=c,
                        dims=dims,
                    )
                rejected |= over
                if rejected.all():
                    break
        return rejects

    # ------------------------------------------------------------------
    # Mapspace search

    def search_mappings(
        self,
        design: Design,
        workload: Workload,
        objective: Callable[[EvaluationResult], float] | None = None,
        candidates: Iterable[Mapping] | None = None,
        parallel: int = 1,
        batch_size: int | None = None,
        strategy: str | None = None,
    ) -> EvaluationResult | None:
        """Deprecated entry point; use :meth:`repro.api.Session.search`."""
        _warn_deprecated("search_mappings", "Session.search / SearchJob")
        return self._search_mappings(
            design, workload, objective, candidates, parallel,
            batch_size=batch_size, strategy=strategy,
        )

    def _search_mappings(
        self,
        design: Design,
        workload: Workload,
        objective=None,
        candidates: Iterable[Mapping] | None = None,
        parallel: int = 1,
        batch_size: int | None = None,
        strategy: str | None = None,
    ) -> EvaluationResult | None:
        """Best-result shim over :meth:`_search_full` (same semantics,
        drops the frontier/score/objective bookkeeping)."""
        return self._search_full(
            design, workload, objective, candidates, parallel,
            batch_size=batch_size, strategy=strategy,
        ).best_result

    def _search_full(
        self,
        design: Design,
        workload: Workload,
        objective=None,
        candidates: Iterable[Mapping] | None = None,
        parallel: int = 1,
        batch_size: int | None = None,
        strategy: str | None = None,
        progress: Callable[[dict], None] | None = None,
    ) -> SearchOutcome:
        """Find the best valid mapping by the objective (default EDP)
        and the Pareto frontier over the objective's axes.

        ``objective`` takes any form :func:`repro.search.objective.
        resolve_objective` accepts — ``None`` (EDP), a metric name, a
        sequence of names (vector objective), an ``Objective``, or a
        legacy callable. The returned :class:`SearchOutcome` carries
        the resolved objective, the frontier, and the ``(score, index,
        result)`` winner — ``best is None`` when no candidate is
        valid. The winner is always a frontier member: it is the
        minimum ``(score, index)`` point of the frontier, which for
        scalar objectives reproduces the serial first-strictly-better
        tie-break exactly.

        Uses the design's constraints with the built-in mapper unless
        explicit ``candidates`` are supplied. ``parallel=N``
        distributes the candidate list over ``N`` worker processes
        (deterministic: winner and frontier match the serial scan;
        requires picklable design/workload/objective).

        ``strategy`` / ``batch_size`` override the evaluator's
        ``search_strategy`` / ``search_batch_size`` for this search
        (see the class docstring); the serial and batched strategies
        return bit-identical winners, and ``"evolutionary"`` breeds
        candidates from the design's mapspace (see
        :meth:`_search_evolutionary`; explicit ``candidates`` are
        rejected there, and generations run in-process, so
        ``parallel`` does not apply).

        ``progress`` (when given) is invoked after every evaluated
        block on the in-process batched path with a dict carrying
        ``evaluated`` / ``best_score`` / ``best_index`` /
        ``frontier_size`` — the feed behind streaming search progress
        (CLI ``search -v``, serve progress envelopes). Purely
        observational: the scan never reads anything back from it.

        In the mapper-driven path, capacity-prefilter overflows are fed
        back to the mapper as dominance witnesses, pruning factorization
        subtrees while the candidate stream is being generated — the
        batched strategy prefilters each candidate as it is drawn, so
        witnesses registered inside a block already prune the
        generation of the next block. (The parallel path materialises
        candidates up front, so feedback does not apply there.)
        """
        objective = resolve_objective(objective)
        strategy = strategy or self.search_strategy
        if strategy not in ("serial", "batched", "evolutionary"):
            raise SpecError(
                f"unknown search strategy {strategy!r}; "
                "expected 'serial', 'batched', or 'evolutionary'"
            )
        if batch_size is None:
            batch_size = self.search_batch_size
        evolutionary = strategy == "evolutionary"
        if evolutionary and candidates is not None:
            raise SpecError(
                "strategy='evolutionary' breeds candidates from the "
                "design's mapspace constraints; explicit candidates fix "
                "the population — scan them with 'serial' or 'batched'"
            )
        # The strategy alone decides the scan: batch_size=1 still runs
        # the batched machinery (candidate-stream memo, witness replay)
        # with single-candidate flushes, and the forced scalar sparse
        # oracle only degenerates the stacked flush to per-candidate
        # scalar arithmetic inside analyze_sparse_batch — neither
        # silently falls back to the serial scan.
        batched = strategy == "batched"
        frontier = ParetoFrontier(axes=objective.axes)
        mapper: Mapper | None = None
        replayed = False
        if candidates is None:
            mapper = Mapper(workload.einsum, design.arch, design.constraints)
            space = mapper.mapspace_size_estimate()
            if space <= self.search_budget * 4:
                # Exhaustively enumerable: every strategy scans the
                # whole space, so evolutionary breeding would only
                # re-propose known genomes — it degenerates to the
                # batched scan (which is also what makes the three
                # strategies' frontiers provably agree here).
                candidates = mapper.enumerate_mappings()
                if evolutionary:
                    evolutionary = False
                    batched = True
            elif evolutionary:
                pass  # the evolutionary loop seeds and breeds itself
            else:
                stream = (
                    self._sampled_candidates(design, workload, mapper)
                    if batched
                    else None
                )
                if stream is not None:
                    candidates = stream
                    replayed = True
                else:
                    candidates = mapper.sample_mappings(
                        self.search_budget, seed=self.search_seed
                    )
        if evolutionary:
            self._search_evolutionary(
                design, workload, objective, mapper, frontier,
                batch_size=batch_size,
            )
        elif parallel > 1:
            self._search_parallel(
                design, workload, list(candidates), objective, parallel,
                batch_size=batch_size, strategy=strategy,
                frontier=frontier,
            )
        elif batched:
            self._search_candidates_batched(
                design, workload, candidates, objective,
                mapper=mapper, batch_size=batch_size, replayed=replayed,
                frontier=frontier, progress=progress,
            )
        else:
            self._search_candidates(
                design, workload, candidates, objective, mapper=mapper,
                frontier=frontier,
            )
        winner = frontier.best()
        best = (
            None
            if winner is None
            else (winner.score, winner.index, winner.result)
        )
        return SearchOutcome(
            objective=objective,
            strategy=strategy,
            frontier=frontier,
            best=best,
        )

    def _sampled_candidates(
        self, design: Design, workload: Workload, mapper: Mapper
    ) -> list[Mapping] | None:
        """The memoised sampled candidate stream for this search.

        Sampled streams are pure functions of (constraints, einsum,
        arch, seed, budget) — witnesses only *withhold* draws, never
        change them — so the unpruned stream is recorded in the
        ``"candidates"`` cache stage and replayed by later searches
        (including across SAF variants sharing a mapspace, and across
        processes via the persistent tier). Returns ``None`` when
        caching is disabled, leaving the generator-driven path in
        charge.
        """
        if self.cache is None:
            return None
        key = sampled_candidates_key(
            workload.einsum,
            design.arch,
            mapper.constraints,
            self.search_seed,
            self.search_budget,
        )
        stage = self.cache.stage(CANDIDATES_STAGE)
        stream = stage.get(key)
        if stream is None:
            stream = list(
                mapper.sample_mappings(
                    self.search_budget, seed=self.search_seed
                )
            )
            stage.put(key, stream)
        return stream

    def _search_candidates(
        self,
        design: Design,
        workload: Workload,
        candidates: Iterable[Mapping],
        objective,
        offset: int = 0,
        mapper: Mapper | None = None,
        frontier: ParetoFrontier | None = None,
    ) -> tuple[float, int, EvaluationResult] | None:
        """Serial scan returning ``(score, global_index, result)`` of the
        winner; ``offset`` re-bases indices for chunked fan-out. When
        ``mapper`` produced the candidates, prefilter overflows are fed
        back to it for subtree pruning. A ``frontier`` is maintained in
        place when given; the winner is always one of its points."""
        objective = resolve_objective(objective)
        prefilter = self.prefilter_capacity and self.check_capacity
        best: tuple[float, int, EvaluationResult] | None = None
        for index, mapping in enumerate(candidates):
            if prefilter:
                overflow = self._capacity_overflow(design, workload, mapping)
                if overflow is not None:
                    if mapper is not None and overflow.monotone:
                        mapper.register_overflow(
                            overflow.level, overflow.dim_extents
                        )
                    continue
            try:
                result = self._evaluate_mapping(design, workload, mapping)
            except (ValidationError, MappingError):
                continue
            score = objective.score(result)
            if frontier is not None:
                frontier.observe(objective, score, offset + index, result)
            if best is None or score < best[0]:
                best = (score, offset + index, result)
        return best

    def _search_candidates_batched(
        self,
        design: Design,
        workload: Workload,
        candidates: Iterable[Mapping],
        objective,
        offset: int = 0,
        mapper: Mapper | None = None,
        batch_size: int | None = None,
        replayed: bool = False,
        frontier: ParetoFrontier | None = None,
        progress: Callable[[dict], None] | None = None,
    ) -> tuple[float, int, EvaluationResult] | None:
        """Blocked scan returning the same ``(score, global_index,
        result)`` winner as :meth:`_search_candidates`.

        The scan mirrors the serial oracle step for step — candidates
        are drawn one at a time, witness-withheld candidates never get
        a stream index, prefilter overflows register witnesses
        *immediately* (so generation of later candidates, including the
        next block's, is already pruned) — but evaluation of prefilter
        survivors is deferred: each full block runs through one stacked
        sparse evaluation (:meth:`_sparse_analysis_many`) instead of
        one numpy pass per candidate. Deferral is sound because
        evaluation never feeds anything back to the stream; scores are
        bit-identical because the stacked arithmetic is elementwise and
        the in-order ``score < best`` comparison reproduces the serial
        first-strictly-better tie-break exactly.

        ``replayed=True`` marks ``candidates`` as a materialised stream
        (the ``"candidates"`` memo): the generator's yield-time witness
        check did not run for it, so this scan applies
        :meth:`Mapper.mapping_dominated` per candidate to withhold
        exactly what the live generator would have — keeping stream
        indices, and therefore tie-breaks, identical.

        With ``prefilter_vectorized`` the prefilter itself runs per
        *drawn block* (:meth:`_prefilter_block`) instead of per
        candidate. Drawing a whole block ahead of witness registration
        would let a live generator yield candidates the serial scan's
        yield-time witness check would have withheld — exactly those
        dominated by witnesses registered *inside* the current block —
        so the scan replays :meth:`Mapper.mapping_dominated` for the
        rest of the block once any in-block witness registers. The
        surviving (index, mapping) stream, and with it every score and
        tie-break, is identical to the serial scan; only the mapper's
        pruned_subtrees/pruned_candidates *split* may shift (in-block
        subtree prunes arrive as per-candidate withholds), never their
        effect.
        """
        objective = resolve_objective(objective)
        if batch_size is None:
            batch_size = self.search_batch_size
        batch_size = max(1, batch_size)
        prefilter = self.prefilter_capacity and self.check_capacity

        def _survivors_scalar() -> Iterable[tuple[int, Mapping]]:
            # The PR 5 scan: draw one candidate at a time, scalar
            # prefilter, witnesses registered before the next draw.
            index = offset - 1
            for mapping in candidates:
                if (
                    replayed
                    and mapper is not None
                    and mapper.mapping_dominated(mapping)
                ):
                    mapper.pruned_candidates += 1
                    continue
                index += 1
                if prefilter:
                    overflow = self._capacity_overflow(
                        design, workload, mapping
                    )
                    if overflow is not None:
                        if mapper is not None and overflow.monotone:
                            mapper.register_overflow(
                                overflow.level, overflow.dim_extents
                            )
                        continue
                yield index, mapping

        def _survivors_blocked() -> Iterable[tuple[int, Mapping]]:
            # Draw whole blocks and prefilter them in one stacked pass.
            index = offset - 1
            stream = iter(candidates)
            while True:
                drawn = list(islice(stream, batch_size))
                if not drawn:
                    return
                rejects = self._prefilter_block(design, workload, drawn)
                registered = False
                for mapping, reject in zip(drawn, rejects):
                    if (
                        mapper is not None
                        and (replayed or registered)
                        and mapper.mapping_dominated(mapping)
                    ):
                        mapper.pruned_candidates += 1
                        continue
                    index += 1
                    if reject is None:
                        yield index, mapping
                    elif mapper is not None and reject.monotone:
                        mapper.register_overflow(
                            reject.level, reject.witness_extents()
                        )
                        registered = True

        survivors = (
            _survivors_blocked()
            if prefilter and self.prefilter_vectorized
            else _survivors_scalar()
        )
        # One sparse-walk memo spans the whole search: every candidate
        # shares (design, workload), so leader-keep probabilities and
        # per-tile format scalings recur across blocks. Gated with the
        # vectorized dense backend so the scalar-oracle configuration
        # stays the plain per-candidate pipeline.
        memo: dict | None = {} if self.dense_vectorized else None
        best: tuple[float, int, EvaluationResult] | None = None
        block: list[tuple[int, Mapping]] = []
        evaluated = 0

        def _report() -> None:
            if progress is None:
                return
            progress(
                {
                    "evaluated": evaluated,
                    "best_score": None if best is None else best[0],
                    "best_index": None if best is None else best[1],
                    "frontier_size": (
                        None if frontier is None else len(frontier)
                    ),
                }
            )

        for index, mapping in survivors:
            block.append((index, mapping))
            if len(block) >= batch_size:
                best = self._evaluate_block(
                    design, workload, block, objective, best, memo=memo,
                    frontier=frontier,
                )
                evaluated += len(block)
                block = []
                _report()
        if block:
            best = self._evaluate_block(
                design, workload, block, objective, best, memo=memo,
                frontier=frontier,
            )
            evaluated += len(block)
            _report()
        return best

    def _evaluate_block(
        self,
        design: Design,
        workload: Workload,
        block: list[tuple[int, Mapping]],
        objective: Objective,
        best: tuple[float, int, EvaluationResult] | None,
        memo: dict | None = None,
        frontier: ParetoFrontier | None = None,
        collect: list | None = None,
    ) -> tuple[float, int, EvaluationResult] | None:
        """Evaluate one block of prefilter survivors through the
        stacked dense + sparse pipeline and fold them into ``best``.

        A ``frontier`` is maintained in place when given, and
        ``collect`` (when given) receives an ``(index, score)`` pair
        per successfully evaluated candidate — the evolutionary
        strategy's fitness feed.

        Candidates whose evaluation raises an expected modeling error
        (capacity overflow under the full validity check, mapping
        rejection) are skipped, exactly as in the serial scan. Should
        a stacked pass itself fail, the block falls back to the serial
        per-candidate oracle — with the stage accounting of the
        aborted attempt rolled back first — so the failure is
        attributed to the one candidate that caused it; results and
        cache statistics are identical to the serial scan either way.
        ``memo`` is the search-wide sparse-walk memo (see
        :func:`~repro.sparse.postprocess.analyze_sparse_batch`).
        """
        dense_entries = self._dense_analysis_many(
            design, workload, [mapping for _, mapping in block]
        )
        prepared: list[tuple[int, Mapping, DenseTraffic, tuple | None]] = []
        for (index, mapping), entry in zip(block, dense_entries):
            if entry is None:
                continue
            dense, dense_key = entry
            prepared.append((index, mapping, dense, dense_key))
        if not prepared:
            return best
        stage = self.cache.sparse if self.cache is not None else None
        counters = (stage.hits, stage.misses) if stage is not None else None
        try:
            analyses = self._sparse_analysis_many(
                [(dense, key) for _, _, dense, key in prepared],
                design.safs,
                memo=memo,
            )
        except (ValidationError, MappingError):
            if stage is not None:
                # The aborted stacked attempt already counted its
                # lookups; the serial fallback recounts every one.
                stage.hits, stage.misses = counters
            analyses = None
        if analyses is None:
            analyses = []
            for _index, _mapping, dense, dense_key in prepared:
                try:
                    analyses.append(
                        self._sparse_analysis_keyed(
                            dense, design.safs, dense_key
                        )
                    )
                except (ValidationError, MappingError):
                    analyses.append(None)
        for (index, _mapping, dense, _key), analysis in zip(
            prepared, analyses
        ):
            if analysis is None:
                continue
            sparse, sparse_key = analysis
            try:
                result = self._finish_evaluation(
                    design, workload, dense, sparse, sparse_key
                )
            except (ValidationError, MappingError):
                continue
            score = objective.score(result)
            if collect is not None:
                collect.append((index, score))
            if frontier is not None:
                frontier.observe(objective, score, index, result)
            if best is None or score < best[0]:
                best = (score, index, result)
        return best

    def _search_evolutionary(
        self,
        design: Design,
        workload: Workload,
        objective: Objective,
        mapper: Mapper,
        frontier: ParetoFrontier,
        batch_size: int,
    ) -> tuple[float, int, EvaluationResult] | None:
        """Evolutionary mapspace search (SparseMap-style, ROADMAP 2).

        The population is seeded from the memoised ``"candidates"``
        stream (the same draws the batched random search would scan,
        so a warm cache is shared between strategies), then evolved by
        truncation selection over all evaluated individuals, uniform
        per-dimension crossover, and mutation through the mapper's
        constraint-honouring sampler — ``fixed_factors`` hold for
        every genome by construction. Offspring dominated by an
        accumulated overflow witness are killed *before* evaluation
        and do not consume search budget: the pruned sampling mass is
        recycled into extra population budget, unlike the random
        strategies where withheld draws still count toward the
        budget. The budget caps candidates entering the prefilter +
        evaluation pipeline at ``search_budget``, mirroring the random
        strategies' draw budget.

        Deterministic for a fixed ``search_seed``: the seed stream,
        the breeding RNG, and every selection sort are explicitly
        ordered. Generations run in-process (no ``parallel`` fan-out);
        survivor blocks still go through the stacked dense + sparse
        pipeline. Knobs live in
        :class:`repro.search.evolutionary.EvolutionConfig` (the
        evaluator's ``evolution`` field).
        """
        config = self.evolution or EvolutionConfig()
        budget = self.search_budget
        pop_size = config.population_size(budget)
        batch_size = max(1, batch_size)
        prefilter = self.prefilter_capacity and self.check_capacity
        rng = random.Random(self.search_seed)
        dims = list(mapper.einsum.dims)
        seeds = self._sampled_candidates(design, workload, mapper)
        if seeds is None:
            seeds = mapper.sample_mappings(budget, seed=self.search_seed)
        seen: set[tuple] = set()
        generation: list[dict] = []
        for mapping in seeds:
            if len(generation) >= pop_size:
                break
            genome = genome_of(mapper, mapping)
            key = genome_key(genome, dims)
            if key in seen:
                continue
            seen.add(key)
            generation.append(genome)
        # One sparse-walk memo spans the whole search, as in the
        # batched scan: every candidate shares (design, workload).
        memo: dict | None = {} if self.dense_vectorized else None
        best: tuple[float, int, EvaluationResult] | None = None
        scored: list[tuple[float, int, dict]] = []
        proposals = 0
        index = -1
        while generation and proposals < budget:
            block: list[tuple[int, Mapping]] = []
            genomes_by_index: dict[int, dict] = {}
            collect: list[tuple[int, float]] = []
            for genome in generation:
                if proposals >= budget:
                    break
                combos = [genome[dim] for dim in dims]
                if mapper._witness_dominated(dims, combos):
                    # Killed before evaluation; the budget is untouched
                    # (pruned mass recycled into later generations).
                    mapper.pruned_candidates += 1
                    continue
                proposals += 1
                index += 1
                mapping = mapper._build_mapping(genome)
                if prefilter:
                    overflow = self._capacity_overflow(
                        design, workload, mapping
                    )
                    if overflow is not None:
                        if overflow.monotone:
                            mapper.register_overflow(
                                overflow.level, overflow.dim_extents
                            )
                        continue
                block.append((index, mapping))
                genomes_by_index[index] = genome
                if len(block) >= batch_size:
                    best = self._evaluate_block(
                        design, workload, block, objective, best,
                        memo=memo, frontier=frontier, collect=collect,
                    )
                    block = []
            if block:
                best = self._evaluate_block(
                    design, workload, block, objective, best,
                    memo=memo, frontier=frontier, collect=collect,
                )
            for got_index, score in collect:
                scored.append((score, got_index, genomes_by_index[got_index]))
            if proposals >= budget:
                break
            scored.sort(key=lambda entry: (entry[0], entry[1]))
            parents = [
                genome
                for _score, _idx, genome in scored[: config.parent_count(pop_size)]
            ]
            generation = make_offspring(
                mapper, parents, rng,
                min(pop_size, budget - proposals), seen, config,
            )
        return best

    def _dense_analysis_many(
        self,
        design: Design,
        workload: Workload,
        mappings: Sequence[Mapping],
    ) -> list[tuple[DenseTraffic, tuple | None] | None]:
        """:meth:`_dense_analysis_keyed` over one block of candidates.

        Cache hits are served as usual; misses run through **one**
        :func:`~repro.dataflow.nest_analysis.analyze_dataflow_batch`
        call (deduped by content key, so a repeated sampled draw is
        computed once and the follower served as the hit the serial
        scan would have seen) and are installed into the ``"dense"``
        stage. A candidate whose analysis fails with an expected
        modeling error yields ``None``; should the stacked pass fail,
        the stage accounting of the aborted attempt is rolled back and
        the block recounts through the serial per-candidate oracle.
        Results and cache statistics match the serial loop exactly.
        """
        count = len(mappings)
        out: list[tuple[DenseTraffic, tuple | None] | None] = [None] * count
        keys: list[tuple | None] = [None] * count
        compute_positions: list[int] = []
        followers: dict[int, list[int]] = {}
        first_by_key: dict[tuple, int] = {}
        stage = self.cache.dense if self.cache is not None else None
        counters = (stage.hits, stage.misses) if stage is not None else None
        for position, mapping in enumerate(mappings):
            if stage is not None:
                key = CachedHashKey(
                    dense_analysis_key(workload, design.arch, mapping)
                )
                keys[position] = key
                if key in stage:  # peek: accounting handled per branch
                    cached = stage.get(key)  # counts the hit
                    out[position] = (replace(cached, workload=workload), key)
                    continue
                first = first_by_key.get(key)
                if first is not None:
                    # Serial accounting: the first occurrence computes
                    # and installs before the scan reaches this
                    # duplicate — a hit, not a miss.
                    stage.hits += 1
                    followers.setdefault(first, []).append(position)
                    continue
                first_by_key[key] = position
                stage.misses += 1  # the serial get-before-compute miss
            compute_positions.append(position)
        if compute_positions:
            try:
                computed = analyze_dataflow_batch(
                    [
                        (workload, design.arch, mappings[i])
                        for i in compute_positions
                    ],
                    vectorized=self.dense_vectorized,
                )
            except (ValidationError, MappingError):
                if stage is not None:
                    # The aborted stacked attempt already counted its
                    # lookups; the serial fallback recounts every one.
                    stage.hits, stage.misses = counters
                return self._dense_analysis_many_fallback(
                    design, workload, mappings
                )
            for position, dense in zip(compute_positions, computed):
                key = keys[position]
                if stage is not None and key is not None:
                    # Store with the workload stripped, exactly as
                    # DenseAnalysisCache.get_or_compute_keyed does.
                    stage.put(key, replace(dense, workload=None))
                out[position] = (dense, key)
                for follower in followers.get(position, ()):
                    # The follower's serial hit would have returned the
                    # stored copy rebound to its workload.
                    out[follower] = (
                        replace(dense, workload=workload),
                        keys[follower],
                    )
        return out

    def _dense_analysis_many_fallback(
        self,
        design: Design,
        workload: Workload,
        mappings: Sequence[Mapping],
    ) -> list[tuple[DenseTraffic, tuple | None] | None]:
        """Per-candidate dense analysis with per-candidate error
        isolation — the serial oracle the stacked pass falls back to."""
        out: list[tuple[DenseTraffic, tuple | None] | None] = []
        for mapping in mappings:
            try:
                out.append(
                    self._dense_analysis_keyed(design, workload, mapping)
                )
            except (ValidationError, MappingError):
                out.append(None)
        return out

    def _sparse_analysis_many(
        self,
        items: Sequence[tuple[DenseTraffic, tuple | None]],
        safs: SAFSpec,
        memo: dict | None = None,
    ) -> list[tuple[SparseTraffic, CachedHashKey | None]]:
        """:meth:`_sparse_analysis_keyed` over many candidates at once.

        Cache hits are served as usual; the misses are computed in
        **one** stacked numpy pass (deduped by content key, so a
        repeated sampled draw is computed once and shared, exactly as
        the serial scan's compute-then-hit sequence would) and
        installed into the sparse stage. Per-candidate results are
        bit-identical to calling the serial helper in a loop.
        """
        count = len(items)
        sparses: list[SparseTraffic | None] = [None] * count
        keys: list[CachedHashKey | None] = [None] * count
        compute_positions: list[int] = []
        followers: dict[int, list[int]] = {}
        first_by_key: dict[CachedHashKey, int] = {}
        # The block shares one workload and one SAF spec, so of the
        # sparse key triple (dense key, SAF key, density keys) only the
        # dense component varies per candidate: derive the invariant
        # parts once and assemble per-candidate keys inline — the same
        # tuples sparse_analysis_key would build.
        invariant: tuple | None = None
        if self.cache is not None and items:
            workload = next(
                (d.workload for d, _k in items if d is not None), None
            )
            if workload is not None:
                ensure_output_density(workload)
                density_keys = []
                for tensor in workload.einsum.tensors:
                    density_key = workload.density_of(tensor.name).cache_key()
                    if density_key is None:
                        density_keys = None
                        break
                    density_keys.append((tensor.name, density_key))
                if density_keys is not None:
                    invariant = (safs.cache_key(), tuple(density_keys))
        for position, (dense, dense_key) in enumerate(items):
            key: CachedHashKey | None = None
            if self.cache is not None:
                if (
                    invariant is not None
                    and dense_key is not None
                    and dense.workload is workload
                ):
                    if not isinstance(dense_key, CachedHashKey):
                        dense_key = CachedHashKey(dense_key)
                    key = CachedHashKey((dense_key, *invariant))
                else:
                    raw = sparse_analysis_key(dense, safs, dense_key)
                    if raw is not None:
                        key = CachedHashKey(raw)
            keys[position] = key
            if key is not None:
                stage = self.cache.sparse
                if key in stage:  # peek: accounting handled per branch
                    sparses[position] = stage.get(key)  # counts the hit
                    continue
                first = first_by_key.get(key)
                if first is not None:
                    # Serial accounting: by the time the scan reached
                    # this duplicate, the first occurrence had computed
                    # and installed the entry — a hit, not a miss. (The
                    # LRU refresh the serial hit would do is subsumed
                    # by the upcoming put of the first occurrence.)
                    stage.hits += 1
                    followers.setdefault(first, []).append(position)
                    continue
                first_by_key[key] = position
                stage.misses += 1  # the serial get-before-compute miss
            compute_positions.append(position)
        if compute_positions:
            computed = analyze_sparse_batch(
                [(items[i][0], safs) for i in compute_positions],
                vectorized=self.sparse_vectorized,
                memo=memo,
            )
            for position, sparse in zip(compute_positions, computed):
                sparses[position] = sparse
                key = keys[position]
                if key is not None:
                    self.cache.sparse.put(key, sparse)
                for follower in followers.get(position, ()):
                    sparses[follower] = sparse
        return list(zip(sparses, keys))

    def _search_parallel(
        self,
        design: Design,
        workload: Workload,
        candidates: list[Mapping],
        objective,
        parallel: int,
        batch_size: int | None = None,
        strategy: str | None = None,
        frontier: ParetoFrontier | None = None,
    ) -> EvaluationResult | None:
        objective = resolve_objective(objective)
        if frontier is None:
            frontier = ParetoFrontier(axes=objective.axes)
        if len(candidates) <= 1:
            best = self._search_candidates(
                design, workload, candidates, objective, frontier=frontier
            )
            return best[2] if best is not None else None
        chunks = _contiguous_chunks(candidates, parallel)
        worker = replace(
            self,
            cache=None,
            search_strategy=strategy or self.search_strategy,
            search_batch_size=(
                batch_size if batch_size is not None
                else self.search_batch_size
            ),
        )
        # Zero-pickle fan-out: the read-only search state — evaluator,
        # design, workload, the full candidate list, the objective —
        # ships ONCE per worker through the pool initializer (inherited
        # for free under fork, pickled once per worker under
        # spawn/forkserver), and each task payload is just a candidate
        # index range. The old protocol re-pickled the design and the
        # chunk's mappings into every task.
        shared = {
            "evaluator": worker,
            "design": design,
            "workload": workload,
            "candidates": candidates,
            "objective": objective,
        }
        payloads = []
        offset = 0
        for chunk in chunks:
            payloads.append((offset, offset + len(chunk)))
            offset += len(chunk)
        # Search range workers receive explicit materialised candidate
        # lists and never sample, so the (potentially large) candidates
        # stage is dead weight in their warm-up payload. (Evaluate/
        # network pools keep it: a constraints-only design makes their
        # workers run whole searches, where replay pays off.)
        partials = self._run_pool(
            _search_range_worker,
            payloads,
            exclude_stages=(CANDIDATES_STAGE,),
            shared=shared,
        )
        # Partial frontiers merge exactly (the non-dominated set of a
        # union is the non-dominated set of the union of per-chunk
        # non-dominated sets); folding them in chunk order keeps the
        # first-index representative of every tied vector, so the
        # frontier's (score, index) minimum reproduces the serial
        # first-strictly-better tie-breaking exactly.
        for partial in partials:
            if partial is None:
                continue
            _partial_best, partial_frontier = partial
            frontier.merge(partial_frontier)
        winner = frontier.best()
        if winner is None:
            return None
        self._absorb_result(design, workload, winner.result)
        return winner.result

    def _dense_analysis_mixed(
        self,
        items: Sequence[tuple[Design, Workload, Mapping]],
    ) -> list[tuple[DenseTraffic, tuple | None] | ReproError]:
        """:meth:`_dense_analysis_keyed` over many *heterogeneous*
        ``(design, workload, mapping)`` triples at once.

        The block variant (:meth:`_dense_analysis_many`) serves one
        search block's candidates; this one serves the
        batched-submission/serving path, where every triple may carry
        a different design and workload
        (:func:`~repro.dataflow.nest_analysis.analyze_dataflow_batch`
        groups compatible structures internally). Cache hits are
        served as usual; misses run through one stacked call. A
        triple whose analysis fails with an expected modeling error
        gets that error in its slot; should the stacked pass itself
        fail, the stage accounting of the aborted attempt is rolled
        back and every triple recounts through the serial oracle so
        the error lands on exactly the job(s) that caused it. Results
        and cache statistics match the serial loop exactly.
        """
        count = len(items)
        out: list[tuple[DenseTraffic, tuple | None] | ReproError | None] = (
            [None] * count
        )
        keys: list[CachedHashKey | None] = [None] * count
        compute_positions: list[int] = []
        followers: dict[int, list[int]] = {}
        first_by_key: dict[CachedHashKey, int] = {}
        stage = self.cache.dense if self.cache is not None else None
        counters = (stage.hits, stage.misses) if stage is not None else None
        for position, (design, workload, mapping) in enumerate(items):
            if stage is not None:
                key = CachedHashKey(
                    dense_analysis_key(workload, design.arch, mapping)
                )
                keys[position] = key
                if key in stage:  # peek: accounting handled per branch
                    cached = stage.get(key)  # counts the hit
                    out[position] = (replace(cached, workload=workload), key)
                    continue
                first = first_by_key.get(key)
                if first is not None:
                    # Serial accounting: the first occurrence computes
                    # and installs before the scan reaches this
                    # duplicate — a hit, not a miss.
                    stage.hits += 1
                    followers.setdefault(first, []).append(position)
                    continue
                first_by_key[key] = position
                stage.misses += 1  # the serial get-before-compute miss
            compute_positions.append(position)
        if compute_positions:
            try:
                computed = analyze_dataflow_batch(
                    [
                        (items[i][1], items[i][0].arch, items[i][2])
                        for i in compute_positions
                    ],
                    vectorized=self.dense_vectorized,
                )
            except ReproError:
                if stage is not None:
                    # The aborted stacked attempt already counted its
                    # lookups; the serial fallback recounts every one.
                    stage.hits, stage.misses = counters
                fallback: list[
                    tuple[DenseTraffic, tuple | None] | ReproError
                ] = []
                for design, workload, mapping in items:
                    try:
                        fallback.append(
                            self._dense_analysis_keyed(
                                design, workload, mapping
                            )
                        )
                    except ReproError as exc:
                        fallback.append(exc)
                return fallback
            for position, dense in zip(compute_positions, computed):
                key = keys[position]
                if stage is not None and key is not None:
                    # Store with the workload stripped, exactly as
                    # DenseAnalysisCache.get_or_compute_keyed does.
                    stage.put(key, replace(dense, workload=None))
                out[position] = (dense, key)
                for follower in followers.get(position, ()):
                    # The follower's serial hit would have returned
                    # the stored copy rebound to its own workload.
                    out[follower] = (
                        replace(dense, workload=items[follower][1]),
                        keys[follower],
                    )
        return out

    def _sparse_analysis_mixed(
        self,
        entries: Sequence[tuple[DenseTraffic, SAFSpec, tuple | None]],
    ) -> list[tuple[SparseTraffic, CachedHashKey | None]]:
        """:meth:`_sparse_analysis_keyed` over many *heterogeneous*
        analyses at once.

        The block variant (:meth:`_sparse_analysis_many`) stacks the
        candidates of one search block, which share a workload and one
        SAF spec; this one serves the batched-submission/serving path,
        where every entry may carry a different design and workload.
        Cache hits are served as usual; the misses are deduped by
        content key and computed in stacked numpy passes
        (:func:`~repro.sparse.postprocess.analyze_sparse_batch` takes
        per-item SAF specs), so jobs from many clients share the
        vectorized kernels. Misses whose sparse-walk *context* matches
        — same workload content (einsum and densities), SAF spec, and
        architecture; only the mapping differs — additionally share
        one walk memo per flush, exactly as the candidates of one
        search block do. Per-entry results — values, cache accounting,
        and shared-object identity for duplicates — are bit-identical
        to calling the serial helper in a loop.
        """
        count = len(entries)
        sparses: list[SparseTraffic | None] = [None] * count
        keys: list[CachedHashKey | None] = [None] * count
        compute_positions: list[int] = []
        followers: dict[int, list[int]] = {}
        first_by_key: dict[CachedHashKey, int] = {}
        for position, (dense, safs, dense_key) in enumerate(entries):
            key: CachedHashKey | None = None
            if self.cache is not None:
                raw = sparse_analysis_key(dense, safs, dense_key)
                if raw is not None:
                    key = CachedHashKey(raw)
            keys[position] = key
            if key is not None:
                stage = self.cache.sparse
                if key in stage:  # peek: accounting handled per branch
                    sparses[position] = stage.get(key)  # counts the hit
                    continue
                first = first_by_key.get(key)
                if first is not None:
                    # Serial accounting: by the time the scan reached
                    # this duplicate, the first occurrence had computed
                    # and installed the entry — a hit, not a miss.
                    stage.hits += 1
                    followers.setdefault(first, []).append(position)
                    continue
                first_by_key[key] = position
                stage.misses += 1  # the serial get-before-compute miss
            compute_positions.append(position)
        # Group the misses by sparse-walk context: the sparse key is
        # (dense key = (einsum, arch, mapping), SAF key, density keys),
        # so dropping the mapping component leaves exactly the context
        # the walk memo is pure over (see analyze_sparse_batch). Each
        # group flushes as one stacked pass with a fresh shared memo;
        # keyless entries (uncacheable densities) have no content
        # identity to group on and flush together without one.
        groups: dict[object, list[int]] = {}
        for position in compute_positions:
            key = keys[position]
            context: object = None
            if key is not None:
                dense_component, safs_key, density_keys = key.key
                dense_parts = dense_component.key
                if isinstance(dense_parts, tuple) and len(dense_parts) == 3:
                    context = (
                        dense_parts[0],  # einsum content
                        dense_parts[1],  # architecture content
                        safs_key,
                        density_keys,
                    )
                else:  # unrecognised dense-key shape: no cross-entry memo
                    context = key
            groups.setdefault(context, []).append(position)
        for context, positions in groups.items():
            computed = analyze_sparse_batch(
                [(entries[i][0], entries[i][1]) for i in positions],
                vectorized=self.sparse_vectorized,
                memo={} if context is not None else None,
            )
            for position, sparse in zip(positions, computed):
                sparses[position] = sparse
                key = keys[position]
                if key is not None:
                    self.cache.sparse.put(key, sparse)
                for follower in followers.get(position, ()):
                    sparses[follower] = sparse
        return list(zip(sparses, keys))

    def _evaluate_batch(
        self, jobs: Sequence[tuple]
    ) -> list[tuple[EvaluationResult | None, ReproError | None]]:
        """Evaluate a batch of jobs in one stacked pass, capturing
        expected failures per job.

        Each job is ``(design, workload[, mapping])`` — the
        :meth:`_evaluate` signature. The pipeline runs stage by stage
        across the whole batch: mappings resolve first
        (constraints-only designs fall back to the ordinary search
        path), the dense misses of the batch stack through one
        :meth:`_dense_analysis_mixed` pass, the sparse misses through
        one :meth:`_sparse_analysis_mixed` pass, and the micro tail
        finishes each job. Every per-job outcome — including
        :class:`~repro.common.errors.ReproError` failures such as
        capacity overflows — matches a serial :meth:`_evaluate` call
        bit for bit; only the grouping of the numpy arithmetic
        changes, and the stacked backends are the proven-bit-identical
        :func:`~repro.dataflow.nest_analysis.analyze_dataflow_batch`
        and :func:`~repro.sparse.postprocess.analyze_sparse_batch`.

        Returns one ``(result, error)`` pair per job, in job order
        (exactly one side is non-``None``). This is the micro-batching
        core of the serving daemon: N concurrent clients' evaluate
        jobs resolve through one call.
        """
        jobs = list(jobs)
        outcomes: list[tuple | None] = [None] * len(jobs)
        staged: list[tuple[int, Design, Workload, Mapping]] = []
        for index, job in enumerate(jobs):
            design, workload = job[0], job[1]
            mapping = job[2] if len(job) > 2 else None
            try:
                mapping = mapping or design.mapping_for(workload)
                if mapping is None:
                    # Constraints-driven (or absent) mapping policy:
                    # the search path owns this job end to end.
                    outcomes[index] = (self._evaluate(design, workload), None)
                    continue
            except ReproError as exc:
                outcomes[index] = (None, exc)
                continue
            staged.append((index, design, workload, mapping))

        dense_entries: list[tuple] = []
        dense_outcomes = self._dense_analysis_mixed(
            [(design, workload, mapping) for _i, design, workload, mapping
             in staged]
        )
        for (index, design, workload, _mapping), dense_outcome in zip(
            staged, dense_outcomes
        ):
            if isinstance(dense_outcome, ReproError):
                outcomes[index] = (None, dense_outcome)
                continue
            dense, dense_key = dense_outcome
            dense_entries.append((index, design, workload, dense, dense_key))

        analyses: list
        try:
            analyses = self._sparse_analysis_mixed(
                [
                    (dense, design.safs, dense_key)
                    for _i, design, _w, dense, dense_key in dense_entries
                ]
            )
        except ReproError:
            # A failure inside the stacked flush cannot be attributed
            # to one job; re-run the sparse stage serially so the error
            # lands on exactly the job(s) that caused it.
            analyses = []
            for _i, design, _w, dense, dense_key in dense_entries:
                try:
                    analyses.append(
                        self._sparse_analysis_keyed(
                            dense, design.safs, dense_key
                        )
                    )
                except ReproError as exc:
                    analyses.append(exc)

        for entry, analysis in zip(dense_entries, analyses):
            index, design, workload, dense, _dense_key = entry
            if isinstance(analysis, ReproError):
                outcomes[index] = (None, analysis)
                continue
            sparse, sparse_key = analysis
            try:
                result = self._finish_evaluation(
                    design, workload, dense, sparse, sparse_key
                )
            except ReproError as exc:
                outcomes[index] = (None, exc)
            else:
                outcomes[index] = (result, None)
        return outcomes

    # ------------------------------------------------------------------
    # Batch evaluation

    def evaluate_many(
        self,
        jobs: Sequence[tuple],
        parallel: int = 1,
    ) -> list[EvaluationResult]:
        """Deprecated entry point; use
        :meth:`repro.api.Session.submit_many`."""
        _warn_deprecated("evaluate_many", "Session.submit_many")
        return self._evaluate_many(jobs, parallel)

    def _evaluate_many(
        self,
        jobs: Sequence[tuple],
        parallel: int = 1,
    ) -> list[EvaluationResult]:
        """Evaluate a batch of jobs, preserving order.

        Each job is ``(design, workload)`` or ``(design, workload,
        mapping)`` — the same signature as :meth:`evaluate`.
        ``parallel=N`` splits the batch into ``N`` deterministic
        contiguous chunks evaluated in worker processes; results are
        reassembled in job order and match the serial run exactly.
        Workers start with the parent's hottest cache entries.
        """
        jobs = list(jobs)
        if parallel <= 1 or len(jobs) <= 1:
            return [self._evaluate(*job) for job in jobs]
        chunks = _contiguous_chunks(jobs, parallel)
        worker = replace(self, cache=None)
        # Zero-pickle fan-out: jobs (designs + workloads) ship once per
        # worker via the initializer; task payloads are index ranges.
        shared = {"evaluator": worker, "jobs": jobs}
        payloads = []
        offset = 0
        for chunk in chunks:
            payloads.append((offset, offset + len(chunk)))
            offset += len(chunk)
        partials = self._run_pool(
            _evaluate_range_worker, payloads, shared=shared
        )
        results = [result for chunk in partials for result in chunk]
        # Results were computed in workers; fold them back into the
        # parent cache so follow-up serial evaluations hit and
        # persistent spills capture what the fan-out derived.
        for job, result in zip(jobs, results):
            self._absorb_result(job[0], job[1], result)
        return results

    def evaluate_network(
        self,
        design: Design,
        layers,
        densities_for: Callable[[object], dict[str, float]],
        parallel: int = 1,
    ) -> list[tuple[object, EvaluationResult]]:
        """Deprecated entry point; use
        :meth:`repro.api.Session.evaluate_network` (which returns a
        serializable :class:`~repro.model.result.NetworkResult`)."""
        _warn_deprecated("evaluate_network", "Session.evaluate_network")
        return self._evaluate_network(design, layers, densities_for, parallel)

    def _evaluate_network(
        self,
        design: Design,
        layers,
        densities_for: Callable[[object], dict[str, float]],
        parallel: int = 1,
        *,
        mapping_for: Callable[[Workload], Mapping | None] | None = None,
    ) -> list[tuple[object, EvaluationResult]]:
        """Per-layer evaluation of a full network (Sec 6.1 methodology).

        ``layers`` is a list of :class:`~repro.workload.nets.NetLayer`;
        ``densities_for(layer)`` supplies per-tensor densities. Results
        aggregate per layer; total latency/energy multiply by layer
        repeat counts. ``parallel=N`` fans the layers out over worker
        processes via :meth:`evaluate_many`.

        Layers with identical content — same einsum, same densities,
        and the same mapping the design resolves for them — are
        evaluated once and the result shared (rebound to each layer's
        workload name), since evaluation is a pure function of that
        content; per-layer result order is preserved. The design's
        ``mapping_factory`` is still consulted once per layer (exactly
        as the undeduped path would), so factories that key off the
        workload *name* keep their distinct mappings and are simply not
        merged. Layers whose density models expose no content key are
        conservatively treated as unique. When a ``persistent`` store
        is configured, the fan-out warm-starts from (and afterwards
        spills to) the snapshot keyed by this network's content.

        ``mapping_for`` overrides the design's mapping policy with an
        explicit per-workload resolver (the fused-cascade path passes
        its fusion-transformed sub-nests through here); ``None`` keeps
        the design's own resolution, bit-identically to before the
        override existed.
        """
        resolve = design.mapping_for if mapping_for is None else mapping_for
        workloads = [
            Workload.uniform(layer.spec, densities_for(layer), name=layer.name)
            for layer in layers
        ]
        job_of_layer: list[int] = []
        unique_jobs: list[tuple] = []
        seen: dict[tuple, int] = {}
        for workload in workloads:
            # The evaluation also depends on the mapping the design
            # resolves for this workload; factories may legitimately
            # produce different schedules for identical shapes, so the
            # resolved mapping joins the dedupe key (and rides in the
            # job, keeping factories at one call per layer).
            mapping = resolve(workload)
            key = _workload_content_key(workload)
            if key is not None:
                key = (key, None if mapping is None else mapping.cache_key())
            index = seen.get(key) if key is not None else None
            if index is None:
                index = len(unique_jobs)
                if mapping is None:
                    unique_jobs.append((design, workload))
                else:
                    unique_jobs.append((design, workload, mapping))
                if key is not None:
                    seen[key] = index
            job_of_layer.append(index)

        spill_key = None
        if self.persistent is not None and self.cache is not None:
            spill_key = persistent_state_key(
                design, [job[1] for job in unique_jobs]
            )
            if spill_key is not None:
                self.warm_start(spill_key)
        results = self._evaluate_many(unique_jobs, parallel=parallel)
        if spill_key is not None:
            self.spill_cache(spill_key)

        paired = []
        for layer, workload, index in zip(layers, workloads, job_of_layer):
            result = results[index]
            if result.workload_name != workload.name:
                result = replace(result, workload_name=workload.name)
            paired.append((layer, result))
        return paired

    def evaluate_fused(
        self,
        design: Design,
        graph,
        densities: dict[str, float] | None = None,
        fused=None,
        parallel: int = 1,
    ):
        """Deprecated entry point; use
        :meth:`repro.api.Session.evaluate_fused`."""
        _warn_deprecated("evaluate_fused", "Session.evaluate_fused")
        return self._evaluate_fused(design, graph, densities, fused, parallel)

    def _evaluate_fused(
        self,
        design: Design,
        graph,
        densities: dict[str, float] | None = None,
        fused=None,
        parallel: int = 1,
    ):
        """Evaluate an einsum cascade, optionally fused.

        ``graph`` is an :class:`~repro.workload.graph.EinsumGraph`;
        ``densities`` maps tensor names (shared across einsums) to
        uniform densities. ``fused`` is a
        :class:`~repro.mapping.fused.FusedMapping`; ``None`` (or one
        with ``fuse_at=None``) is the degenerate form, which runs the
        einsums through exactly the :meth:`_evaluate_network` machinery
        — per-einsum results are bit-identical to evaluating the graph
        as an unfused layer list.

        When ``fuse_at`` names a level, each sub-nest is rewritten so
        the graph's intermediates are kept at (and never outside) that
        level, the fused dataflow analysis cross-validates the
        sub-nests' intermediate tiles and seeds the dense stage, and
        the per-einsum pipeline runs on the rewritten mappings — every
        downstream cache stays sound because the fusion lives in the
        mapping content. Complete results are memoised in the
        ``"fused"`` cache stage keyed by graph + design + resolved
        sub-nest + density content.
        """
        from repro.dataflow.nest_analysis import analyze_fused_dataflow
        from repro.mapping.fused import FusedMapping
        from repro.model.result import FusedEinsumResult, FusedResult
        from repro.workload.nets import NetLayer

        if fused is None:
            fused = FusedMapping()
        fused.validate(graph, design.arch)
        densities = dict(densities or {})
        known = set(graph.tensor_names())
        for tensor in densities:
            if tensor not in known:
                raise SpecError(
                    f"density given for unknown tensor {tensor!r}; graph "
                    f"{graph.name!r} has {sorted(known)}"
                )

        def densities_for(layer):
            names = {t.name for t in layer.spec.tensors}
            return {t: d for t, d in densities.items() if t in names}

        layers = [NetLayer(spec.name, spec) for spec in graph.einsums]
        workloads = [
            Workload.uniform(layer.spec, densities_for(layer), name=layer.name)
            for layer in layers
        ]

        # Resolve each einsum's sub-nest: explicit fused mapping first,
        # then the design's mapping policy (one factory call per einsum,
        # matching the network path).
        resolved: dict[str, Mapping | None] = {}
        for workload in workloads:
            mapping = fused.mapping_for(workload.name)
            if mapping is None:
                mapping = design.mapping_for(workload)
            resolved[workload.name] = mapping

        fuse_at = fused.fuse_at
        intermediates = set(graph.intermediates)
        if fuse_at is not None:
            missing = [name for name, m in resolved.items() if m is None]
            if missing:
                raise MappingError(
                    f"fusing at {fuse_at!r} needs a sub-nest per einsum; "
                    f"none resolved for {missing} (give the FusedMapping "
                    "explicit mappings or a design with a mapping policy)"
                )
            for workload in workloads:
                tensor_names = {t.name for t in workload.einsum.tensors}
                touched = tensor_names & intermediates
                mapping = fused.fused_levels(
                    resolved[workload.name], tensor_names, touched
                )
                level = mapping.level(fuse_at)
                for tensor in sorted(touched):
                    if not level.keeps(tensor):
                        raise MappingError(
                            f"intermediate {tensor!r} is fused at "
                            f"{fuse_at!r} but einsum {workload.name!r}'s "
                            f"sub-nest does not keep it there"
                        )
                resolved[workload.name] = mapping

        # Persistent-tier bracket. The network fan-out below brackets
        # its own warm-start/spill, but its spill runs before the fused
        # result is memoised and its warm-start after the whole-result
        # probe has already missed — so the fused path warms here and
        # re-spills after the store, keeping repeat runs one probe.
        warm_key = None
        if self.persistent is not None and self.cache is not None:
            warm_key = persistent_state_key(design, workloads)
            if warm_key is not None:
                self.warm_start(warm_key)

        # Whole-result memo: resolved sub-nests join the key (the
        # FusedMapping alone may defer to the design's mapping policy).
        fused_key = None
        if self.cache is not None and all(
            m is not None for m in resolved.values()
        ):
            fused_key = CachedHashKey(
                (
                    "fused-result",
                    graph.cache_key(),
                    design.arch.cache_key(),
                    design.safs.cache_key(),
                    fuse_at,
                    tuple(
                        (name, resolved[name].cache_key())
                        for name in sorted(resolved)
                    ),
                    tuple(sorted(densities.items())),
                    bool(self.check_capacity),
                )
            )
            stage = self.cache.stage(FUSED_STAGE)
            hit = stage.get(fused_key)
            if hit is not None:
                return hit

        if fuse_at is not None:
            # Fused dataflow analysis: cross-validates the intermediate
            # tiles across sub-nests and computes every einsum's dense
            # traffic in one batched pass; the results seed the dense
            # stage so the per-einsum pipeline below reuses them.
            index_of = {w.name: i for i, w in enumerate(workloads)}
            shared = {
                tensor: (
                    index_of[graph.producer_of(tensor)],
                    [index_of[name] for name in graph.consumers_of(tensor)],
                )
                for tensor in graph.intermediates
            }
            jobs = [
                (w, design.arch, resolved[w.name]) for w in workloads
            ]
            denses = analyze_fused_dataflow(
                jobs, fuse_at=fuse_at, shared=shared
            )
            if self.cache is not None:
                for (workload, _arch, mapping), dense in zip(jobs, denses):
                    key = CachedHashKey(
                        dense_analysis_key(workload, design.arch, mapping)
                    )
                    if key not in self.cache.dense:
                        self.cache.dense.put(
                            key, replace(dense, workload=None)
                        )

        pairs = self._evaluate_network(
            design,
            layers,
            densities_for,
            parallel,
            mapping_for=(
                None
                if fused.mappings is None and fuse_at is None
                else lambda workload: resolved[workload.name]
            ),
        )

        top_level = design.arch.level_names[0]
        by_name = {layer.name: result for layer, result in pairs}
        shared_records: list[dict] = []
        for tensor in graph.intermediates:
            producer = graph.producer_of(tensor)
            consumers = graph.consumers_of(tensor)
            record: dict = {
                "tensor": tensor,
                "producer": producer,
                "consumers": list(consumers),
                "level": fuse_at,
                "fusion_words": {},
                "backing_words": {},
            }
            for name in [producer, *consumers]:
                traffic = by_name[name].dense.traffic
                top = traffic.get((top_level, tensor))
                record["backing_words"][name] = (
                    top.reads + top.writes if top is not None else 0.0
                )
                if fuse_at is not None:
                    at = traffic.get((fuse_at, tensor))
                    record["fusion_words"][name] = (
                        at.reads + at.writes if at is not None else 0.0
                    )
            shared_records.append(record)

        result = FusedResult(
            design_name=design.name,
            graph_name=graph.name,
            einsums=[
                FusedEinsumResult(einsum_name=layer.name, result=res)
                for layer, res in pairs
            ],
            fuse_at=fuse_at,
            shared=shared_records,
        )
        if fused_key is not None:
            self.cache.stage(FUSED_STAGE).put(fused_key, result)
            if warm_key is not None:
                self.spill_cache(warm_key)
        return result

    def _absorb_result(
        self, design: Design, workload: Workload, result: EvaluationResult
    ) -> None:
        """Install an externally computed result into this evaluator's
        cache stages.

        Parallel fan-outs evaluate in worker processes, so the parent
        cache never sees their work; every stage value is sitting in
        the :class:`EvaluationResult`, though, and the content keys are
        cheap to re-derive. Entries already present are left alone
        (first-seen wins, like any other hit).
        """
        if self.cache is None:
            return
        dense = result.dense
        if dense is None or dense.mapping is None:
            return
        from repro.dataflow.nest_analysis import dense_analysis_key

        dense_key = CachedHashKey(
            dense_analysis_key(workload, design.arch, dense.mapping)
        )
        if dense_key not in self.cache.dense:
            self.cache.dense.put(dense_key, replace(dense, workload=None))
        sparse_key = sparse_analysis_key(dense, design.safs, dense_key)
        if sparse_key is None:
            return
        sparse_key = CachedHashKey(sparse_key)
        stage_values = (
            ("sparse", result.sparse),
            (VALIDITY_STAGE, result.usage),
            (LATENCY_STAGE, result.latency),
            (ENERGY_STAGE, result.energy),
        )
        for name, value in stage_values:
            stage = self.cache.stage(name)
            if value is not None and sparse_key not in stage:
                stage.put(sparse_key, value)

    # ------------------------------------------------------------------
    # Warm-worker cache shipping and the persistent tier

    def _export_cache_state(
        self,
        per_stage_limit: int | None = None,
        exclude_stages: tuple[str, ...] = (),
    ) -> dict | None:
        """Picklable snapshot of this evaluator's cache stages plus the
        process-global tile-format stage.

        ``per_stage_limit`` caps entries per stage (pool initializers
        pass the default shipping cap; persistent spills pass ``None``
        for everything). ``exclude_stages`` drops whole stages from the
        payload — search pools use it for the ``candidates`` stage,
        whose streams their workers can never read (chunk workers get
        explicit materialised candidate lists). Returns ``None`` when
        caching is disabled (``cache=None``), so workers honour the
        parent's setting instead of silently re-enabling their own
        caches.
        """
        if self.cache is None:
            return None
        state = dict(self.cache.export_state(per_stage_limit))
        for name in exclude_stages:
            state.pop(name, None)
        tile = global_cache().stage(TILE_FORMAT_STAGE).export_entries(
            per_stage_limit
        )
        if tile:
            state[TILE_FORMAT_STAGE] = tile
        return state

    def warm_start(self, key: str | None = None) -> int:
        """Load the persistent snapshot ``key`` (default: the
        evaluator's ``persistent_key``) into the in-memory cache;
        returns the number of entries installed (0 when the persistent
        tier is unconfigured, caching is disabled, or no snapshot
        exists)."""
        key = key or self.persistent_key
        if self.persistent is None or self.cache is None or key is None:
            return 0
        self.persistent_key = key
        state = self.persistent.load(key)
        if not state:
            return 0
        return _install_cache_state(self.cache, state)

    def spill_cache(self, key: str | None = None) -> Path | None:
        """Spill the full in-memory cache state (all stages, no entry
        cap, plus the global tile-format stage) to the persistent store
        under ``key`` (default: ``persistent_key``); returns the
        snapshot path, or ``None`` when there is nothing to spill.

        A fully warm run — every entry restored from a snapshot,
        nothing newly computed — leaves the existing snapshot untouched
        instead of re-pickling identical content on the hot
        repeat-invocation path.
        """
        key = key or self.persistent_key
        if self.persistent is None or self.cache is None or key is None:
            return None
        self.persistent_key = key
        tile_stage = global_cache().stage(TILE_FORMAT_STAGE)
        path = self.persistent.path_for(key)
        if not self.cache.is_dirty() and not tile_stage.dirty and path.exists():
            return path  # fully warm: skip even the export
        state = self._export_cache_state(per_stage_limit=None)
        if not state:
            return None
        written = self.persistent.store(key, state)
        self.cache.mark_clean()
        tile_stage.dirty = False
        return written

    def spill_cache_all(self, keys: Sequence[str]) -> list[Path]:
        """Spill the current cache state under every key in ``keys``
        (one export serves them all); returns the snapshot paths.

        Unlike calling :meth:`spill_cache` in a loop, the dirty flag is
        cleared once at the end — a dirty cache is written under
        *every* key, so no key's snapshot is left stale just because an
        earlier spill in the same pass marked the cache clean. Keys
        whose snapshot already exists are skipped only when the cache
        holds nothing new.
        """
        if self.persistent is None or self.cache is None or not keys:
            return []
        tile_stage = global_cache().stage(TILE_FORMAT_STAGE)
        dirty = self.cache.is_dirty() or tile_stage.dirty
        stale = [
            key
            for key in keys
            if dirty or not self.persistent.path_for(key).exists()
        ]
        if not stale:
            return [self.persistent.path_for(key) for key in keys]
        state = self._export_cache_state(per_stage_limit=None)
        if not state:
            return []
        written = [self.persistent.store(key, state) for key in stale]
        self.cache.mark_clean()
        tile_stage.dirty = False
        return written

    def _run_pool(
        self,
        worker_fn,
        payloads: list,
        exclude_stages: tuple[str, ...] = (),
        shared: dict | None = None,
    ) -> list:
        """Map ``worker_fn`` over ``payloads`` in a process pool.

        The pool pins an explicit multiprocessing context —
        ``REPRO_MP_START_METHOD`` if set, else ``fork`` where available
        and ``spawn`` otherwise — so spawn-based platforms
        (macOS/Windows) run the same code path the fork-based tests
        exercise rather than whatever the platform default happens to
        be. Workers warm up from the persistent store (when configured)
        and the parent's shipped entries. Empty payload lists return
        immediately (``ProcessPoolExecutor`` rejects
        ``max_workers=0``).

        ``shared`` carries the fan-out's read-only state (evaluator,
        design, workload, candidates/jobs) to :data:`_WORKER_SHARED`
        through the initializer: it crosses the process boundary once
        per *worker* — by inheritance under fork, as part of the
        initargs pickle under spawn/forkserver — instead of riding in
        every task payload, which stays a tiny index range.
        """
        if not payloads:
            return []
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor

        context = mp.get_context(_pool_start_method())
        persistent = self.persistent if self.cache is not None else None
        with ProcessPoolExecutor(
            max_workers=len(payloads),
            mp_context=context,
            initializer=_warm_worker_initializer,
            initargs=(
                self._export_cache_state(
                    DEFAULT_EXPORT_LIMIT, exclude_stages=exclude_stages
                ),
                persistent,
                self.persistent_key,
                shared,
            ),
        ) as pool:
            return list(pool.map(worker_fn, payloads))


def _pool_start_method() -> str:
    """The multiprocessing start method for engine pools: the
    ``REPRO_MP_START_METHOD`` environment variable when set, else
    ``fork`` on Linux (cheap and inherits warm module state), else
    ``spawn``. macOS *offers* fork but CPython made spawn its default
    in 3.8 because forking there is unsafe (system frameworks may hold
    locks/threads), so fork is pinned only where it is actually sound —
    on spawn platforms the initializer-driven warm-up path carries the
    cache state instead."""
    import multiprocessing as mp
    import sys

    env = os.environ.get("REPRO_MP_START_METHOD")
    if env:
        return env
    if sys.platform.startswith("linux") and "fork" in mp.get_all_start_methods():
        return "fork"
    return "spawn"


def _workload_content_key(workload: Workload) -> tuple | None:
    """Content key of one workload — einsum plus every tensor's density
    model — or ``None`` when any density model is uncacheable. Used to
    dedupe identical network layers before fan-out."""
    ensure_output_density(workload)
    density_keys = []
    for tensor in workload.einsum.tensors:
        key = workload.density_of(tensor.name).cache_key()
        if key is None:
            return None
        density_keys.append((tensor.name, key))
    return (workload.einsum.cache_key(), tuple(density_keys))


def persistent_state_key(design: Design, workloads: Sequence[Workload]) -> str | None:
    """Snapshot identity for the persistent tier: a digest of the
    design's architecture + SAF content keys and every workload's
    content key. Returns ``None`` when any workload is uncacheable (no
    snapshot would ever hit). The digest deliberately excludes the
    mapping/constraints: snapshot entries are content-addressed
    internally, so a broader key only decides which snapshot file is
    consulted, never whether a stale entry can be served.
    """
    parts: list = [design.arch.cache_key(), design.safs.cache_key()]
    for workload in workloads:
        key = _workload_content_key(workload)
        if key is None:
            return None
        parts.append(key)
    digest = hashlib.blake2b(
        repr(tuple(parts)).encode(), digest_size=16
    )
    return digest.hexdigest()


def _install_cache_state(cache: AnalysisCache, state: dict) -> int:
    """Install an exported snapshot: tile-format entries go to the
    process-global stage, everything else into ``cache``. Returns the
    total number of entries installed."""
    state = dict(state)
    total = 0
    tile = state.pop(TILE_FORMAT_STAGE, None)
    if tile:
        total += global_cache().stage(TILE_FORMAT_STAGE).import_entries(tile)
    total += cache.import_state(state)
    return total


#: Cache installed by the pool initializer; worker chunk functions bind
#: it so every chunk in the process shares the parent-warmed entries.
#: ``_WORKER_CACHE_INSTALLED`` records that the initializer ran at all:
#: a ``None`` cache then means the parent runs uncached and workers
#: must too — :func:`_bind_worker_cache` *forces* ``cache=None`` in
#: that case rather than leaving whatever (e.g. fork-inherited) cache
#: the evaluator happened to carry.
_WORKER_CACHE: AnalysisCache | None = None
_WORKER_CACHE_INSTALLED = False

#: Read-only fan-out state installed by the pool initializer (the
#: zero-pickle worker protocol): evaluator, design, workload, and the
#: full candidate/job list of the current fan-out. Range workers slice
#: it by the index ranges their task payloads carry.
_WORKER_SHARED: dict | None = None


def _warm_worker_initializer(
    state: dict | None,
    persistent: PersistentCache | None = None,
    persistent_key: str | None = None,
    shared: dict | None = None,
) -> None:
    """Runs once per worker process: seed the process-global tile
    stage and build the shared per-process analysis cache, warming it
    first from the persistent store (when the parent configured one)
    and then from the parent's shipped entries. A ``None`` state means
    the parent runs uncached; workers then do too — the persistent
    tier is skipped as well, so disabling the cache really disables
    every tier. ``shared`` is the fan-out's read-only state for range
    workers (see :meth:`Evaluator._run_pool`)."""
    global _WORKER_CACHE, _WORKER_CACHE_INSTALLED, _WORKER_SHARED
    _WORKER_CACHE_INSTALLED = True
    _WORKER_SHARED = shared
    if state is None:
        _WORKER_CACHE = None
        return
    cache = AnalysisCache()
    if persistent is not None and persistent_key is not None:
        disk_state = persistent.load(persistent_key)
        if disk_state:
            _install_cache_state(cache, disk_state)
    _install_cache_state(cache, state)
    _WORKER_CACHE = cache


def _bind_worker_cache(evaluator: Evaluator) -> Evaluator:
    """Give a shipped (cache-stripped) evaluator its in-process cache —
    or explicitly none at all, mirroring the parent's ``cache=None``."""
    if not _WORKER_CACHE_INSTALLED:
        return evaluator
    return replace(evaluator, cache=_WORKER_CACHE)


def _contiguous_chunks(items: list, parts: int) -> list[list]:
    """Split ``items`` into at most ``parts`` contiguous, near-equal,
    non-empty chunks (deterministic); an empty ``items`` yields no
    chunks at all."""
    if not items:
        return []
    parts = max(1, min(parts, len(items)))
    size, extra = divmod(len(items), parts)
    chunks = []
    start = 0
    for i in range(parts):
        end = start + size + (1 if i < extra else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


def _search_range_worker(payload):
    """Search one candidate index range against the installed
    fan-out state (:data:`_WORKER_SHARED`).

    Returns ``(best, frontier)`` — the chunk's winner tuple and its
    partial Pareto frontier. Both scans produce identical partials,
    so the parallel merge is strategy-agnostic."""
    start, stop = payload
    shared = _WORKER_SHARED
    evaluator = _bind_worker_cache(shared["evaluator"])
    chunk = shared["candidates"][start:stop]
    objective = resolve_objective(shared["objective"])
    frontier = ParetoFrontier(axes=objective.axes)
    if evaluator.search_strategy == "batched":
        best = evaluator._search_candidates_batched(
            shared["design"], shared["workload"], chunk,
            objective, offset=start, frontier=frontier,
        )
    else:
        best = evaluator._search_candidates(
            shared["design"], shared["workload"], chunk,
            objective, offset=start, frontier=frontier,
        )
    return best, frontier


def _evaluate_range_worker(payload):
    """Evaluate one job index range against the installed fan-out
    state (:data:`_WORKER_SHARED`)."""
    start, stop = payload
    shared = _WORKER_SHARED
    evaluator = _bind_worker_cache(shared["evaluator"])
    return [evaluator._evaluate(*job) for job in shared["jobs"][start:stop]]


def _search_chunk_worker(payload):
    """Legacy self-contained chunk worker (state rides in the payload);
    kept for external callers — the engine now ships
    :func:`_search_range_worker` payloads instead."""
    evaluator, design, workload, chunk, objective, offset = payload
    evaluator = _bind_worker_cache(evaluator)
    if evaluator.search_strategy == "batched":
        return evaluator._search_candidates_batched(
            design, workload, chunk, objective, offset=offset
        )
    return evaluator._search_candidates(
        design, workload, chunk, objective, offset=offset
    )


def _evaluate_chunk_worker(payload):
    """Legacy self-contained chunk worker; see
    :func:`_search_chunk_worker`."""
    evaluator, jobs = payload
    evaluator = _bind_worker_cache(evaluator)
    return [evaluator._evaluate(*job) for job in jobs]
