"""The Sparseloop evaluation engine (Fig. 5).

``Evaluator.evaluate`` runs the three decoupled modeling steps:

1. dataflow modeling (dense traffic from the mapping),
2. sparse modeling (SAF filtering with statistical density models),
3. micro-architectural modeling (validity, cycles, energy).

A :class:`Design` bundles the architecture, the SAF specification, and
how mappings are obtained (fixed, per-workload factory, or a mapspace
search through :class:`~repro.mapping.mapspace.Mapper`).

Fast-path machinery
-------------------

The engine is built for design-space-exploration traffic, where the
same dense analysis and the same candidate mappings are evaluated over
and over with different SAF configurations:

* :class:`DenseAnalysisCache` — step 1 is independent of tensor
  densities and SAFs, so its results are content-addressed by
  ``(einsum, architecture, mapping)`` and reused across SAF variants
  and repeated evaluations. Every :class:`Evaluator` owns one by
  default; pass ``dense_cache=None`` to disable or share one instance
  across evaluators to pool hits.
* capacity pre-filter — ``search_mappings`` rejects candidates whose
  *lower-bound* tile footprint already overflows a storage level
  before running the full dense→sparse→micro pipeline. The bound is
  strictly optimistic (payload-only, statistical occupancy), so no
  mapping the full validity check would accept is ever dropped.
* batch/parallel APIs — :meth:`Evaluator.evaluate_many` and
  ``search_mappings(..., parallel=N)`` fan work out over a process
  pool in deterministic contiguous chunks; results (including search
  tie-breaking) are identical to the serial order. Parallel mode
  requires picklable designs/workloads/objectives (module-level
  functions, not lambdas).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field, replace

from repro.accelergy.backend import Accelergy
from repro.arch.spec import Architecture
from repro.common.errors import MappingError, SpecError, ValidationError
from repro.dataflow.nest_analysis import (
    DenseTraffic,
    analyze_dataflow,
    dense_analysis_key,
)
from repro.mapping.mapping import Mapping
from repro.mapping.mapspace import Mapper, MapspaceConstraints
from repro.micro.energy import compute_energy
from repro.micro.latency import compute_latency
from repro.micro.validity import check_validity
from repro.model.result import EvaluationResult
from repro.sparse.postprocess import analyze_sparse, ensure_output_density
from repro.sparse.saf import SAFSpec
from repro.workload.spec import Workload

MappingFactory = Callable[[Workload, Architecture], Mapping]


@dataclass
class Design:
    """A complete accelerator design point.

    Exactly one of ``mapping``, ``mapping_factory``, or ``constraints``
    decides how each workload is scheduled:

    * ``mapping`` — a fixed mapping (single-workload studies),
    * ``mapping_factory`` — callable producing a mapping per workload
      (the native dataflow of a design, e.g. SCNN's
      PlanarTiled-InputStationary),
    * ``constraints`` — a mapspace to search with the built-in mapper.
    """

    name: str
    arch: Architecture
    safs: SAFSpec = field(default_factory=SAFSpec)
    mapping: Mapping | None = None
    mapping_factory: MappingFactory | None = None
    constraints: MapspaceConstraints | None = None

    def mapping_for(self, workload: Workload) -> Mapping | None:
        if self.mapping is not None:
            return self.mapping
        if self.mapping_factory is not None:
            return self.mapping_factory(workload, self.arch)
        return None


class DenseAnalysisCache:
    """Content-addressed LRU cache of dense dataflow analyses.

    Keys are :func:`~repro.dataflow.nest_analysis.dense_analysis_key`
    triples — (einsum, architecture, mapping) content keys — which
    deliberately exclude tensor densities: the dense step never reads
    them, so one analysis serves every SAF/density variant of a
    mapping. On a hit for a *different* workload object the cached
    :class:`DenseTraffic` is rebound to the new workload (a shallow
    copy sharing the immutable traffic records).
    """

    def __init__(self, maxsize: int = 1024):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, DenseTraffic] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "entries": len(self._entries),
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def get_or_compute(
        self, workload: Workload, arch: Architecture, mapping: Mapping
    ) -> DenseTraffic:
        key = dense_analysis_key(workload, arch, mapping)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return replace(cached, workload=workload)
        self.misses += 1
        dense = analyze_dataflow(workload, arch, mapping)
        # Store with the workload stripped: the key ignores densities,
        # so keeping the first-seen workload would pin its density
        # models (potentially whole ActualDataDensity tensors) far
        # beyond their lifetime. Hits always rebind the caller's.
        self._entries[key] = replace(dense, workload=None)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return dense


def _edp_objective(result: EvaluationResult) -> float:
    """Default search objective (module-level so it pickles)."""
    return result.edp


@dataclass
class Evaluator:
    """Runs the three-step Sparseloop model.

    Knobs:

    ``check_capacity``: raise when worst-case tiles overflow a level.
    ``search_budget``: mappings sampled when a design only provides
    mapspace constraints.
    ``search_seed``: RNG seed for mapspace sampling.
    ``dense_cache``: the :class:`DenseAnalysisCache` reusing dataflow
    analyses across evaluations (``None`` disables caching; a shared
    instance pools hits across evaluators). Each evaluator gets its own
    cache by default.
    ``prefilter_capacity``: in ``search_mappings``, cheaply reject
    candidates whose optimistic tile footprint already overflows a
    finite storage level, skipping the full pipeline. Never changes the
    search result (the bound is a strict lower bound of the validity
    check's occupancy); only applies when ``check_capacity`` is True.

    Batch evaluation: :meth:`evaluate_many` evaluates a list of jobs,
    and it, :meth:`search_mappings`, and :meth:`evaluate_network`
    accept ``parallel=N`` to fan out over ``N`` worker processes in
    deterministic contiguous chunks (results identical to serial).
    """

    check_capacity: bool = True
    search_budget: int = 64
    search_seed: int = 0
    dense_cache: DenseAnalysisCache | None = field(
        default_factory=DenseAnalysisCache, repr=False
    )
    prefilter_capacity: bool = True

    def evaluate(
        self,
        design: Design,
        workload: Workload,
        mapping: Mapping | None = None,
    ) -> EvaluationResult:
        """Evaluate one design on one workload.

        ``mapping`` overrides the design's own mapping policy. If the
        design carries only mapspace constraints, the mapper searches
        for the lowest-EDP valid mapping.
        """
        mapping = mapping or design.mapping_for(workload)
        if mapping is None:
            if design.constraints is None:
                raise SpecError(
                    f"design {design.name!r} has no mapping, factory, or "
                    "constraints"
                )
            result = self.search_mappings(design, workload)
            if result is None:
                raise MappingError(
                    f"no valid mapping found for {design.name!r} on "
                    f"{workload.name!r} within budget {self.search_budget}"
                )
            return result
        return self._evaluate_mapping(design, workload, mapping)

    def _dense_analysis(
        self, design: Design, workload: Workload, mapping: Mapping
    ) -> DenseTraffic:
        if self.dense_cache is None:
            return analyze_dataflow(workload, design.arch, mapping)
        return self.dense_cache.get_or_compute(workload, design.arch, mapping)

    def _evaluate_mapping(
        self, design: Design, workload: Workload, mapping: Mapping
    ) -> EvaluationResult:
        dense = self._dense_analysis(design, workload, mapping)
        sparse = analyze_sparse(dense, design.safs)
        usage = check_validity(
            design.arch, sparse, raise_on_invalid=self.check_capacity
        )
        latency = compute_latency(design.arch, dense, sparse)
        energy = compute_energy(design.arch, sparse, Accelergy(design.arch))
        return EvaluationResult(
            design_name=design.name,
            workload_name=workload.name or workload.einsum.name,
            dense=dense,
            sparse=sparse,
            latency=latency,
            energy=energy,
            usage=usage,
        )

    # ------------------------------------------------------------------
    # Capacity pre-filter

    def _passes_capacity_prefilter(
        self, design: Design, workload: Workload, mapping: Mapping
    ) -> bool:
        """Cheap reject of candidates that cannot possibly fit.

        Computes, per finite-capacity level, a *lower bound* on the
        worst-case occupancy the validity check will derive: the dense
        tile size for uncompressed tensors, the statistical-largest
        nonzero count (payload only, metadata ignored) for compressed
        ones. Because the bound never exceeds the real occupancy, a
        rejected candidate is guaranteed to fail ``check_validity``.
        """
        # The output density model participates in the bound; derive it
        # exactly as the sparse step would (idempotent).
        ensure_output_density(workload)
        einsum = workload.einsum
        extents = {dim: 1 for dim in einsum.dims}
        for level_map in reversed(mapping.levels):  # innermost first
            for loop in level_map.temporal + level_map.spatial:
                extents[loop.dim] *= loop.bound
            capacity = design.arch.level(level_map.level).capacity_words
            if capacity is None:
                continue
            used = 0.0
            for tensor in einsum.tensors:
                if not level_map.keeps(tensor.name):
                    continue
                tile = tensor.tile_size(extents)
                fmt = design.safs.format_for(level_map.level, tensor.name)
                if fmt is not None and fmt.is_compressed:
                    model = workload.densities.get(tensor.name)
                    if model is not None:
                        tile = min(tile, model.quantile_occupancy(tile))
                used += tile
                if used > capacity:
                    return False
        return True

    # ------------------------------------------------------------------
    # Mapspace search

    def search_mappings(
        self,
        design: Design,
        workload: Workload,
        objective: Callable[[EvaluationResult], float] | None = None,
        candidates: Iterable[Mapping] | None = None,
        parallel: int = 1,
    ) -> EvaluationResult | None:
        """Find the best valid mapping by the objective (default EDP).

        Uses the design's constraints with the built-in mapper unless
        explicit ``candidates`` are supplied. Returns None when no
        candidate is valid. ``parallel=N`` distributes the candidate
        list over ``N`` worker processes (deterministic: the winner —
        including tie-breaks — matches the serial scan; requires
        picklable design/workload/objective).
        """
        if candidates is None:
            mapper = Mapper(workload.einsum, design.arch, design.constraints)
            space = mapper.mapspace_size_estimate()
            if space <= self.search_budget * 4:
                candidates = mapper.enumerate_mappings()
            else:
                candidates = mapper.sample_mappings(
                    self.search_budget, seed=self.search_seed
                )
        if parallel > 1:
            return self._search_parallel(
                design, workload, list(candidates), objective, parallel
            )
        best = self._search_candidates(design, workload, candidates, objective)
        return best[2] if best is not None else None

    def _search_candidates(
        self,
        design: Design,
        workload: Workload,
        candidates: Iterable[Mapping],
        objective: Callable[[EvaluationResult], float] | None,
        offset: int = 0,
    ) -> tuple[float, int, EvaluationResult] | None:
        """Serial scan returning ``(score, global_index, result)`` of the
        winner; ``offset`` re-bases indices for chunked fan-out."""
        objective = objective or _edp_objective
        prefilter = self.prefilter_capacity and self.check_capacity
        best: tuple[float, int, EvaluationResult] | None = None
        for index, mapping in enumerate(candidates):
            if prefilter and not self._passes_capacity_prefilter(
                design, workload, mapping
            ):
                continue
            try:
                result = self._evaluate_mapping(design, workload, mapping)
            except (ValidationError, MappingError):
                continue
            score = objective(result)
            if best is None or score < best[0]:
                best = (score, offset + index, result)
        return best

    def _search_parallel(
        self,
        design: Design,
        workload: Workload,
        candidates: list[Mapping],
        objective: Callable[[EvaluationResult], float] | None,
        parallel: int,
    ) -> EvaluationResult | None:
        if len(candidates) <= 1:
            best = self._search_candidates(
                design, workload, candidates, objective
            )
            return best[2] if best is not None else None
        from concurrent.futures import ProcessPoolExecutor

        chunks = _contiguous_chunks(candidates, parallel)
        worker = replace(self, dense_cache=DenseAnalysisCache())
        payloads = []
        offset = 0
        for chunk in chunks:
            payloads.append(
                (worker, design, workload, chunk, objective, offset)
            )
            offset += len(chunk)
        with ProcessPoolExecutor(max_workers=len(payloads)) as pool:
            partials = list(pool.map(_search_chunk_worker, payloads))
        best: tuple[float, int, EvaluationResult] | None = None
        for partial in partials:
            if partial is None:
                continue
            # Lexicographic (score, index) min reproduces the serial
            # first-strictly-better tie-breaking exactly.
            if best is None or (partial[0], partial[1]) < (best[0], best[1]):
                best = partial
        return best[2] if best is not None else None

    # ------------------------------------------------------------------
    # Batch evaluation

    def evaluate_many(
        self,
        jobs: Sequence[tuple],
        parallel: int = 1,
    ) -> list[EvaluationResult]:
        """Evaluate a batch of jobs, preserving order.

        Each job is ``(design, workload)`` or ``(design, workload,
        mapping)`` — the same signature as :meth:`evaluate`.
        ``parallel=N`` splits the batch into ``N`` deterministic
        contiguous chunks evaluated in worker processes; results are
        reassembled in job order and match the serial run exactly.
        """
        jobs = list(jobs)
        if parallel <= 1 or len(jobs) <= 1:
            return [self.evaluate(*job) for job in jobs]
        from concurrent.futures import ProcessPoolExecutor

        chunks = _contiguous_chunks(jobs, parallel)
        worker = replace(self, dense_cache=DenseAnalysisCache())
        payloads = [(worker, chunk) for chunk in chunks]
        with ProcessPoolExecutor(max_workers=len(payloads)) as pool:
            partials = list(pool.map(_evaluate_chunk_worker, payloads))
        return [result for chunk in partials for result in chunk]

    def evaluate_network(
        self,
        design: Design,
        layers,
        densities_for: Callable[[object], dict[str, float]],
        parallel: int = 1,
    ) -> list[tuple[object, EvaluationResult]]:
        """Per-layer evaluation of a full network (Sec 6.1 methodology).

        ``layers`` is a list of :class:`~repro.workload.nets.NetLayer`;
        ``densities_for(layer)`` supplies per-tensor densities. Results
        aggregate per layer; total latency/energy multiply by layer
        repeat counts. ``parallel=N`` fans the layers out over worker
        processes via :meth:`evaluate_many`.
        """
        jobs = []
        for layer in layers:
            workload = Workload.uniform(
                layer.spec, densities_for(layer), name=layer.name
            )
            jobs.append((design, workload))
        results = self.evaluate_many(jobs, parallel=parallel)
        return list(zip(layers, results))


def _contiguous_chunks(items: list, parts: int) -> list[list]:
    """Split ``items`` into at most ``parts`` contiguous, near-equal,
    non-empty chunks (deterministic)."""
    parts = max(1, min(parts, len(items)))
    size, extra = divmod(len(items), parts)
    chunks = []
    start = 0
    for i in range(parts):
        end = start + size + (1 if i < extra else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


def _search_chunk_worker(payload):
    evaluator, design, workload, chunk, objective, offset = payload
    return evaluator._search_candidates(
        design, workload, chunk, objective, offset=offset
    )


def _evaluate_chunk_worker(payload):
    evaluator, jobs = payload
    return [evaluator.evaluate(*job) for job in jobs]
