"""The Sparseloop evaluation engine (Fig. 5).

``Evaluator.evaluate`` runs the three decoupled modeling steps:

1. dataflow modeling (dense traffic from the mapping),
2. sparse modeling (SAF filtering with statistical density models),
3. micro-architectural modeling (validity, cycles, energy).

A :class:`Design` bundles the architecture, the SAF specification, and
how mappings are obtained (fixed, per-workload factory, or a mapspace
search through :class:`~repro.mapping.mapspace.Mapper`).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.accelergy.backend import Accelergy
from repro.arch.spec import Architecture
from repro.common.errors import MappingError, SpecError, ValidationError
from repro.dataflow.nest_analysis import analyze_dataflow
from repro.mapping.mapping import Mapping
from repro.mapping.mapspace import Mapper, MapspaceConstraints
from repro.micro.energy import compute_energy
from repro.micro.latency import compute_latency
from repro.micro.validity import check_validity
from repro.model.result import EvaluationResult
from repro.sparse.postprocess import analyze_sparse
from repro.sparse.saf import SAFSpec
from repro.workload.spec import Workload

MappingFactory = Callable[[Workload, Architecture], Mapping]


@dataclass
class Design:
    """A complete accelerator design point.

    Exactly one of ``mapping``, ``mapping_factory``, or ``constraints``
    decides how each workload is scheduled:

    * ``mapping`` — a fixed mapping (single-workload studies),
    * ``mapping_factory`` — callable producing a mapping per workload
      (the native dataflow of a design, e.g. SCNN's
      PlanarTiled-InputStationary),
    * ``constraints`` — a mapspace to search with the built-in mapper.
    """

    name: str
    arch: Architecture
    safs: SAFSpec = field(default_factory=SAFSpec)
    mapping: Mapping | None = None
    mapping_factory: MappingFactory | None = None
    constraints: MapspaceConstraints | None = None

    def mapping_for(self, workload: Workload) -> Mapping | None:
        if self.mapping is not None:
            return self.mapping
        if self.mapping_factory is not None:
            return self.mapping_factory(workload, self.arch)
        return None


@dataclass
class Evaluator:
    """Runs the three-step Sparseloop model.

    ``check_capacity``: raise when worst-case tiles overflow a level.
    ``search_budget``: mappings sampled when a design only provides
    mapspace constraints.
    """

    check_capacity: bool = True
    search_budget: int = 64
    search_seed: int = 0

    def evaluate(
        self,
        design: Design,
        workload: Workload,
        mapping: Mapping | None = None,
    ) -> EvaluationResult:
        """Evaluate one design on one workload.

        ``mapping`` overrides the design's own mapping policy. If the
        design carries only mapspace constraints, the mapper searches
        for the lowest-EDP valid mapping.
        """
        mapping = mapping or design.mapping_for(workload)
        if mapping is None:
            if design.constraints is None:
                raise SpecError(
                    f"design {design.name!r} has no mapping, factory, or "
                    "constraints"
                )
            result = self.search_mappings(design, workload)
            if result is None:
                raise MappingError(
                    f"no valid mapping found for {design.name!r} on "
                    f"{workload.name!r} within budget {self.search_budget}"
                )
            return result
        return self._evaluate_mapping(design, workload, mapping)

    def _evaluate_mapping(
        self, design: Design, workload: Workload, mapping: Mapping
    ) -> EvaluationResult:
        dense = analyze_dataflow(workload, design.arch, mapping)
        sparse = analyze_sparse(dense, design.safs)
        usage = check_validity(
            design.arch, sparse, raise_on_invalid=self.check_capacity
        )
        latency = compute_latency(design.arch, dense, sparse)
        energy = compute_energy(design.arch, sparse, Accelergy(design.arch))
        return EvaluationResult(
            design_name=design.name,
            workload_name=workload.name or workload.einsum.name,
            dense=dense,
            sparse=sparse,
            latency=latency,
            energy=energy,
            usage=usage,
        )

    def search_mappings(
        self,
        design: Design,
        workload: Workload,
        objective: Callable[[EvaluationResult], float] | None = None,
        candidates: Iterable[Mapping] | None = None,
    ) -> EvaluationResult | None:
        """Find the best valid mapping by the objective (default EDP).

        Uses the design's constraints with the built-in mapper unless
        explicit ``candidates`` are supplied. Returns None when no
        candidate is valid.
        """
        objective = objective or (lambda r: r.edp)
        if candidates is None:
            mapper = Mapper(workload.einsum, design.arch, design.constraints)
            space = mapper.mapspace_size_estimate()
            if space <= self.search_budget * 4:
                candidates = mapper.enumerate_mappings()
            else:
                candidates = mapper.sample_mappings(
                    self.search_budget, seed=self.search_seed
                )
        best: EvaluationResult | None = None
        best_score = float("inf")
        for mapping in candidates:
            try:
                result = self._evaluate_mapping(design, workload, mapping)
            except (ValidationError, MappingError):
                continue
            score = objective(result)
            if score < best_score:
                best, best_score = result, score
        return best

    def evaluate_network(
        self,
        design: Design,
        layers,
        densities_for: Callable[[object], dict[str, float]],
    ) -> list[tuple[object, EvaluationResult]]:
        """Per-layer evaluation of a full network (Sec 6.1 methodology).

        ``layers`` is a list of :class:`~repro.workload.nets.NetLayer`;
        ``densities_for(layer)`` supplies per-tensor densities. Results
        aggregate per layer; total latency/energy multiply by layer
        repeat counts.
        """
        results = []
        for layer in layers:
            workload = Workload.uniform(
                layer.spec, densities_for(layer), name=layer.name
            )
            results.append((layer, self.evaluate(design, workload)))
        return results
