"""Evaluation results: the model's outputs for one (design, workload)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataflow.nest_analysis import DenseTraffic
from repro.micro.energy import EnergyResult
from repro.micro.latency import LatencyResult
from repro.micro.validity import LevelUsage
from repro.sparse.traffic import SparseTraffic


@dataclass
class EvaluationResult:
    """Processing speed, energy, and traffic for one evaluation."""

    design_name: str
    workload_name: str
    dense: DenseTraffic
    sparse: SparseTraffic
    latency: LatencyResult
    energy: EnergyResult
    usage: dict[str, LevelUsage] = field(default_factory=dict)

    @property
    def cycles(self) -> float:
        return self.latency.cycles

    @property
    def energy_pj(self) -> float:
        return self.energy.total_pj

    @property
    def edp(self) -> float:
        """Energy-delay product (pJ x cycles)."""
        return self.energy_pj * self.cycles

    @property
    def energy_per_compute(self) -> float:
        computes = max(1.0, self.sparse.compute.actual)
        return self.energy_pj / computes

    @property
    def actual_computes(self) -> float:
        return self.sparse.compute.actual

    def level_energy(self, level: str) -> float:
        return self.energy.component(level)

    def level_cycles(self, level: str) -> float:
        return self.latency.per_component.get(level, 0.0)

    def compression_rate(self, level: str, tensor: str) -> float:
        return self.sparse.at(level, tensor).compression_rate

    def summary(self) -> str:
        lines = [
            f"{self.design_name} / {self.workload_name}",
            f"  cycles: {self.cycles:.4g} (bottleneck: {self.latency.bottleneck},"
            f" utilization {self.latency.utilization:.1%})",
            f"  energy: {self.energy_pj:.6g} pJ  (EDP {self.edp:.6g})",
            "  computes: "
            f"actual {self.sparse.compute.actual:.4g}, "
            f"gated {self.sparse.compute.gated:.4g}, "
            f"skipped {self.sparse.compute.skipped:.4g}",
        ]
        for name, energy in sorted(
            self.energy.per_component.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"    {name}: {energy:.6g} pJ")
        return "\n".join(lines)
