"""Evaluation results: the model's outputs for one (design, workload).

Results are first-class *data*: every result type carries a versioned,
stable serialization (``to_dict`` / ``from_dict`` / ``to_json`` /
``from_json``, ``schema: 1``) so results can be logged, diffed in CI,
stored next to experiments, or served over a wire. Round-trips are
bit-exact for every numeric field — ``from_dict(r.to_dict()).to_dict()
== r.to_dict()`` — across all bundled designs.

What the schema covers: the evaluated mapping (in the YAML ``mapping:``
spec shape) and every derived number — dense traffic records, sparse
action breakdowns, latency, energy, and capacity-usage reports (whether
or not the tiles fit). What it deliberately omits: the input
*objects* — the workload's density models (which may embed whole
tensors) and the architecture — which belong to the job spec, not the
result. A deserialized result therefore has ``dense.workload`` /
``dense.arch`` set to ``None``; every metric, property, and summary
still works.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.common.errors import MappingError, SpecError
from repro.dataflow.nest_analysis import DenseTraffic, TensorTraffic
from repro.mapping.mapping import Mapping
from repro.micro.energy import EnergyResult
from repro.micro.latency import LatencyResult
from repro.micro.validity import LevelUsage
from repro.search.frontier import ParetoFrontier
from repro.sparse.traffic import (
    ActionBreakdown,
    LevelTensorActions,
    SparseTraffic,
)

#: Version of the serialized result schema. Bump only on incompatible
#: key/layout changes; consumers should reject versions they don't
#: know (``from_dict`` does).
RESULT_SCHEMA_VERSION = 1

#: Scalar fields of one dense traffic record, serialized in this order.
_TRAFFIC_FIELDS = (
    "tile_size",
    "instances",
    "episodes",
    "distinct",
    "reads",
    "writes",
    "fills",
    "drains",
    "rmw_reads",
    "refill_writes",
    "compute_feed_reads",
    "update_writes",
)

#: The four action-breakdown channels of one (level, tensor) flow.
_ACTION_CHANNELS = (
    "data_reads",
    "data_writes",
    "metadata_reads",
    "metadata_writes",
)

#: Scalar fields of one sparse (level, tensor) record.
_SPARSE_SCALARS = (
    "occupancy_words",
    "worst_occupancy_words",
    "compression_rate",
    "intersection_checks",
)


class SerializableResult:
    """Shared JSON-text round-trip for every result kind; subclasses
    provide the ``to_dict``/``from_dict`` pair."""

    def to_dict(self) -> dict:  # pragma: no cover - subclasses override
        raise NotImplementedError

    @classmethod
    def from_dict(cls, data: dict):  # pragma: no cover - overridden
        raise NotImplementedError

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str):
        return cls.from_dict(json.loads(text))

    @classmethod
    def _rebuild(cls, data: dict, kind: str, build):
        """Validate the envelope, then run ``build()`` with body-level
        failures (missing keys, wrong value shapes) normalised to
        :class:`SpecError` — callers get one exception type for any
        malformed serialized input, never a raw ``KeyError``."""
        _require_schema(data, kind)
        try:
            return build()
        except SpecError:
            raise
        except (KeyError, TypeError, AttributeError) as exc:
            raise SpecError(
                f"malformed serialized {kind} result: {exc!r}"
            ) from exc


def _require_schema(data: dict, kind: str) -> None:
    """Validate the envelope of a serialized result."""
    if not isinstance(data, dict):
        raise SpecError(
            f"serialized {kind} result must be a dict, got "
            f"{type(data).__name__}"
        )
    version = data.get("schema")
    if version != RESULT_SCHEMA_VERSION:
        raise SpecError(
            f"unsupported result schema version {version!r} "
            f"(this build reads version {RESULT_SCHEMA_VERSION})"
        )
    found = data.get("kind")
    if found != kind:
        raise SpecError(f"expected a {kind!r} result, got kind {found!r}")


def _breakdown_to_dict(b: ActionBreakdown) -> dict:
    return {"actual": b.actual, "gated": b.gated, "skipped": b.skipped}


def _breakdown_from_dict(data: dict) -> ActionBreakdown:
    return ActionBreakdown(
        actual=data["actual"], gated=data["gated"], skipped=data["skipped"]
    )


def _dense_to_dict(dense: DenseTraffic) -> dict:
    records = []
    for (level, tensor), rec in dense.traffic.items():
        entry = {
            "level": level,
            "tensor": tensor,
            "level_index": rec.level_index,
            "tile_dim_extents": dict(rec.tile_dim_extents),
            "tile_rank_extents": list(rec.tile_rank_extents),
        }
        for name in _TRAFFIC_FIELDS:
            entry[name] = getattr(rec, name)
        records.append(entry)
    return {
        "computes": dense.computes,
        "utilized_compute_instances": dense.utilized_compute_instances,
        "latch_extents": {
            tensor: dict(extents)
            for tensor, extents in dense.latch_extents.items()
        },
        "traffic": records,
    }


def _dense_from_dict(data: dict, mapping: Mapping | None) -> DenseTraffic:
    traffic = {}
    for entry in data["traffic"]:
        rec = TensorTraffic(
            tensor=entry["tensor"],
            level=entry["level"],
            level_index=entry["level_index"],
            tile_size=entry["tile_size"],
            tile_dim_extents=dict(entry["tile_dim_extents"]),
            tile_rank_extents=tuple(entry["tile_rank_extents"]),
            instances=entry["instances"],
            episodes=entry["episodes"],
            distinct=entry["distinct"],
        )
        for name in _TRAFFIC_FIELDS[4:]:
            setattr(rec, name, entry[name])
        traffic[(entry["level"], entry["tensor"])] = rec
    return DenseTraffic(
        workload=None,
        arch=None,
        mapping=mapping,
        traffic=traffic,
        computes=data["computes"],
        utilized_compute_instances=data["utilized_compute_instances"],
        latch_extents={
            tensor: dict(extents)
            for tensor, extents in data["latch_extents"].items()
        },
    )


def _sparse_to_dict(sparse: SparseTraffic) -> dict:
    records = []
    for (level, tensor), actions in sparse.actions.items():
        entry = {"level": level, "tensor": tensor}
        for channel in _ACTION_CHANNELS:
            entry[channel] = _breakdown_to_dict(getattr(actions, channel))
        for name in _SPARSE_SCALARS:
            entry[name] = getattr(actions, name)
        records.append(entry)
    return {
        "compute": _breakdown_to_dict(sparse.compute),
        "compute_fractions": list(sparse.compute_fractions),
        "actions": records,
    }


def _sparse_from_dict(data: dict) -> SparseTraffic:
    actions = {}
    for entry in data["actions"]:
        rec = LevelTensorActions(tensor=entry["tensor"], level=entry["level"])
        for channel in _ACTION_CHANNELS:
            setattr(rec, channel, _breakdown_from_dict(entry[channel]))
        for name in _SPARSE_SCALARS:
            setattr(rec, name, entry[name])
        actions[(entry["level"], entry["tensor"])] = rec
    return SparseTraffic(
        actions=actions,
        compute=_breakdown_from_dict(data["compute"]),
        compute_fractions=tuple(data["compute_fractions"]),
    )


def _latency_to_dict(latency: LatencyResult) -> dict:
    return {
        "cycles": latency.cycles,
        "bottleneck": latency.bottleneck,
        "per_component": dict(latency.per_component),
        "bandwidth_demand": dict(latency.bandwidth_demand),
        "compute_cycles": latency.compute_cycles,
    }


def _latency_from_dict(data: dict) -> LatencyResult:
    return LatencyResult(
        cycles=data["cycles"],
        bottleneck=data["bottleneck"],
        per_component=dict(data["per_component"]),
        bandwidth_demand=dict(data["bandwidth_demand"]),
        compute_cycles=data["compute_cycles"],
    )


def _energy_to_dict(energy: EnergyResult) -> dict:
    return {
        "total_pj": energy.total_pj,
        "per_component": dict(energy.per_component),
        "per_component_breakdown": {
            name: dict(parts)
            for name, parts in energy.per_component_breakdown.items()
        },
    }


def _energy_from_dict(data: dict) -> EnergyResult:
    return EnergyResult(
        total_pj=data["total_pj"],
        per_component=dict(data["per_component"]),
        per_component_breakdown={
            name: dict(parts)
            for name, parts in data["per_component_breakdown"].items()
        },
    )


def _usage_to_list(usage: dict[str, LevelUsage]) -> list[dict]:
    return [
        {
            "level": report.level,
            "capacity_words": report.capacity_words,
            "used_words": report.used_words,
            "per_tensor": dict(report.per_tensor),
        }
        for report in usage.values()
    ]


def _usage_from_list(entries: list[dict]) -> dict[str, LevelUsage]:
    return {
        entry["level"]: LevelUsage(
            level=entry["level"],
            capacity_words=entry["capacity_words"],
            used_words=entry["used_words"],
            per_tensor=dict(entry["per_tensor"]),
        )
        for entry in entries
    }


@dataclass
class EvaluationResult(SerializableResult):
    """Processing speed, energy, and traffic for one evaluation."""

    design_name: str
    workload_name: str
    dense: DenseTraffic
    sparse: SparseTraffic
    latency: LatencyResult
    energy: EnergyResult
    usage: dict[str, LevelUsage] = field(default_factory=dict)

    @property
    def cycles(self) -> float:
        return self.latency.cycles

    @property
    def energy_pj(self) -> float:
        return self.energy.total_pj

    @property
    def edp(self) -> float:
        """Energy-delay product (pJ x cycles)."""
        return self.energy_pj * self.cycles

    @property
    def energy_per_compute(self) -> float:
        computes = max(1.0, self.sparse.compute.actual)
        return self.energy_pj / computes

    @property
    def actual_computes(self) -> float:
        return self.sparse.compute.actual

    def level_energy(self, level: str) -> float:
        return self.energy.component(level)

    def level_cycles(self, level: str) -> float:
        return self.latency.per_component.get(level, 0.0)

    def compression_rate(self, level: str, tensor: str) -> float:
        return self.sparse.at(level, tensor).compression_rate

    def summary(self) -> str:
        lines = [
            f"{self.design_name} / {self.workload_name}",
            f"  cycles: {self.cycles:.4g} (bottleneck: {self.latency.bottleneck},"
            f" utilization {self.latency.utilization:.1%})",
            f"  energy: {self.energy_pj:.6g} pJ  (EDP {self.edp:.6g})",
            "  computes: "
            f"actual {self.sparse.compute.actual:.4g}, "
            f"gated {self.sparse.compute.gated:.4g}, "
            f"skipped {self.sparse.compute.skipped:.4g}",
        ]
        for name, energy in sorted(
            self.energy.per_component.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"    {name}: {energy:.6g} pJ")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialization (schema v1)

    def to_dict(self, *, fields=None) -> dict:
        """Serialize to the versioned, JSON-compatible schema.

        ``fields`` (an iterable of top-level key names) projects the
        payload: only the named keys plus the ``schema``/``kind``
        envelope are emitted, and sub-dicts projected away are never
        built — a sweep client reading one scalar per candidate skips
        most of the serialization cost. The virtual ``"summary"``
        field (``cycles``/``energy_pj``/``edp``) exists only under
        projection. Projected payloads are partial and do not
        round-trip through :meth:`from_dict`; the default
        (``fields=None``) output is the full schema, unchanged.
        """
        builders = {
            "design": lambda: self.design_name,
            "workload": lambda: self.workload_name,
            "mapping": lambda: (
                None
                if self.dense.mapping is None
                else self.dense.mapping.to_spec()
            ),
            "dense": lambda: _dense_to_dict(self.dense),
            "sparse": lambda: _sparse_to_dict(self.sparse),
            "latency": lambda: _latency_to_dict(self.latency),
            "energy": lambda: _energy_to_dict(self.energy),
            "usage": lambda: _usage_to_list(self.usage),
        }
        data = {"schema": RESULT_SCHEMA_VERSION, "kind": "evaluation"}
        if fields is None:
            for key, build in builders.items():
                data[key] = build()
            return data
        keep = set(fields)
        if "summary" in keep:
            data["summary"] = {
                "cycles": self.cycles,
                "energy_pj": self.energy_pj,
                "edp": self.edp,
            }
        for key, build in builders.items():
            if key in keep:
                data[key] = build()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "EvaluationResult":
        """Rebuild a result from :meth:`to_dict` output.

        The reconstructed result reproduces every serialized number
        bit-exactly; the ``dense.workload`` / ``dense.arch`` input
        back-references (not part of the schema) come back ``None``.
        """
        def build() -> "EvaluationResult":
            mapping = (
                None
                if data["mapping"] is None
                else Mapping.from_spec(data["mapping"])
            )
            return cls(
                design_name=data["design"],
                workload_name=data["workload"],
                dense=_dense_from_dict(data["dense"], mapping),
                sparse=_sparse_from_dict(data["sparse"]),
                latency=_latency_from_dict(data["latency"]),
                energy=_energy_from_dict(data["energy"]),
                usage=_usage_from_list(data["usage"]),
            )

        return cls._rebuild(data, "evaluation", build)



@dataclass
class SearchResult(SerializableResult):
    """Outcome of one mapspace search: the winning evaluation (or
    ``None`` when no candidate within budget was valid) plus the search
    parameters that produced it. ``budget``/``seed`` are ``None`` when
    the search scanned explicit candidates, which bypass sampling.

    Results are self-describing: ``objective`` records the objective
    spec that produced ``best_score`` (a metric name, a weighted/multi
    spec dict, or a descriptive ``{"callable": ...}`` record for
    legacy callables — see :mod:`repro.search.objective`),
    ``strategy`` the scan that ran, ``best_index`` the winner's
    candidate-stream index, and ``frontier`` the Pareto frontier over
    the objective's axes (for scalar objectives, the single winning
    point). All of it rides the same schema-v1 envelope and
    round-trips bit-exactly."""

    design_name: str
    workload_name: str
    budget: int | None
    seed: int | None
    best: EvaluationResult | None
    objective: object = None
    strategy: str | None = None
    best_score: float | None = None
    best_index: int | None = None
    frontier: ParetoFrontier | None = None

    @property
    def found(self) -> bool:
        return self.best is not None

    def best_or_raise(self) -> EvaluationResult:
        """The winning evaluation, or :class:`MappingError` when the
        search found no valid mapping."""
        if self.best is None:
            scope = (
                "among the explicit candidates"
                if self.budget is None
                else f"within budget {self.budget}"
            )
            raise MappingError(
                f"no valid mapping found for {self.design_name!r} on "
                f"{self.workload_name!r} {scope}"
            )
        return self.best

    def to_dict(self) -> dict:
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "kind": "search",
            "design": self.design_name,
            "workload": self.workload_name,
            "budget": self.budget,
            "seed": self.seed,
            "objective": self.objective,
            "strategy": self.strategy,
            "best_score": self.best_score,
            "best_index": self.best_index,
            "best": None if self.best is None else self.best.to_dict(),
            "frontier": (
                None if self.frontier is None else self.frontier.to_dict()
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchResult":
        def build() -> "SearchResult":
            best = data["best"]
            frontier = data.get("frontier")
            return cls(
                design_name=data["design"],
                workload_name=data["workload"],
                budget=data["budget"],
                seed=data["seed"],
                best=(
                    None if best is None else EvaluationResult.from_dict(best)
                ),
                objective=data.get("objective"),
                strategy=data.get("strategy"),
                best_score=data.get("best_score"),
                best_index=data.get("best_index"),
                frontier=(
                    None
                    if frontier is None
                    else ParetoFrontier.from_dict(frontier)
                ),
            )

        return cls._rebuild(data, "search", build)



@dataclass
class SearchShardResult(SerializableResult):
    """One shard's contribution to a distributed mapspace search.

    Produced by :func:`repro.distributed.worker.run_shard`: the Pareto
    frontier over the shard's slice of the candidate stream (points
    carry *global* stream indices), the scan counters, and the
    authoritative end-of-shard state — the stream position and index
    counter reached plus the overflow-witness set held there — which
    downstream shards use to fast-forward their prefix replay.

    Unlike :class:`SearchResult`, frontier points here ship their full
    evaluations (``results``: frontier index → :class:`EvaluationResult`)
    so the coordinator can rebuild the winning result after merging;
    ``ParetoFrontier.to_dict`` deliberately drops results, so they ride
    in a parallel index-keyed table and are reattached on
    :meth:`from_dict`.
    """

    shard_id: int
    start: int
    stop: int
    position_end: int
    index_end: int
    evaluated: int
    withheld: int
    rejected: int
    frontier: ParetoFrontier
    witnesses: dict
    results: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "kind": "search-shard",
            "shard": self.shard_id,
            "start": self.start,
            "stop": self.stop,
            "position_end": self.position_end,
            "index_end": self.index_end,
            "evaluated": self.evaluated,
            "withheld": self.withheld,
            "rejected": self.rejected,
            "frontier": self.frontier.to_dict(),
            "witnesses": {
                level: [dict(w) for w in entries]
                for level, entries in self.witnesses.items()
            },
            "results": [
                [index, result.to_dict()]
                for index, result in sorted(self.results.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchShardResult":
        def build() -> "SearchShardResult":
            from dataclasses import replace as _replace

            results = {
                int(index): EvaluationResult.from_dict(entry)
                for index, entry in data["results"]
            }
            frontier = ParetoFrontier.from_dict(data["frontier"])
            frontier._points = [
                _replace(point, result=results.get(point.index))
                for point in frontier._points
            ]
            return cls(
                shard_id=data["shard"],
                start=data["start"],
                stop=data["stop"],
                position_end=data["position_end"],
                index_end=data["index_end"],
                evaluated=data["evaluated"],
                withheld=data["withheld"],
                rejected=data["rejected"],
                frontier=frontier,
                witnesses={
                    level: [dict(w) for w in entries]
                    for level, entries in data["witnesses"].items()
                },
                results=results,
            )

        return cls._rebuild(data, "search-shard", build)


@dataclass
class NetworkLayerResult:
    """One network layer's evaluation, with its repeat count."""

    layer_name: str
    repeat: int
    result: EvaluationResult


@dataclass
class NetworkResult(SerializableResult):
    """Per-layer results of a full-network evaluation (Sec 6.1).

    Totals weight each layer by its repeat count, matching the paper's
    whole-network methodology.
    """

    design_name: str
    layers: list[NetworkLayerResult]

    @property
    def total_cycles(self) -> float:
        return sum(l.repeat * l.result.cycles for l in self.layers)

    @property
    def total_energy_pj(self) -> float:
        return sum(l.repeat * l.result.energy_pj for l in self.layers)

    def layer(self, name: str) -> NetworkLayerResult:
        for entry in self.layers:
            if entry.layer_name == name:
                return entry
        raise KeyError(f"no layer {name!r} in this network result")

    def to_dict(self) -> dict:
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "kind": "network",
            "design": self.design_name,
            "layers": [
                {
                    "name": entry.layer_name,
                    "repeat": entry.repeat,
                    "result": entry.result.to_dict(),
                }
                for entry in self.layers
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NetworkResult":
        def build() -> "NetworkResult":
            return cls(
                design_name=data["design"],
                layers=[
                    NetworkLayerResult(
                        layer_name=entry["name"],
                        repeat=entry["repeat"],
                        result=EvaluationResult.from_dict(entry["result"]),
                    )
                    for entry in data["layers"]
                ],
            )

        return cls._rebuild(data, "network", build)


@dataclass
class FusedEinsumResult:
    """One einsum's evaluation inside a fused cascade."""

    einsum_name: str
    result: EvaluationResult


@dataclass
class FusedResult(SerializableResult):
    """Per-einsum results of a fused einsum-graph evaluation.

    ``einsums`` holds one entry per graph einsum, in graph order;
    ``shared`` attributes the intermediate tensors' traffic: one record
    per intermediate with its producer/consumer einsums, the words
    moved at the fusion level, and the words moved at the outermost
    (backing-store) level — zero when fused, the DRAM round trip when
    not.
    """

    design_name: str
    graph_name: str
    einsums: list[FusedEinsumResult]
    fuse_at: str | None = None
    shared: list[dict] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return sum(e.result.cycles for e in self.einsums)

    @property
    def total_energy_pj(self) -> float:
        return sum(e.result.energy_pj for e in self.einsums)

    def einsum(self, name: str) -> FusedEinsumResult:
        for entry in self.einsums:
            if entry.einsum_name == name:
                return entry
        raise KeyError(f"no einsum {name!r} in this fused result")

    def shared_tensor(self, tensor: str) -> dict:
        for entry in self.shared:
            if entry.get("tensor") == tensor:
                return entry
        raise KeyError(f"no shared tensor {tensor!r} in this fused result")

    @property
    def intermediate_backing_words(self) -> float:
        """Total words the intermediates move at the outermost storage
        level (the fused-vs-unfused benchmark's headline metric)."""
        return sum(
            sum(entry.get("backing_words", {}).values())
            for entry in self.shared
        )

    def summary(self) -> str:
        fusion = (
            "unfused (degenerate)"
            if self.fuse_at is None
            else f"fused at {self.fuse_at}"
        )
        lines = [
            f"{self.design_name} / {self.graph_name} ({fusion})",
            f"  cycles: {self.total_cycles:.4g}",
            f"  energy: {self.total_energy_pj:.6g} pJ",
        ]
        for entry in self.einsums:
            lines.append(
                f"  {entry.einsum_name}: cycles {entry.result.cycles:.4g}, "
                f"energy {entry.result.energy_pj:.6g} pJ"
            )
        for entry in self.shared:
            backing = sum(entry.get("backing_words", {}).values())
            fusion_words = sum(entry.get("fusion_words", {}).values())
            lines.append(
                f"  intermediate {entry.get('tensor')}: "
                f"{entry.get('producer')} -> "
                f"{', '.join(entry.get('consumers', []))}; "
                f"backing {backing:.4g} words, "
                f"fusion-level {fusion_words:.4g} words"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "kind": "fused",
            "design": self.design_name,
            "graph": self.graph_name,
            "fuse_at": self.fuse_at,
            "einsums": [
                {
                    "name": entry.einsum_name,
                    "result": entry.result.to_dict(),
                }
                for entry in self.einsums
            ],
            "shared": [dict(entry) for entry in self.shared],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FusedResult":
        def build() -> "FusedResult":
            # ``fuse_at`` and ``shared`` are read leniently: a minimal
            # (or older) schema-v1 envelope carrying only the per-einsum
            # results rebuilds with the degenerate defaults instead of
            # raising KeyError.
            return cls(
                design_name=data["design"],
                graph_name=data["graph"],
                einsums=[
                    FusedEinsumResult(
                        einsum_name=entry["name"],
                        result=EvaluationResult.from_dict(entry["result"]),
                    )
                    for entry in data["einsums"]
                ],
                fuse_at=data.get("fuse_at"),
                shared=[dict(entry) for entry in data.get("shared") or []],
            )

        return cls._rebuild(data, "fused", build)

