"""Top-level Sparseloop evaluation engine."""

from repro.model.engine import Design, Evaluator
from repro.model.result import EvaluationResult

__all__ = ["Design", "Evaluator", "EvaluationResult"]
