"""Step three: micro-architectural modeling (Sec 5.4)."""

from repro.micro.energy import EnergyResult, compute_energy
from repro.micro.latency import LatencyResult, compute_latency
from repro.micro.validity import check_validity

__all__ = [
    "check_validity",
    "compute_latency",
    "LatencyResult",
    "compute_energy",
    "EnergyResult",
]
