"""Energy model (Sec 5.4): fine-grained action counts x Accelergy costs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accelergy.backend import Accelergy
from repro.accelergy.library import build_component
from repro.arch.spec import Architecture
from repro.sparse.traffic import ActionBreakdown, SparseTraffic

#: Name of the energy stage in the engine's
#: :class:`~repro.common.cache.AnalysisCache`. An :class:`EnergyResult`
#: is a pure function of the architecture (which fixes the Accelergy
#: component costs) and the sparse analysis, both embedded in the
#: sparse content key, so the engine memoises whole results — a hit
#: also skips constructing the Accelergy backend.
ENERGY_STAGE = "energy"


@dataclass
class EnergyResult:
    """Total and per-component energy in pJ."""

    total_pj: float
    per_component: dict[str, float] = field(default_factory=dict)
    per_component_breakdown: dict[str, dict[str, float]] = field(
        default_factory=dict
    )

    def component(self, name: str) -> float:
        return self.per_component.get(name, 0.0)


def _breakdown_energy(breakdown: ActionBreakdown, energy_actual: float, gated_fraction: float) -> float:
    return (
        breakdown.actual * energy_actual
        + breakdown.gated * energy_actual * gated_fraction
    )


def compute_energy(
    arch: Architecture,
    sparse: SparseTraffic,
    backend: Accelergy | None = None,
) -> EnergyResult:
    """Total dynamic energy: actual actions at full cost, gated actions
    at the component's idle fraction, skipped actions free."""
    backend = backend or Accelergy(arch)
    per_component: dict[str, float] = {}
    detail: dict[str, dict[str, float]] = {}
    check_pj = build_component("intersection").energy_per_action("check")

    for level in arch.levels:
        spec = backend.storage(level.name)
        level_total = 0.0
        level_detail: dict[str, float] = {}
        for actions in sparse.level_actions(level.name):
            parts = {
                "intersection": actions.intersection_checks * check_pj,
                "read": _breakdown_energy(
                    actions.data_reads, spec.read, spec.gated_fraction
                ),
                "write": _breakdown_energy(
                    actions.data_writes, spec.write, spec.gated_fraction
                ),
                "metadata_read": _breakdown_energy(
                    actions.metadata_reads, spec.metadata_read, spec.gated_fraction
                ),
                "metadata_write": _breakdown_energy(
                    actions.metadata_writes,
                    spec.metadata_write,
                    spec.gated_fraction,
                ),
            }
            for key, value in parts.items():
                level_detail[f"{actions.tensor}:{key}"] = value
                level_total += value
        per_component[level.name] = level_total
        detail[level.name] = level_detail

    compute_spec = backend.compute
    compute_energy_pj = _breakdown_energy(
        sparse.compute, compute_spec.op, compute_spec.gated_fraction
    )
    per_component[arch.compute.name] = compute_energy_pj
    detail[arch.compute.name] = {"op": compute_energy_pj}

    return EnergyResult(
        total_pj=sum(per_component.values()),
        per_component=per_component,
        per_component_breakdown=detail,
    )
