"""Processing speed model (Sec 5.4).

Cycles are spent for actual and gated storage accesses and computes;
skipped operations cost nothing. Each component processes its cycled
operations at its bandwidth; the slowest component bounds the design
(bandwidth throttling), which is how the paper diagnoses STC-flexible's
SMEM bottleneck (Sec 7.1.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.spec import Architecture
from repro.dataflow.nest_analysis import DenseTraffic
from repro.sparse.traffic import SparseTraffic

#: Name of the latency stage in the engine's
#: :class:`~repro.common.cache.AnalysisCache`. A :class:`LatencyResult`
#: is a pure function of the architecture, the dense analysis, and the
#: sparse analysis — all embedded in the sparse content key — so the
#: engine memoises whole results under it.
LATENCY_STAGE = "latency"


@dataclass
class LatencyResult:
    """Cycle counts per component and the overall bottleneck."""

    cycles: float
    bottleneck: str
    per_component: dict[str, float] = field(default_factory=dict)
    #: Words/cycle each storage level must sustain (per instance) to
    #: keep the compute units busy at the ideal rate (Fig. 16's metric).
    bandwidth_demand: dict[str, float] = field(default_factory=dict)
    compute_cycles: float = 0.0

    @property
    def utilization(self) -> float:
        """Compute utilization = ideal compute cycles / achieved."""
        if self.cycles <= 0:
            return 1.0
        return self.compute_cycles / self.cycles


def _level_words(actions, level) -> tuple[float, float]:
    """Port traffic (read_words, write_words) in data-word equivalents.

    Only *actual* accesses move words through the port; a gated access
    idles the unit for the cycle (the cycle itself is accounted by the
    lock-stepped compute), and skipped accesses cost nothing. Metadata
    occupies the port only when the level streams it in-band.
    """
    reads = actions.data_reads.actual
    writes = actions.data_writes.actual
    if level.metadata_on_data_port:
        meta_scale = level.metadata_word_bits / level.word_bits
        reads += actions.metadata_reads.actual * meta_scale
        writes += actions.metadata_writes.actual * meta_scale
    return reads, writes


def compute_latency(
    arch: Architecture,
    dense: DenseTraffic,
    sparse: SparseTraffic,
) -> LatencyResult:
    """Derive processing cycles with bandwidth throttling.

    Compute cycles = (actual + gated computes) / utilized compute
    units. Each storage level's cycles = its cycled words / bandwidth,
    evaluated per instance. The overall latency is the maximum.
    """
    per_component: dict[str, float] = {}
    demand: dict[str, float] = {}

    compute_cycles = sparse.compute.cycled / dense.utilized_compute_instances
    per_component[arch.compute.name] = compute_cycles

    for level in arch.levels:
        reads = writes = 0.0
        instances = 1
        for actions in sparse.level_actions(level.name):
            r, w = _level_words(actions, level)
            reads += r
            writes += w
            record = dense.traffic.get((level.name, actions.tensor))
            if record is not None:
                instances = max(instances, record.instances)
        # Read and write streams overlap on dual-ported storage; the
        # slower stream bounds the level.
        read_cycles = write_cycles = 0.0
        if level.read_bandwidth is not None:
            read_cycles = reads / instances / level.read_bandwidth
        if level.write_bandwidth is not None:
            write_cycles = writes / instances / level.write_bandwidth
        per_component[level.name] = max(read_cycles, write_cycles)
        if compute_cycles > 0:
            demand[level.name] = (reads + writes) / instances / compute_cycles

    bottleneck = max(per_component, key=per_component.get)
    cycles = per_component[bottleneck]
    if cycles <= 0.0:
        # Degenerate mapping (no work); report a single cycle.
        cycles = 1.0
    return LatencyResult(
        cycles=cycles,
        bottleneck=bottleneck,
        per_component=per_component,
        bandwidth_demand=demand,
        compute_cycles=compute_cycles,
    )
