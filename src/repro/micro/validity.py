"""Mapping validity: tiles (data + format overhead) must fit (Sec 5.4).

A mapping is valid only if the largest tiles — derived from the
statistical tile densities and format overheads — meet the capacity of
their storage levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.spec import Architecture
from repro.common.errors import ValidationError
from repro.sparse.traffic import SparseTraffic

#: Name of the validity stage in the engine's
#: :class:`~repro.common.cache.AnalysisCache`. Usage reports are a pure
#: function of the sparse analysis and the architecture (both embedded
#: in the sparse content key), so the engine memoises them — computed
#: with ``raise_on_invalid=False`` so hits can serve the raising and
#: non-raising callers alike (see :func:`overflow_error`).
VALIDITY_STAGE = "validity"


@dataclass
class LevelUsage:
    level: str
    capacity_words: float | None
    used_words: float
    per_tensor: dict[str, float] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        if self.capacity_words is None or self.capacity_words == 0:
            return 0.0
        return self.used_words / self.capacity_words

    @property
    def fits(self) -> bool:
        return self.capacity_words is None or self.used_words <= self.capacity_words


def overflow_error(report: LevelUsage) -> ValidationError:
    """The :class:`ValidationError` for one overflowing level —
    identical to what :func:`check_validity` raises, so callers
    replaying a cached usage report reproduce the uncached error."""
    return ValidationError(
        f"level {report.level!r} overflows: needs "
        f"{report.used_words:.1f} words of {report.capacity_words:g} "
        f"({', '.join(f'{t}={w:.1f}' for t, w in report.per_tensor.items())})"
    )


def check_validity(
    arch: Architecture,
    sparse: SparseTraffic,
    raise_on_invalid: bool = True,
) -> dict[str, LevelUsage]:
    """Check per-level worst-case occupancy against capacity.

    Returns per-level usage reports; raises :class:`ValidationError`
    for the first overflowing level unless ``raise_on_invalid`` is
    False.
    """
    usage: dict[str, LevelUsage] = {}
    for level in arch.levels:
        report = LevelUsage(
            level=level.name,
            capacity_words=level.capacity_words,
            used_words=0.0,
        )
        for actions in sparse.level_actions(level.name):
            report.per_tensor[actions.tensor] = actions.worst_occupancy_words
            report.used_words += actions.worst_occupancy_words
        usage[level.name] = report
        if raise_on_invalid and not report.fits:
            raise overflow_error(report)
    return usage
