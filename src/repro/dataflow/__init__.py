"""Step one: dataflow modeling — dense traffic from a mapping (Sec 5.2)."""

from repro.dataflow.nest_analysis import DenseTraffic, TensorTraffic, analyze_dataflow

__all__ = ["analyze_dataflow", "DenseTraffic", "TensorTraffic"]
