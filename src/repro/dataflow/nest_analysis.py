"""Dense loop-nest analysis: the Timeloop-style dataflow modeling step.

Given a workload Einsum, an architecture, and a mapping, this module
derives the *dense traffic*: uncompressed data movement per (storage
level, tensor) and the dense compute count (Sec 5.2). The sparse
modeling step later filters this traffic.

The analysis follows the classic stationarity model:

* The tile resident at level *L* for tensor *t* is the footprint of all
  loops at levels ≤ *L* (inner levels), projected through *t*'s rank
  projections.
* The tile is refetched once per iteration of the temporal loops
  outside *L*, counted from the outermost loop down to the innermost
  loop *relevant* to *t* — irrelevant loops inside that point leave the
  tile stationary.
* Spatial loops fan data out to child instances: loops over dims
  irrelevant to *t* multicast (one parent read feeds many children) or,
  for the output tensor, spatially reduce (drains merge in an adder
  tree).
* Output tensors additionally model drain traffic (partial tiles
  evicted upward at the end of each residency episode), refill traffic
  (partials re-fetched when reduction loops outside the level revisit a
  tile), and read-modify-write accumulation reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.spec import Architecture
from repro.common.errors import MappingError
from repro.common.util import prod
from repro.mapping.mapping import Loop, Mapping
from repro.workload.einsum import EinsumSpec, TensorRef
from repro.workload.spec import Workload


@dataclass
class TensorTraffic:
    """Dense traffic of one tensor at one storage level.

    All counts are totals across instances for the whole workload
    execution, in data *elements* (words). ``reads``/``writes`` are the
    grand totals; the remaining fields attribute subsets of them:
    ``fills`` (writes arriving from the parent), ``drains`` (output
    reads leaving to the parent), ``rmw_reads`` (accumulation
    read-modify-write reads), ``refill_writes`` (partial-sum tiles
    re-entering from the parent).
    """

    tensor: str
    level: str
    level_index: int
    tile_size: int
    tile_dim_extents: dict[str, int]
    tile_rank_extents: tuple[int, ...]
    instances: int
    episodes: float
    distinct: float
    reads: float = 0.0
    writes: float = 0.0
    fills: float = 0.0
    drains: float = 0.0
    rmw_reads: float = 0.0
    refill_writes: float = 0.0
    compute_feed_reads: float = 0.0
    update_writes: float = 0.0

    @property
    def total_accesses(self) -> float:
        return self.reads + self.writes

    @property
    def transfer_reads(self) -> float:
        """Reads serving bulk tile transfers (not compute-feed/RMW)."""
        return self.reads - self.compute_feed_reads - self.rmw_reads


@dataclass
class DenseTraffic:
    """Full output of the dataflow modeling step."""

    workload: Workload
    arch: Architecture
    mapping: Mapping
    traffic: dict[tuple[str, str], TensorTraffic] = field(default_factory=dict)
    computes: int = 0
    utilized_compute_instances: int = 1
    #: Per tensor: dims (and extents) the operand latch holds the datum
    #: across — the innermost run of loops irrelevant to the tensor.
    #: This is the granularity at which compute-feed reads pair with
    #: other tensors' data (the leader-tile source, Fig. 10).
    latch_extents: dict[str, dict[str, int]] = field(default_factory=dict)
    #: The loop-structure view used by the sparse modeling step to
    #: derive leader tiles; populated by :func:`analyze_dataflow`.
    nest: object = field(default=None, repr=False)

    def at(self, level: str, tensor: str) -> TensorTraffic:
        try:
            return self.traffic[(level, tensor)]
        except KeyError:
            raise KeyError(
                f"no traffic recorded for tensor {tensor!r} at level "
                f"{level!r}; kept levels: "
                f"{[k for k in self.traffic if k[1] == tensor]}"
            ) from None

    def levels_keeping(self, tensor: str) -> list[str]:
        return [lvl for (lvl, t) in self.traffic if t == tensor]

    @property
    def per_instance_computes(self) -> float:
        return self.computes / self.utilized_compute_instances


def dense_analysis_key(
    workload: Workload, arch: Architecture, mapping: Mapping
) -> tuple:
    """Content address of one dense dataflow analysis.

    Dense traffic depends only on the einsum's iteration space, the
    architecture, and the mapping — *not* on tensor densities — so the
    key deliberately omits the workload's density models. Two calls with
    equal keys produce numerically identical :class:`DenseTraffic`
    (modulo the ``workload`` back-reference), which is what lets the
    engine reuse one analysis across SAF variants of the same mapping.
    """
    return (
        workload.einsum.cache_key(),
        arch.cache_key(),
        mapping.cache_key(),
    )


class _NestView:
    """Precomputed per-level loop structure shared by all tensors."""

    def __init__(self, einsum: EinsumSpec, arch: Architecture, mapping: Mapping):
        self.einsum = einsum
        self.arch = arch
        self.mapping = mapping
        # Storage levels indexed innermost = 0 ... outermost = N-1.
        self.num_levels = len(arch.levels)
        # mapping.levels is outermost-first; re-index.
        self.level_maps = list(reversed(mapping.levels))
        self.level_names = [lm.level for lm in self.level_maps]
        # Per level (inner-indexed): temporal loops (outer->inner), spatial loops.
        self.temporal: list[list[Loop]] = [
            list(lm.temporal) for lm in self.level_maps
        ]
        self.spatial: list[list[Loop]] = [
            list(lm.spatial) for lm in self.level_maps
        ]

    def tile_dim_extents(self, level_index: int) -> dict[str, int]:
        """Per-dimension footprint extents of the tile at ``level_index``.

        The tile covers all loops at levels <= level_index (temporal and
        spatial).
        """
        extents = {dim: 1 for dim in self.einsum.dims}
        for j in range(level_index + 1):
            for loop in self.temporal[j] + self.spatial[j]:
                extents[loop.dim] *= loop.bound
        return extents

    def instances_used(self, level_index: int) -> int:
        """Utilized instances of ``level_index`` = spatial fanout above it."""
        fanout = 1
        for j in range(level_index + 1, self.num_levels):
            for loop in self.spatial[j]:
                fanout *= loop.bound
        return fanout

    def compute_instances_used(self) -> int:
        fanout = 1
        for j in range(self.num_levels):
            for loop in self.spatial[j]:
                fanout *= loop.bound
        return fanout

    def outside_temporal(self, level_index: int) -> list[Loop]:
        """Temporal loops outside ``level_index``, outermost first."""
        loops: list[Loop] = []
        for j in range(self.num_levels - 1, level_index, -1):
            loops.extend(self.temporal[j])
        return loops

    def boundary_spatial(self, parent_index: int, child_index: int) -> list[Loop]:
        """Spatial loops between a parent level and a child level.

        These are the spatial loops at levels (child, parent], i.e. the
        fanout an access crosses travelling from parent to child.
        ``child_index`` may be -1 for the compute level.
        """
        loops: list[Loop] = []
        for j in range(child_index + 1, parent_index + 1):
            loops.extend(self.spatial[j])
        return loops

    def episode_span_extents(
        self, child_index: int, follower_dims: frozenset[str]
    ) -> dict[str, int]:
        """Per-dim extents of the iteration space one child-tile
        residency episode spans.

        A tile filled into ``child_index`` stays resident while loops
        inside the innermost follower-relevant outside loop iterate; the
        span covers the child tile itself plus those stationary loops.
        This is the granularity at which a transferred tile pairs with
        other tensors' data (leader tiles for transfer-level SAFs).
        """
        extents = dict(self.tile_dim_extents(child_index))
        outside = self.outside_temporal(child_index)
        innermost_relevant = -1
        for idx, loop in enumerate(outside):
            if loop.dim in follower_dims:
                innermost_relevant = idx
        for loop in outside[innermost_relevant + 1 :]:
            extents[loop.dim] = extents.get(loop.dim, 1) * loop.bound
        return extents

    def latch_extents(self, relevant_dims: frozenset[str]) -> dict[str, int]:
        """Operand-latch reuse span for a tensor (Fig. 10 semantics).

        Scanning the temporal nest from the innermost loop outward, the
        datum delivered to the compute unit stays latched while loops
        irrelevant to the tensor iterate. Returns the per-dim extents of
        that innermost irrelevant run (empty dict = no latch reuse).
        """
        extents: dict[str, int] = {}
        for j in range(self.num_levels):
            for loop in reversed(self.temporal[j]):
                if loop.dim in relevant_dims:
                    return extents
                extents[loop.dim] = extents.get(loop.dim, 1) * loop.bound
        return extents


def _episodes_and_distinct(
    outside: list[Loop], relevant_dims: frozenset[str]
) -> tuple[float, float]:
    """Stationarity analysis over the outside temporal loops.

    ``episodes`` multiplies bounds from the outermost loop down to the
    innermost relevant loop; ``distinct`` multiplies relevant loop
    bounds only.
    """
    episodes = 1.0
    distinct = 1.0
    # Find index of innermost relevant loop.
    innermost_relevant = -1
    for idx, loop in enumerate(outside):
        if loop.dim in relevant_dims:
            innermost_relevant = idx
            distinct *= loop.bound
    for idx, loop in enumerate(outside):
        if idx > innermost_relevant:
            break
        episodes *= loop.bound
    return episodes, distinct


def _multicast_factor(
    boundary: list[Loop],
    relevant_dims: frozenset[str],
    enabled: bool,
) -> float:
    """Fanout over which one parent access serves many children."""
    if not enabled:
        return 1.0
    factor = 1.0
    for loop in boundary:
        if loop.dim not in relevant_dims:
            factor *= loop.bound
    return factor


def analyze_dataflow(
    workload: Workload, arch: Architecture, mapping: Mapping
) -> DenseTraffic:
    """Run the dense dataflow modeling step.

    Returns per-(level, tensor) dense traffic and the dense compute
    count. Raises :class:`MappingError` if the mapping is structurally
    invalid.
    """
    einsum = workload.einsum
    mapping.validate(einsum, arch)
    nest = _NestView(einsum, arch, mapping)

    result = DenseTraffic(workload=workload, arch=arch, mapping=mapping)
    result.nest = nest
    result.computes = einsum.total_operations
    result.utilized_compute_instances = nest.compute_instances_used()

    for tensor in einsum.tensors:
        result.latch_extents[tensor.name] = nest.latch_extents(tensor.dims)
        chain = _keep_chain_indices(nest, tensor.name)
        if not chain:
            raise MappingError(
                f"tensor {tensor.name!r} kept at no level"
            )  # pragma: no cover - validate() already rejects this
        records = {
            idx: _make_record(nest, tensor, idx) for idx in chain
        }
        if tensor.is_output:
            _analyze_output(nest, tensor, chain, records)
        else:
            _analyze_operand(nest, tensor, chain, records)
        for idx, record in records.items():
            result.traffic[(record.level, tensor.name)] = record
    return result


def _keep_chain_indices(nest: _NestView, tensor: str) -> list[int]:
    """Indices (inner-first ordering) of levels keeping ``tensor``,
    returned outermost-first."""
    chain = [
        idx
        for idx in range(nest.num_levels - 1, -1, -1)
        if nest.level_maps[idx].keeps(tensor)
    ]
    return chain


def _make_record(
    nest: _NestView, tensor: TensorRef, level_index: int
) -> TensorTraffic:
    extents = nest.tile_dim_extents(level_index)
    outside = nest.outside_temporal(level_index)
    episodes, distinct = _episodes_and_distinct(outside, tensor.dims)
    return TensorTraffic(
        tensor=tensor.name,
        level=nest.level_names[level_index],
        level_index=level_index,
        tile_size=tensor.tile_size(extents),
        tile_dim_extents=extents,
        tile_rank_extents=tensor.tile_rank_extents(extents),
        instances=nest.instances_used(level_index),
        episodes=episodes,
        distinct=distinct,
    )


def _analyze_operand(
    nest: _NestView,
    tensor: TensorRef,
    chain: list[int],
    records: dict[int, TensorTraffic],
) -> None:
    """Traffic for an input tensor along its keep chain."""
    computes = nest.einsum.total_operations
    innermost = chain[-1]
    # Compute consumption: one element per compute, amortised by
    # multicast across the spatial fanout and by the operand latch
    # (the datum stays at the compute unit while innermost loops
    # irrelevant to the tensor iterate).
    boundary = nest.boundary_spatial(innermost, -1)
    multicast = _multicast_factor(
        boundary,
        tensor.dims,
        nest.arch.level(nest.level_names[innermost]).multicast,
    )
    latch = prod(nest.latch_extents(tensor.dims).values())
    feed = computes / multicast / latch
    records[innermost].reads += feed
    records[innermost].compute_feed_reads += feed

    # Parent -> child fills along the chain.
    for parent_idx, child_idx in zip(chain, chain[1:]):
        child = records[child_idx]
        fills = child.tile_size * child.instances * child.episodes
        child.writes += fills
        child.fills += fills
        boundary = nest.boundary_spatial(parent_idx, child_idx)
        multicast = _multicast_factor(
            boundary,
            tensor.dims,
            nest.arch.level(nest.level_names[parent_idx]).multicast,
        )
        records[parent_idx].reads += fills / multicast


def _analyze_output(
    nest: _NestView,
    tensor: TensorRef,
    chain: list[int],
    records: dict[int, TensorTraffic],
) -> None:
    """Traffic for the output tensor: updates, drains, refills, RMW."""
    computes = nest.einsum.total_operations
    innermost = chain[-1]
    outermost = chain[0]

    # Updates arriving from compute, merged across spatial reduction.
    # Accumulation in the resident tile is read-modify-write: arrivals
    # beyond the first per resident element (per episode) cost a read.
    boundary = nest.boundary_spatial(innermost, -1)
    reduction = _multicast_factor(
        boundary,
        tensor.dims,
        nest.arch.level(nest.level_names[innermost]).spatial_reduction,
    )
    inner = records[innermost]
    latch = prod(nest.latch_extents(tensor.dims).values())
    incoming = computes / reduction / latch
    inner.writes += incoming
    inner.update_writes += incoming
    # Only the first write of each element per *distinct* tile is free;
    # revisited (refilled) episodes accumulate onto restored partials,
    # so their first updates read-modify-write too.
    first_writes = inner.tile_size * inner.instances * inner.distinct
    rmw = max(0.0, incoming - first_writes)
    inner.rmw_reads += rmw
    inner.reads += rmw

    # Child -> parent drains and parent -> child refills along the chain.
    # Policy: a level that revisits an output tile refills the partials
    # from its parent, so every drain carries a complete version and the
    # parent overwrites (no RMW merge at the parent).
    for parent_idx, child_idx in zip(chain, chain[1:]):
        parent = records[parent_idx]
        child = records[child_idx]
        level = nest.arch.level(nest.level_names[parent_idx])
        boundary = nest.boundary_spatial(parent_idx, child_idx)
        reduction = _multicast_factor(
            boundary, tensor.dims, level.spatial_reduction
        )

        drains = child.tile_size * child.instances * child.episodes
        child.reads += drains
        child.drains += drains
        parent.writes += drains / reduction

        refills = (
            child.tile_size * child.instances * (child.episodes - child.distinct)
        )
        if refills > 0:
            child.writes += refills
            child.refill_writes += refills
            parent.reads += refills / reduction

    # The outermost keeping level never drains or refills further.
    assert records[outermost].drains == 0.0
