"""Dense loop-nest analysis: the Timeloop-style dataflow modeling step.

Given a workload Einsum, an architecture, and a mapping, this module
derives the *dense traffic*: uncompressed data movement per (storage
level, tensor) and the dense compute count (Sec 5.2). The sparse
modeling step later filters this traffic.

The analysis follows the classic stationarity model:

* The tile resident at level *L* for tensor *t* is the footprint of all
  loops at levels ≤ *L* (inner levels), projected through *t*'s rank
  projections.
* The tile is refetched once per iteration of the temporal loops
  outside *L*, counted from the outermost loop down to the innermost
  loop *relevant* to *t* — irrelevant loops inside that point leave the
  tile stationary.
* Spatial loops fan data out to child instances: loops over dims
  irrelevant to *t* multicast (one parent read feeds many children) or,
  for the output tensor, spatially reduce (drains merge in an adder
  tree).
* Output tensors additionally model drain traffic (partial tiles
  evicted upward at the end of each residency episode), refill traffic
  (partials re-fetched when reduction loops outside the level revisit a
  tile), and read-modify-write accumulation reads.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.arch.spec import Architecture
from repro.common.cache import CachedHashKey
from repro.common.errors import MappingError
from repro.common.util import prod
from repro.mapping.mapping import Loop, Mapping
from repro.workload.einsum import EinsumSpec, TensorRef
from repro.workload.spec import Workload

#: Default backend for :func:`analyze_dataflow_batch`. Setting the
#: ``REPRO_SCALAR_DENSE`` environment variable to a truthy value forces
#: the scalar per-candidate oracle process-wide (mirroring
#: ``REPRO_SCALAR_SPARSE`` for the sparse stage); both backends are
#: bit-identical.
DENSE_VECTORIZED_DEFAULT = os.environ.get(
    "REPRO_SCALAR_DENSE", ""
).lower() in ("", "0", "false", "no", "off")


@dataclass
class TensorTraffic:
    """Dense traffic of one tensor at one storage level.

    All counts are totals across instances for the whole workload
    execution, in data *elements* (words). ``reads``/``writes`` are the
    grand totals; the remaining fields attribute subsets of them:
    ``fills`` (writes arriving from the parent), ``drains`` (output
    reads leaving to the parent), ``rmw_reads`` (accumulation
    read-modify-write reads), ``refill_writes`` (partial-sum tiles
    re-entering from the parent).
    """

    tensor: str
    level: str
    level_index: int
    tile_size: int
    tile_dim_extents: dict[str, int]
    tile_rank_extents: tuple[int, ...]
    instances: int
    episodes: float
    distinct: float
    reads: float = 0.0
    writes: float = 0.0
    fills: float = 0.0
    drains: float = 0.0
    rmw_reads: float = 0.0
    refill_writes: float = 0.0
    compute_feed_reads: float = 0.0
    update_writes: float = 0.0

    @property
    def total_accesses(self) -> float:
        return self.reads + self.writes

    @property
    def transfer_reads(self) -> float:
        """Reads serving bulk tile transfers (not compute-feed/RMW)."""
        return self.reads - self.compute_feed_reads - self.rmw_reads


@dataclass
class DenseTraffic:
    """Full output of the dataflow modeling step."""

    workload: Workload
    arch: Architecture
    mapping: Mapping
    traffic: dict[tuple[str, str], TensorTraffic] = field(default_factory=dict)
    computes: int = 0
    utilized_compute_instances: int = 1
    #: Per tensor: dims (and extents) the operand latch holds the datum
    #: across — the innermost run of loops irrelevant to the tensor.
    #: This is the granularity at which compute-feed reads pair with
    #: other tensors' data (the leader-tile source, Fig. 10).
    latch_extents: dict[str, dict[str, int]] = field(default_factory=dict)
    #: The loop-structure view used by the sparse modeling step to
    #: derive leader tiles; populated by :func:`analyze_dataflow`.
    #: Excluded from equality: it is a derived view of (einsum, arch,
    #: mapping), which are already compared, and carries no state of
    #: its own — two analyses of the same mapping build distinct but
    #: interchangeable views.
    nest: object = field(default=None, repr=False, compare=False)

    def at(self, level: str, tensor: str) -> TensorTraffic:
        try:
            return self.traffic[(level, tensor)]
        except KeyError:
            raise KeyError(
                f"no traffic recorded for tensor {tensor!r} at level "
                f"{level!r}; kept levels: "
                f"{[k for k in self.traffic if k[1] == tensor]}"
            ) from None

    def levels_keeping(self, tensor: str) -> list[str]:
        return [lvl for (lvl, t) in self.traffic if t == tensor]

    @property
    def per_instance_computes(self) -> float:
        return self.computes / self.utilized_compute_instances


def dense_analysis_key(
    workload: Workload, arch: Architecture, mapping: Mapping
) -> tuple:
    """Content address of one dense dataflow analysis.

    Dense traffic depends only on the einsum's iteration space, the
    architecture, and the mapping — *not* on tensor densities — so the
    key deliberately omits the workload's density models. Two calls with
    equal keys produce numerically identical :class:`DenseTraffic`
    (modulo the ``workload`` back-reference), which is what lets the
    engine reuse one analysis across SAF variants of the same mapping.

    The einsum and architecture components are hash-memoising wrappers
    (:class:`~repro.common.cache.CachedHashKey`), memoised on the spec
    objects: a mapspace search keys hundreds of candidates against the
    same einsum and architecture, and only the mapping component's hash
    is new work per candidate.
    """
    einsum = workload.einsum
    einsum_key = getattr(einsum, "_hashed_cache_key", None)
    if einsum_key is None:
        einsum_key = CachedHashKey(einsum.cache_key())
        einsum._hashed_cache_key = einsum_key
    arch_key = getattr(arch, "_hashed_cache_key", None)
    if arch_key is None:
        arch_key = CachedHashKey(arch.cache_key())
        arch._hashed_cache_key = arch_key
    return (einsum_key, arch_key, mapping.cache_key())


class _NestView:
    """Precomputed per-level loop structure shared by all tensors."""

    def __init__(self, einsum: EinsumSpec, arch: Architecture, mapping: Mapping):
        self.einsum = einsum
        self.arch = arch
        self.mapping = mapping
        # Storage levels indexed innermost = 0 ... outermost = N-1.
        self.num_levels = len(arch.levels)
        # mapping.levels is outermost-first; re-index.
        self.level_maps = list(reversed(mapping.levels))
        self.level_names = [lm.level for lm in self.level_maps]
        # Per level (inner-indexed): temporal loops (outer->inner), spatial loops.
        self.temporal: list[list[Loop]] = [
            list(lm.temporal) for lm in self.level_maps
        ]
        self.spatial: list[list[Loop]] = [
            list(lm.spatial) for lm in self.level_maps
        ]

    def tile_dim_extents(self, level_index: int) -> dict[str, int]:
        """Per-dimension footprint extents of the tile at ``level_index``.

        The tile covers all loops at levels <= level_index (temporal and
        spatial).
        """
        extents = {dim: 1 for dim in self.einsum.dims}
        for j in range(level_index + 1):
            for loop in self.temporal[j] + self.spatial[j]:
                extents[loop.dim] *= loop.bound
        return extents

    def instances_used(self, level_index: int) -> int:
        """Utilized instances of ``level_index`` = spatial fanout above it."""
        fanout = 1
        for j in range(level_index + 1, self.num_levels):
            for loop in self.spatial[j]:
                fanout *= loop.bound
        return fanout

    def compute_instances_used(self) -> int:
        fanout = 1
        for j in range(self.num_levels):
            for loop in self.spatial[j]:
                fanout *= loop.bound
        return fanout

    def outside_temporal(self, level_index: int) -> list[Loop]:
        """Temporal loops outside ``level_index``, outermost first."""
        loops: list[Loop] = []
        for j in range(self.num_levels - 1, level_index, -1):
            loops.extend(self.temporal[j])
        return loops

    def boundary_spatial(self, parent_index: int, child_index: int) -> list[Loop]:
        """Spatial loops between a parent level and a child level.

        These are the spatial loops at levels (child, parent], i.e. the
        fanout an access crosses travelling from parent to child.
        ``child_index`` may be -1 for the compute level.
        """
        loops: list[Loop] = []
        for j in range(child_index + 1, parent_index + 1):
            loops.extend(self.spatial[j])
        return loops

    def episode_span_extents(
        self, child_index: int, follower_dims: frozenset[str]
    ) -> dict[str, int]:
        """Per-dim extents of the iteration space one child-tile
        residency episode spans.

        A tile filled into ``child_index`` stays resident while loops
        inside the innermost follower-relevant outside loop iterate; the
        span covers the child tile itself plus those stationary loops.
        This is the granularity at which a transferred tile pairs with
        other tensors' data (leader tiles for transfer-level SAFs).
        """
        extents = dict(self.tile_dim_extents(child_index))
        outside = self.outside_temporal(child_index)
        innermost_relevant = -1
        for idx, loop in enumerate(outside):
            if loop.dim in follower_dims:
                innermost_relevant = idx
        for loop in outside[innermost_relevant + 1 :]:
            extents[loop.dim] = extents.get(loop.dim, 1) * loop.bound
        return extents

    def latch_extents(self, relevant_dims: frozenset[str]) -> dict[str, int]:
        """Operand-latch reuse span for a tensor (Fig. 10 semantics).

        Scanning the temporal nest from the innermost loop outward, the
        datum delivered to the compute unit stays latched while loops
        irrelevant to the tensor iterate. Returns the per-dim extents of
        that innermost irrelevant run (empty dict = no latch reuse).
        """
        extents: dict[str, int] = {}
        for j in range(self.num_levels):
            for loop in reversed(self.temporal[j]):
                if loop.dim in relevant_dims:
                    return extents
                extents[loop.dim] = extents.get(loop.dim, 1) * loop.bound
        return extents


def _episodes_and_distinct(
    outside: list[Loop], relevant_dims: frozenset[str]
) -> tuple[float, float]:
    """Stationarity analysis over the outside temporal loops.

    ``episodes`` multiplies bounds from the outermost loop down to the
    innermost relevant loop; ``distinct`` multiplies relevant loop
    bounds only.
    """
    episodes = 1.0
    distinct = 1.0
    # Find index of innermost relevant loop.
    innermost_relevant = -1
    for idx, loop in enumerate(outside):
        if loop.dim in relevant_dims:
            innermost_relevant = idx
            distinct *= loop.bound
    for idx, loop in enumerate(outside):
        if idx > innermost_relevant:
            break
        episodes *= loop.bound
    return episodes, distinct


def _multicast_factor(
    boundary: list[Loop],
    relevant_dims: frozenset[str],
    enabled: bool,
) -> float:
    """Fanout over which one parent access serves many children."""
    if not enabled:
        return 1.0
    factor = 1.0
    for loop in boundary:
        if loop.dim not in relevant_dims:
            factor *= loop.bound
    return factor


def analyze_dataflow(
    workload: Workload, arch: Architecture, mapping: Mapping
) -> DenseTraffic:
    """Run the dense dataflow modeling step.

    Returns per-(level, tensor) dense traffic and the dense compute
    count. Raises :class:`MappingError` if the mapping is structurally
    invalid.
    """
    einsum = workload.einsum
    mapping.validate(einsum, arch)
    nest = _NestView(einsum, arch, mapping)

    result = DenseTraffic(workload=workload, arch=arch, mapping=mapping)
    result.nest = nest
    result.computes = einsum.total_operations
    result.utilized_compute_instances = nest.compute_instances_used()

    for tensor in einsum.tensors:
        result.latch_extents[tensor.name] = nest.latch_extents(tensor.dims)
        chain = _keep_chain_indices(nest, tensor.name)
        if not chain:
            raise MappingError(
                f"tensor {tensor.name!r} kept at no level"
            )  # pragma: no cover - validate() already rejects this
        records = {
            idx: _make_record(nest, tensor, idx) for idx in chain
        }
        if tensor.is_output:
            _analyze_output(nest, tensor, chain, records)
        else:
            _analyze_operand(nest, tensor, chain, records)
        for idx, record in records.items():
            result.traffic[(record.level, tensor.name)] = record
    return result


def _keep_chain_indices(nest: _NestView, tensor: str) -> list[int]:
    """Indices (inner-first ordering) of levels keeping ``tensor``,
    returned outermost-first."""
    chain = [
        idx
        for idx in range(nest.num_levels - 1, -1, -1)
        if nest.level_maps[idx].keeps(tensor)
    ]
    return chain


def _make_record(
    nest: _NestView, tensor: TensorRef, level_index: int
) -> TensorTraffic:
    extents = nest.tile_dim_extents(level_index)
    outside = nest.outside_temporal(level_index)
    episodes, distinct = _episodes_and_distinct(outside, tensor.dims)
    return TensorTraffic(
        tensor=tensor.name,
        level=nest.level_names[level_index],
        level_index=level_index,
        tile_size=tensor.tile_size(extents),
        tile_dim_extents=extents,
        tile_rank_extents=tensor.tile_rank_extents(extents),
        instances=nest.instances_used(level_index),
        episodes=episodes,
        distinct=distinct,
    )


def _analyze_operand(
    nest: _NestView,
    tensor: TensorRef,
    chain: list[int],
    records: dict[int, TensorTraffic],
) -> None:
    """Traffic for an input tensor along its keep chain."""
    computes = nest.einsum.total_operations
    innermost = chain[-1]
    # Compute consumption: one element per compute, amortised by
    # multicast across the spatial fanout and by the operand latch
    # (the datum stays at the compute unit while innermost loops
    # irrelevant to the tensor iterate).
    boundary = nest.boundary_spatial(innermost, -1)
    multicast = _multicast_factor(
        boundary,
        tensor.dims,
        nest.arch.level(nest.level_names[innermost]).multicast,
    )
    latch = prod(nest.latch_extents(tensor.dims).values())
    feed = computes / multicast / latch
    records[innermost].reads += feed
    records[innermost].compute_feed_reads += feed

    # Parent -> child fills along the chain.
    for parent_idx, child_idx in zip(chain, chain[1:]):
        child = records[child_idx]
        fills = child.tile_size * child.instances * child.episodes
        child.writes += fills
        child.fills += fills
        boundary = nest.boundary_spatial(parent_idx, child_idx)
        multicast = _multicast_factor(
            boundary,
            tensor.dims,
            nest.arch.level(nest.level_names[parent_idx]).multicast,
        )
        records[parent_idx].reads += fills / multicast


def _analyze_output(
    nest: _NestView,
    tensor: TensorRef,
    chain: list[int],
    records: dict[int, TensorTraffic],
) -> None:
    """Traffic for the output tensor: updates, drains, refills, RMW."""
    computes = nest.einsum.total_operations
    innermost = chain[-1]
    outermost = chain[0]

    # Updates arriving from compute, merged across spatial reduction.
    # Accumulation in the resident tile is read-modify-write: arrivals
    # beyond the first per resident element (per episode) cost a read.
    boundary = nest.boundary_spatial(innermost, -1)
    reduction = _multicast_factor(
        boundary,
        tensor.dims,
        nest.arch.level(nest.level_names[innermost]).spatial_reduction,
    )
    inner = records[innermost]
    latch = prod(nest.latch_extents(tensor.dims).values())
    incoming = computes / reduction / latch
    inner.writes += incoming
    inner.update_writes += incoming
    # Only the first write of each element per *distinct* tile is free;
    # revisited (refilled) episodes accumulate onto restored partials,
    # so their first updates read-modify-write too.
    first_writes = inner.tile_size * inner.instances * inner.distinct
    rmw = max(0.0, incoming - first_writes)
    inner.rmw_reads += rmw
    inner.reads += rmw

    # Child -> parent drains and parent -> child refills along the chain.
    # Policy: a level that revisits an output tile refills the partials
    # from its parent, so every drain carries a complete version and the
    # parent overwrites (no RMW merge at the parent).
    for parent_idx, child_idx in zip(chain, chain[1:]):
        parent = records[parent_idx]
        child = records[child_idx]
        level = nest.arch.level(nest.level_names[parent_idx])
        boundary = nest.boundary_spatial(parent_idx, child_idx)
        reduction = _multicast_factor(
            boundary, tensor.dims, level.spatial_reduction
        )

        drains = child.tile_size * child.instances * child.episodes
        child.reads += drains
        child.drains += drains
        parent.writes += drains / reduction

        refills = (
            child.tile_size * child.instances * (child.episodes - child.distinct)
        )
        if refills > 0:
            child.writes += refills
            child.refill_writes += refills
            parent.reads += refills / reduction

    # The outermost keeping level never drains or refills further.
    assert records[outermost].drains == 0.0


# ----------------------------------------------------------------------
# Batched dense analysis
#
# A block of search candidates drawn from one mapspace shares the level
# order and keep sets, and each level's temporal/spatial loop-dim
# sequences are subsequences of one common order (the mapper emits a
# loop only when its tiling factor exceeds 1). Merging those sequences
# into a shared *slot layout* — one row per (level, kind, dim) — turns
# the whole block into an int64 factor matrix with absent slots padded
# to bound 1, and every per-candidate quantity of the scalar walk into
# a row product (tile extents, fanouts) or a cumulative-product gather
# (episode/latch stationarity, whose stopping points depend on which
# slots are actually present per candidate).
#
# Bit-identity with the scalar oracle holds because (a) every integer
# quantity is computed exactly (int64, guarded against overflow) and
# converts to float64 at the same expression positions as the scalar
# code, (b) every float64 product/accumulation multiplies the same
# operands in the same order — `np.multiply.accumulate` is sequential,
# and interleaving extra `* 1.0` factors for padded slots is exact
# (IEEE-754 `x * 1.0 == x`), and (c) stationarity stopping points are
# resolved per candidate from presence masks, so padded slots never
# shift them. Mappings carrying an explicit bound-1 loop are excluded
# (there a bound-1 loop is a real stopping point, not padding) and take
# the scalar path.


def analyze_dataflow_batch(
    jobs: Sequence[tuple[Workload, Architecture, Mapping]],
    *,
    vectorized: bool | None = None,
) -> list[DenseTraffic]:
    """Run :func:`analyze_dataflow` over many jobs at once.

    ``jobs`` is a sequence of ``(workload, arch, mapping)`` tuples;
    returns one :class:`DenseTraffic` per job, in order, numerically
    identical to calling the scalar entry point in a loop (which is
    exactly what the scalar backend does). ``vectorized`` selects the
    backend (default :data:`DENSE_VECTORIZED_DEFAULT`); the vectorized
    backend groups jobs sharing an einsum, architecture, and keep
    structure, merges their loop orders into one padded slot layout,
    and evaluates each group's dense traffic in stacked float64
    segments. Groups of one, conflicting loop orders, explicit bound-1
    loops, integer ranges that could overflow int64, and the scalar
    backend all fall back to the per-candidate oracle. Raises like the
    scalar path on the first structurally invalid mapping.
    """
    jobs = list(jobs)
    if vectorized is None:
        vectorized = DENSE_VECTORIZED_DEFAULT
    if not vectorized or len(jobs) < 2:
        return [analyze_dataflow(w, a, m) for (w, a, m) in jobs]
    groups: dict[tuple, list[int]] = {}
    for idx, (workload, arch, mapping) in enumerate(jobs):
        key = (
            workload.einsum.cache_key(),
            arch.cache_key(),
            tuple(
                (
                    lvl.level,
                    None if lvl.keep is None else frozenset(lvl.keep),
                )
                for lvl in mapping.levels
            ),
        )
        groups.setdefault(key, []).append(idx)
    results: list[DenseTraffic | None] = [None] * len(jobs)
    for indices in groups.values():
        if len(indices) >= 2:
            batch = _analyze_structure_group([jobs[i] for i in indices])
            if batch is not None:
                for i, dense in zip(indices, batch):
                    results[i] = dense
                continue
        for i in indices:
            workload, arch, mapping = jobs[i]
            results[i] = analyze_dataflow(workload, arch, mapping)
    return results


def analyze_fused_dataflow(
    jobs: Sequence[tuple[Workload, Architecture, Mapping]],
    *,
    fuse_at: str | None,
    shared: dict[str, tuple[int, list[int]]],
    vectorized: bool | None = None,
) -> list[DenseTraffic]:
    """Dense dataflow analysis of a fused einsum cascade.

    ``jobs`` holds one ``(workload, arch, mapping)`` per einsum in
    graph order, with the mappings already in fused form (intermediates
    kept at ``fuse_at`` as their outermost level — see
    :meth:`~repro.mapping.fused.FusedMapping.fused_levels`). ``shared``
    maps each intermediate tensor name to ``(producer_index,
    consumer_indices)`` into ``jobs``.

    The per-einsum traffic comes straight from the existing batched
    segment machinery (:func:`analyze_dataflow_batch`): because fusion
    is expressed in the keep sets, intermediate traffic outside
    ``fuse_at`` is zero by construction, and the tensor's residency is
    counted once — produced into the fusion level by its producer's
    drains, read out of it by each consumer's fills. What the batch
    cannot see is *cross-nest* consistency, checked here per
    intermediate:

    * producer and every consumer tile the tensor identically at
      ``fuse_at`` (same per-rank tile extents),
    * the consumer sees at most as many distinct tiles as the producer
      materialises (a consumer walking tiles the producer never made
      would read garbage).

    Raises :class:`MappingError` on any violation. With ``fuse_at``
    ``None`` (the degenerate form) this is exactly
    :func:`analyze_dataflow_batch`.
    """
    denses = analyze_dataflow_batch(jobs, vectorized=vectorized)
    if fuse_at is None:
        return denses
    for tensor, (producer, consumers) in shared.items():
        produced = denses[producer].traffic.get((fuse_at, tensor))
        if produced is None:
            raise MappingError(
                f"intermediate {tensor!r}: producer sub-nest keeps no "
                f"tile at fusion level {fuse_at!r}"
            )
        for consumer in consumers:
            consumed = denses[consumer].traffic.get((fuse_at, tensor))
            if consumed is None:
                raise MappingError(
                    f"intermediate {tensor!r}: consumer sub-nest keeps no "
                    f"tile at fusion level {fuse_at!r}"
                )
            if consumed.tile_rank_extents != produced.tile_rank_extents:
                raise MappingError(
                    f"intermediate {tensor!r} tiled differently at fusion "
                    f"level {fuse_at!r}: producer materialises "
                    f"{produced.tile_rank_extents}, consumer expects "
                    f"{consumed.tile_rank_extents}"
                )
            if consumed.distinct > produced.episodes:
                raise MappingError(
                    f"intermediate {tensor!r}: consumer walks "
                    f"{consumed.distinct} distinct tiles at {fuse_at!r} but "
                    f"the producer materialises only {produced.episodes}"
                )
    return denses


def _merge_orders(sequences: list[list[str]]) -> list[str] | None:
    """Merge dim sequences into one order containing each as a
    subsequence, or ``None`` when their relative orders conflict.

    Standard precedence topological sort; ties broken by first
    appearance so the result is deterministic.
    """
    appear: list[str] = []
    edges: dict[str, set[str]] = {}
    for seq in sequences:
        for d in seq:
            if d not in edges:
                edges[d] = set()
                appear.append(d)
        for i in range(len(seq)):
            for j in range(i + 1, len(seq)):
                if seq[i] == seq[j]:
                    return None  # duplicate dim (unreachable via Mapper)
                edges[seq[i]].add(seq[j])
    indegree = {d: 0 for d in appear}
    for d, succ in edges.items():
        for s in succ:
            indegree[s] += 1
    ready = [d for d in appear if indegree[d] == 0]
    merged: list[str] = []
    while ready:
        d = ready.pop(0)
        merged.append(d)
        for s in edges[d]:
            indegree[s] -= 1
            if indegree[s] == 0:
                ready.append(s)
        ready.sort(key=appear.index)
    if len(merged) != len(appear):
        return None  # cycle: irreconcilable loop orders
    return merged


def _analyze_structure_group(
    group: list[tuple[Workload, Architecture, Mapping]],
) -> list[DenseTraffic] | None:
    """Vectorized dense analysis of a compatible candidate group.

    Returns ``None`` when the group cannot take the padded-layout fast
    path (conflicting loop orders, explicit bound-1 loops, or integer
    ranges unsafe for int64); the caller then runs the scalar oracle.
    """
    einsum = group[0][0].einsum
    arch = group[0][1]
    for workload, job_arch, mapping in group:
        mapping.validate(workload.einsum, job_arch)
        for lvl in mapping.levels:
            for loop in lvl.loops():
                if loop.bound == 1:
                    # A literal bound-1 loop is a real stationarity
                    # stopping point; the padded layout would treat it
                    # as absent.
                    return None
    # int64 overflow guard: every integer this path multiplies is
    # bounded by (largest full-tensor tile) x (total spatial fanout),
    # and the fanout product of any dim's loops never exceeds its
    # bound, so the full iteration volume bounds the fanout.
    volume = einsum.total_operations
    full = dict(einsum.dims)
    max_tile = max(t.tile_size(full) for t in einsum.tensors)
    if max_tile * volume >= 2**62:
        return None

    num_levels = len(group[0][2].levels)
    # level index j is innermost = 0 (matching _NestView); mapping
    # levels are stored outermost first.
    level_names = [lm.level for lm in reversed(group[0][2].levels)]
    count = len(group)
    dims = list(einsum.dims)

    # Shared slot layout: per level, the merged temporal dim order and
    # merged spatial dim order across the group.
    temporal_dims_at: list[list[str]] = []
    spatial_dims_at: list[list[str]] = []
    for j in range(num_levels):
        t_merged = _merge_orders(
            [
                [l.dim for l in m.levels[num_levels - 1 - j].temporal]
                for (_w, _a, m) in group
            ]
        )
        s_merged = _merge_orders(
            [
                [l.dim for l in m.levels[num_levels - 1 - j].spatial]
                for (_w, _a, m) in group
            ]
        )
        if t_merged is None or s_merged is None:
            return None
        temporal_dims_at.append(t_merged)
        spatial_dims_at.append(s_merged)

    # Stacked factor matrix: one row per slot (innermost level first;
    # temporal then spatial within a level), one column per candidate;
    # slots absent from a candidate's mapping are padded to bound 1.
    pos_dim: list[str] = []
    temporal_at: list[list[int]] = []
    spatial_at: list[list[int]] = []
    slot_index: dict[tuple[int, str, str], int] = {}
    for j in range(num_levels):
        temporal_at.append(
            list(range(len(pos_dim), len(pos_dim) + len(temporal_dims_at[j])))
        )
        for d in temporal_dims_at[j]:
            slot_index[(j, "t", d)] = len(pos_dim)
            pos_dim.append(d)
        spatial_at.append(
            list(range(len(pos_dim), len(pos_dim) + len(spatial_dims_at[j])))
        )
        for d in spatial_dims_at[j]:
            slot_index[(j, "s", d)] = len(pos_dim)
            pos_dim.append(d)
    bounds = np.ones((len(pos_dim), count), dtype=np.int64)
    for c, (_w, _a, mapping) in enumerate(group):
        for j in range(num_levels):
            lm = mapping.levels[num_levels - 1 - j]
            for loop in lm.temporal:
                bounds[slot_index[(j, "t", loop.dim)], c] = loop.bound
            for loop in lm.spatial:
                bounds[slot_index[(j, "s", loop.dim)], c] = loop.bound
    fbounds = bounds.astype(np.float64)
    present = bounds > 1  # padded slots are exactly the bound-1 entries

    ones_i = np.ones(count, dtype=np.int64)
    cols = np.arange(count)

    # Cumulative per-dim tile extents at each level (loops at levels
    # <= j), mirroring _NestView.tile_dim_extents.
    ext_at: list[dict[str, np.ndarray]] = []
    running = {dim: ones_i for dim in dims}
    for j in range(num_levels):
        for k in temporal_at[j] + spatial_at[j]:
            d = pos_dim[k]
            running[d] = running[d] * bounds[k]
        ext_at.append(dict(running))

    # Utilized instances of level j = spatial fanout above it.
    above: list[np.ndarray] = [ones_i] * num_levels
    acc = ones_i
    for j in range(num_levels - 1, -1, -1):
        above[j] = acc
        for k in spatial_at[j]:
            acc = acc * bounds[k]
    compute_instances = acc  # fanout across every spatial loop

    # Temporal slots ordered outermost first (the `outside` walk order
    # of _episodes_and_distinct): for each record level j, the outside
    # loops are the first `outside_len[j]` rows of this sequence.
    outside_seq: list[int] = []
    outside_len = [0] * num_levels
    for j in range(num_levels - 1, -1, -1):
        outside_len[j] = len(outside_seq)
        outside_seq.extend(temporal_at[j])
    fb_out = fbounds[outside_seq] if outside_seq else np.ones((0, count))
    pres_out = present[outside_seq] if outside_seq else np.zeros(
        (0, count), dtype=bool
    )
    # cp_out[i] = sequential product of the first i outside bounds
    # (np.multiply.accumulate is strictly sequential, so the order of
    # float multiplies matches the scalar loop; padded 1.0s are exact).
    cp_out = np.ones((len(outside_seq) + 1, count))
    if outside_seq:
        np.multiply.accumulate(fb_out, axis=0, out=cp_out[1:])

    # Latch scan order: levels inner->outer, temporal loops reversed
    # within each level (_NestView.latch_extents).
    latch_seq: list[int] = []
    for j in range(num_levels):
        latch_seq.extend(reversed(temporal_at[j]))

    n_out = len(outside_seq)

    def stationarity_tables(
        relevant: frozenset[str],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per prefix length L of the outside sequence: the episode
        stop row (innermost relevant *present* loop per candidate) and
        the distinct product (relevant bounds, ascending order; padded
        and irrelevant rows contribute exact 1.0 factors)."""
        stops = np.zeros((n_out + 1, count), dtype=np.intp)
        dcp = np.ones((n_out + 1, count))
        if n_out:
            rel_rows = np.array(
                [pos_dim[k] in relevant for k in outside_seq]
            )
            marker = np.where(
                pres_out & rel_rows[:, None],
                np.arange(1, n_out + 1, dtype=np.intp)[:, None],
                0,
            )
            np.maximum.accumulate(marker, axis=0, out=stops[1:])
            dfac = np.where(rel_rows[:, None], fb_out, 1.0)
            np.multiply.accumulate(dfac, axis=0, out=dcp[1:])
        return stops, dcp

    def boundary_positions(parent_index: int, child_index: int) -> list[int]:
        out: list[int] = []
        for j in range(child_index + 1, parent_index + 1):
            out.extend(spatial_at[j])
        return out

    def multicast_col(
        boundary: list[int], relevant: frozenset[str], enabled: bool
    ):
        if not enabled:
            return 1.0
        factor = np.ones(count)
        for k in boundary:
            if pos_dim[k] not in relevant:
                factor = factor * fbounds[k]
        return factor

    def rank_extent_col(rank, j: int) -> np.ndarray:
        span = None
        for term in rank.terms:
            part = term.coefficient * (ext_at[j][term.dim] - 1)
            span = part if span is None else span + part
        return span + 1

    computes = einsum.total_operations

    def add(acc_map: dict[str, np.ndarray], name: str, term) -> None:
        prev = acc_map.get(name)
        acc_map[name] = term if prev is None else prev + term

    per_tensor: list[tuple[TensorRef, list[int], dict[int, dict]]] = []
    latch_scatter: dict[str, list[dict[str, int]]] = {}
    keeps_at = [
        group[0][2].levels[num_levels - 1 - j] for j in range(num_levels)
    ]
    for tensor in einsum.tensors:
        relevant = tensor.dims
        # Latch run per candidate: scan the shared sequence, skipping
        # padded slots (absent from the real nest); a *present* relevant
        # loop stops the scan. Mirrors _NestView.latch_extents exactly.
        latch_dicts: list[dict[str, int]] = []
        latch_vals = np.empty(count, dtype=np.int64)
        rel_latch = [pos_dim[k] in relevant for k in latch_seq]
        b_latch = bounds[latch_seq] if latch_seq else np.ones(
            (0, count), dtype=np.int64
        )
        for c in range(count):
            extents: dict[str, int] = {}
            value = 1
            for i, k in enumerate(latch_seq):
                b = int(b_latch[i, c])
                if b == 1:
                    continue  # padded slot: loop absent from this nest
                if rel_latch[i]:
                    break
                d = pos_dim[k]
                extents[d] = extents.get(d, 1) * b
                value *= b
            latch_dicts.append(extents)
            latch_vals[c] = value
        latch_scatter[tensor.name] = latch_dicts
        latch = latch_vals

        chain = [
            j
            for j in range(num_levels - 1, -1, -1)
            if keeps_at[j].keeps(tensor.name)
        ]
        stops, dcp = stationarity_tables(relevant)
        recs: dict[int, dict] = {}
        for j in chain:
            rank_exts = [rank_extent_col(r, j) for r in tensor.ranks]
            tile = ones_i
            for e in rank_exts:
                tile = tile * e
            length = outside_len[j]
            episodes = cp_out[stops[length], cols]
            distinct = dcp[length]
            recs[j] = {
                "tile": tile,
                "rank_exts": rank_exts,
                "instances": above[j],
                "episodes": episodes,
                "distinct": distinct,
                "acc": {},
            }

        innermost = chain[-1]
        if not tensor.is_output:
            mc = multicast_col(
                boundary_positions(innermost, -1),
                relevant,
                arch.level(level_names[innermost]).multicast,
            )
            feed = np.float64(computes) / mc / latch
            add(recs[innermost]["acc"], "reads", feed)
            add(recs[innermost]["acc"], "compute_feed_reads", feed)
            for parent_j, child_j in zip(chain, chain[1:]):
                child = recs[child_j]
                fills = (child["tile"] * child["instances"]) * child[
                    "episodes"
                ]
                add(child["acc"], "writes", fills)
                add(child["acc"], "fills", fills)
                mc = multicast_col(
                    boundary_positions(parent_j, child_j),
                    relevant,
                    arch.level(level_names[parent_j]).multicast,
                )
                add(recs[parent_j]["acc"], "reads", fills / mc)
        else:
            reduction = multicast_col(
                boundary_positions(innermost, -1),
                relevant,
                arch.level(level_names[innermost]).spatial_reduction,
            )
            inner = recs[innermost]
            incoming = np.float64(computes) / reduction / latch
            add(inner["acc"], "writes", incoming)
            add(inner["acc"], "update_writes", incoming)
            first_writes = (inner["tile"] * inner["instances"]) * inner[
                "distinct"
            ]
            rmw = np.maximum(0.0, incoming - first_writes)
            add(inner["acc"], "rmw_reads", rmw)
            add(inner["acc"], "reads", rmw)
            for parent_j, child_j in zip(chain, chain[1:]):
                parent, child = recs[parent_j], recs[child_j]
                reduction = multicast_col(
                    boundary_positions(parent_j, child_j),
                    relevant,
                    arch.level(level_names[parent_j]).spatial_reduction,
                )
                drains = (child["tile"] * child["instances"]) * child[
                    "episodes"
                ]
                add(child["acc"], "reads", drains)
                add(child["acc"], "drains", drains)
                add(parent["acc"], "writes", drains / reduction)
                refills = (child["tile"] * child["instances"]) * (
                    child["episodes"] - child["distinct"]
                )
                mask = refills > 0
                if mask.any():
                    # Candidates whose refill count is zero add nothing
                    # (exactly the scalar `if refills > 0` gate; adding
                    # 0.0 to a non-negative accumulator is bit-exact).
                    gated = np.where(mask, refills, 0.0)
                    add(child["acc"], "writes", gated)
                    add(child["acc"], "refill_writes", gated)
                    add(
                        parent["acc"],
                        "reads",
                        np.where(mask, refills / reduction, 0.0),
                    )
        per_tensor.append((tensor, chain, recs))

    # ------------------------------------------------------------------
    # Scatter: per-candidate record objects from the stacked columns.
    needed_levels = sorted({j for _, chain, _ in per_tensor for j in chain})
    ext_lists = {
        j: {dim: ext_at[j][dim].tolist() for dim in dims}
        for j in needed_levels
    }
    # One tile_dim_extents dict per (level, candidate), shared by every
    # tensor kept there (the records treat it as read-only).
    tde: dict[int, list[dict[str, int]]] = {
        j: [
            {dim: ext_lists[j][dim][c] for dim in dims}
            for c in range(count)
        ]
        for j in needed_levels
    }
    compute_instances_l = compute_instances.tolist()

    scattered: list[tuple[TensorRef, list[int], dict[int, dict]]] = []
    accumulator_fields = (
        "reads",
        "writes",
        "fills",
        "drains",
        "rmw_reads",
        "refill_writes",
        "compute_feed_reads",
        "update_writes",
    )
    for tensor, chain, recs in per_tensor:
        rec_lists: dict[int, dict] = {}
        for j, rec in recs.items():
            rank_lists = [e.tolist() for e in rec["rank_exts"]]
            rec_lists[j] = {
                "tile": rec["tile"].tolist(),
                "rank_exts": (
                    list(zip(*rank_lists)) if rank_lists else [()] * count
                ),
                "instances": rec["instances"].tolist(),
                "episodes": rec["episodes"].tolist(),
                "distinct": rec["distinct"].tolist(),
                "acc": {
                    name: col.tolist()
                    for name, col in rec["acc"].items()
                },
            }
        scattered.append((tensor, chain, rec_lists))

    results: list[DenseTraffic] = []
    for c, (workload, job_arch, mapping) in enumerate(group):
        result = DenseTraffic(
            workload=workload, arch=job_arch, mapping=mapping
        )
        result.nest = _NestView(workload.einsum, job_arch, mapping)
        result.computes = computes
        result.utilized_compute_instances = compute_instances_l[c]
        for tensor, chain, rec_lists in scattered:
            result.latch_extents[tensor.name] = latch_scatter[tensor.name][c]
            for j in chain:
                rec = rec_lists[j]
                acc = rec["acc"]
                record = TensorTraffic(
                    tensor=tensor.name,
                    level=level_names[j],
                    level_index=j,
                    tile_size=rec["tile"][c],
                    tile_dim_extents=tde[j][c],
                    tile_rank_extents=rec["rank_exts"][c],
                    instances=rec["instances"][c],
                    episodes=rec["episodes"][c],
                    distinct=rec["distinct"][c],
                )
                for name in accumulator_fields:
                    col = acc.get(name)
                    if col is not None:
                        setattr(record, name, col[c])
                result.traffic[(level_names[j], tensor.name)] = record
        results.append(result)
    return results
