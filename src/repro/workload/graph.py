"""Einsum graphs: cascades of einsums over shared intermediate tensors.

The single-einsum model (Sec 5.1) evaluates one kernel at a time;
multi-phase workloads such as transformer attention (QK -> softmax ->
AV) are *cascades*: later einsums consume tensors earlier einsums
produce. An :class:`EinsumGraph` names the member einsums and derives
the producer/consumer edges from tensor names — a tensor appearing as
the output of one einsum and an input of another is an *intermediate*
shared between them.

Validation happens at construction (so the YAML front-end and the wire
``from_dict`` surface :class:`SpecError` at load time):

* einsum names are unique and non-empty,
* every tensor has at most one producer,
* shared tensors agree on their dense shape (per-rank extents) between
  producer and every consumer,
* the dependency graph is acyclic, and the einsums are listed in a
  topological order (producers before consumers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SpecError
from repro.workload.einsum import EinsumSpec, einsum_from_dict, einsum_to_dict

GRAPH_SCHEMA_VERSION = 1


@dataclass
class EinsumGraph:
    """A DAG of named einsums sharing tensors by name."""

    name: str
    einsums: list[EinsumSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("einsum graph needs a non-empty name")
        if not self.einsums:
            raise SpecError(f"einsum graph {self.name!r} has no einsums")
        names = [e.name for e in self.einsums]
        if len(set(names)) != len(names):
            raise SpecError(
                f"duplicate einsum names in graph {self.name!r}: {names}"
            )
        producers: dict[str, str] = {}
        for spec in self.einsums:
            out = spec.output.name
            if out in producers:
                raise SpecError(
                    f"graph {self.name!r}: tensor {out!r} produced by both "
                    f"{producers[out]!r} and {spec.name!r}"
                )
            producers[out] = spec.name
        # Topological order: every consumed intermediate must already
        # have been produced by an earlier einsum. Listing a consumer
        # before its producer is either a cycle or a mis-ordered spec;
        # both are rejected (callers can sort explicitly).
        seen_outputs: set[str] = set()
        for spec in self.einsums:
            for tensor in spec.inputs:
                producer = producers.get(tensor.name)
                if producer is not None and tensor.name not in seen_outputs:
                    raise SpecError(
                        f"graph {self.name!r}: einsum {spec.name!r} consumes "
                        f"{tensor.name!r} before its producer {producer!r} "
                        f"(cycle or non-topological order)"
                    )
            seen_outputs.add(spec.output.name)
        # Shared tensors must agree on their dense shape everywhere.
        shapes: dict[str, tuple[tuple[int, ...], str]] = {}
        for spec in self.einsums:
            for tensor in spec.tensors:
                shape = spec.tensor_shape(tensor.name)
                prior = shapes.get(tensor.name)
                if prior is None:
                    shapes[tensor.name] = (shape, spec.name)
                elif prior[0] != shape:
                    raise SpecError(
                        f"graph {self.name!r}: tensor {tensor.name!r} has "
                        f"shape {prior[0]} in einsum {prior[1]!r} but "
                        f"{shape} in einsum {spec.name!r}"
                    )
        self._producers = producers

    def einsum(self, name: str) -> EinsumSpec:
        for spec in self.einsums:
            if spec.name == name:
                return spec
        raise SpecError(f"graph {self.name!r} has no einsum {name!r}")

    def producer_of(self, tensor: str) -> str | None:
        """Name of the einsum producing ``tensor`` (``None`` if it is a
        graph input)."""
        return self._producers.get(tensor)

    def consumers_of(self, tensor: str) -> list[str]:
        """Names of the einsums consuming ``tensor``, in graph order."""
        return [
            spec.name
            for spec in self.einsums
            if any(t.name == tensor for t in spec.inputs)
        ]

    @property
    def intermediates(self) -> list[str]:
        """Tensors produced by one einsum and consumed by another, in
        production order."""
        consumed = {
            t.name for spec in self.einsums for t in spec.inputs
        }
        return [
            spec.output.name
            for spec in self.einsums
            if spec.output.name in consumed
        ]

    @property
    def graph_inputs(self) -> list[str]:
        """Tensors consumed but never produced, first-use order."""
        out: list[str] = []
        for spec in self.einsums:
            for tensor in spec.inputs:
                if tensor.name not in self._producers and tensor.name not in out:
                    out.append(tensor.name)
        return out

    @property
    def graph_outputs(self) -> list[str]:
        """Tensors produced but never consumed, production order."""
        consumed = {
            t.name for spec in self.einsums for t in spec.inputs
        }
        return [
            spec.output.name
            for spec in self.einsums
            if spec.output.name not in consumed
        ]

    @property
    def total_operations(self) -> int:
        return sum(spec.total_operations for spec in self.einsums)

    def tensor_names(self) -> list[str]:
        """All tensor names in the graph, first-appearance order."""
        out: list[str] = []
        for spec in self.einsums:
            for tensor in spec.tensors:
                if tensor.name not in out:
                    out.append(tensor.name)
        return out

    def cache_key(self) -> tuple:
        """Canonical hashable content key (memoised; graphs are frozen
        by contract once evaluated)."""
        memo = getattr(self, "_cache_key", None)
        if memo is None:
            memo = (
                self.name,
                tuple((spec.name, spec.cache_key()) for spec in self.einsums),
            )
            self._cache_key = memo
        return memo

    def to_dict(self) -> dict:
        return {
            "schema": GRAPH_SCHEMA_VERSION,
            "kind": "einsum-graph",
            "name": self.name,
            "einsums": [einsum_to_dict(spec) for spec in self.einsums],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EinsumGraph":
        """Rebuild from :meth:`to_dict` output (also the parsed YAML
        ``graph:`` section). Construction re-runs every einsum- and
        graph-level consistency check, so malformed payloads raise
        :class:`SpecError` here, at load time."""
        if not isinstance(data, dict):
            raise SpecError(
                f"serialized einsum graph must be a dict, got "
                f"{type(data).__name__}"
            )
        version = data.get("schema", GRAPH_SCHEMA_VERSION)
        if version != GRAPH_SCHEMA_VERSION:
            raise SpecError(
                f"unsupported einsum-graph schema version {version!r} "
                f"(this build reads version {GRAPH_SCHEMA_VERSION})"
            )
        try:
            name = data["name"]
            entries = data["einsums"]
        except KeyError as exc:
            raise SpecError(
                f"malformed serialized einsum graph: {exc!r}"
            ) from exc
        if not isinstance(entries, list):
            raise SpecError("einsum graph 'einsums' must be a list")
        return cls(
            name=name,
            einsums=[einsum_from_dict(entry) for entry in entries],
        )

    def describe(self) -> str:
        lines = [f"einsum graph {self.name}:"]
        for spec in self.einsums:
            inputs = ", ".join(t.name for t in spec.inputs)
            lines.append(f"  {spec.name}: {spec.output.name} <- {inputs}")
        if self.intermediates:
            lines.append("intermediates: " + ", ".join(self.intermediates))
        return "\n".join(lines)
