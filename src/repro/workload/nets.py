"""Layer tables for the networks used in the paper's evaluation.

Table 5 measures modeling speed on ResNet50, BERT-base, VGG16 and
AlexNet; Fig. 12 uses MobileNet(V1); Table 7 uses AlexNet conv1-5;
Fig. 15 uses representative ResNet50 layers. Shapes follow the original
publications (grouped AlexNet convolutions are modeled with per-group
channel counts, as in the Eyeriss paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SpecError
from repro.workload.einsum import (
    EinsumSpec,
    ProjectionTerm,
    RankProjection,
    TensorRef,
    conv2d,
    depthwise_conv2d,
    matmul,
)
from repro.workload.graph import EinsumGraph


@dataclass(frozen=True)
class NetLayer:
    """One layer of a network: a kernel spec plus its repeat count."""

    name: str
    spec: EinsumSpec
    repeat: int = 1

    @property
    def total_operations(self) -> int:
        return self.spec.total_operations * self.repeat


def _conv(name, k, c, p, q, r, s, stride=1, n=1) -> EinsumSpec:
    return conv2d(n=n, k=k, c=c, p=p, q=q, r=r, s=s, stride=stride, name=name)


def alexnet(batch: int = 1) -> list[NetLayer]:
    """AlexNet conv layers (grouped convs use per-group channels) + FC."""
    layers = [
        NetLayer("conv1", _conv("conv1", 96, 3, 55, 55, 11, 11, 4, batch)),
        NetLayer("conv2", _conv("conv2", 256, 48, 27, 27, 5, 5, 1, batch)),
        NetLayer("conv3", _conv("conv3", 384, 256, 13, 13, 3, 3, 1, batch)),
        NetLayer("conv4", _conv("conv4", 384, 192, 13, 13, 3, 3, 1, batch)),
        NetLayer("conv5", _conv("conv5", 256, 192, 13, 13, 3, 3, 1, batch)),
        NetLayer("fc6", matmul(batch, 9216, 4096, name="fc6")),
        NetLayer("fc7", matmul(batch, 4096, 4096, name="fc7")),
        NetLayer("fc8", matmul(batch, 4096, 1000, name="fc8")),
    ]
    return layers


def vgg16(batch: int = 1) -> list[NetLayer]:
    """VGG16: thirteen 3x3 convolutions plus three FC layers."""
    cfg = [
        # (name, K, C, P=Q)
        ("conv1_1", 64, 3, 224),
        ("conv1_2", 64, 64, 224),
        ("conv2_1", 128, 64, 112),
        ("conv2_2", 128, 128, 112),
        ("conv3_1", 256, 128, 56),
        ("conv3_2", 256, 256, 56),
        ("conv3_3", 256, 256, 56),
        ("conv4_1", 512, 256, 28),
        ("conv4_2", 512, 512, 28),
        ("conv4_3", 512, 512, 28),
        ("conv5_1", 512, 512, 14),
        ("conv5_2", 512, 512, 14),
        ("conv5_3", 512, 512, 14),
    ]
    layers = [
        NetLayer(name, _conv(name, k, c, hw, hw, 3, 3, 1, batch))
        for name, k, c, hw in cfg
    ]
    layers += [
        NetLayer("fc6", matmul(batch, 25088, 4096, name="fc6")),
        NetLayer("fc7", matmul(batch, 4096, 4096, name="fc7")),
        NetLayer("fc8", matmul(batch, 4096, 1000, name="fc8")),
    ]
    return layers


def resnet50(batch: int = 1) -> list[NetLayer]:
    """ResNet50 unique conv shapes with repeat counts.

    Bottleneck blocks contribute 1x1-reduce / 3x3 / 1x1-expand triples;
    identical shapes across repeated blocks are collapsed via
    ``repeat``. Downsample (projection) convolutions included.
    """
    layers = [NetLayer("conv1", _conv("conv1", 64, 3, 112, 112, 7, 7, 2, batch))]

    def stage(prefix, blocks, c_in, c_mid, c_out, hw, first_stride):
        entries = []
        # First block: possibly strided 3x3 and a projection shortcut.
        entries.append(
            NetLayer(
                f"{prefix}_a_1x1r",
                _conv(f"{prefix}_a_1x1r", c_mid, c_in, hw, hw, 1, 1, 1, batch),
            )
        )
        out_hw = hw // first_stride
        entries.append(
            NetLayer(
                f"{prefix}_a_3x3",
                _conv(
                    f"{prefix}_a_3x3",
                    c_mid,
                    c_mid,
                    out_hw,
                    out_hw,
                    3,
                    3,
                    first_stride,
                    batch,
                ),
            )
        )
        entries.append(
            NetLayer(
                f"{prefix}_a_1x1e",
                _conv(f"{prefix}_a_1x1e", c_out, c_mid, out_hw, out_hw, 1, 1, 1, batch),
            )
        )
        entries.append(
            NetLayer(
                f"{prefix}_proj",
                _conv(
                    f"{prefix}_proj", c_out, c_in, out_hw, out_hw, 1, 1, first_stride, batch
                ),
            )
        )
        # Remaining blocks share one shape triple.
        rest = blocks - 1
        if rest > 0:
            entries.append(
                NetLayer(
                    f"{prefix}_b_1x1r",
                    _conv(f"{prefix}_b_1x1r", c_mid, c_out, out_hw, out_hw, 1, 1, 1, batch),
                    repeat=rest,
                )
            )
            entries.append(
                NetLayer(
                    f"{prefix}_b_3x3",
                    _conv(f"{prefix}_b_3x3", c_mid, c_mid, out_hw, out_hw, 3, 3, 1, batch),
                    repeat=rest,
                )
            )
            entries.append(
                NetLayer(
                    f"{prefix}_b_1x1e",
                    _conv(f"{prefix}_b_1x1e", c_out, c_mid, out_hw, out_hw, 1, 1, 1, batch),
                    repeat=rest,
                )
            )
        return entries

    layers += stage("res2", 3, 64, 64, 256, 56, 1)
    layers += stage("res3", 4, 256, 128, 512, 56, 2)
    layers += stage("res4", 6, 512, 256, 1024, 28, 2)
    layers += stage("res5", 3, 1024, 512, 2048, 14, 2)
    layers.append(NetLayer("fc", matmul(batch, 2048, 1000, name="fc")))
    return layers


def mobilenet_v1(batch: int = 1, resolution: int = 224) -> list[NetLayer]:
    """MobileNetV1: standard conv + 13 depthwise-separable blocks."""
    hw = resolution // 2
    layers = [
        NetLayer("conv1", _conv("conv1", 32, 3, hw, hw, 3, 3, 2, batch))
    ]
    # (c_in, c_out, stride) per separable block.
    blocks = [
        (32, 64, 1),
        (64, 128, 2),
        (128, 128, 1),
        (128, 256, 2),
        (256, 256, 1),
        (256, 512, 2),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 1024, 2),
        (1024, 1024, 1),
    ]
    for idx, (c_in, c_out, stride) in enumerate(blocks, start=2):
        out_hw = hw // stride
        layers.append(
            NetLayer(
                f"dw{idx}",
                depthwise_conv2d(
                    batch, c_in, out_hw, out_hw, 3, 3, stride, name=f"dw{idx}"
                ),
            )
        )
        layers.append(
            NetLayer(
                f"pw{idx}",
                _conv(f"pw{idx}", c_out, c_in, out_hw, out_hw, 1, 1, 1, batch),
            )
        )
        hw = out_hw
    layers.append(NetLayer("fc", matmul(batch, 1024, 1000, name="fc")))
    return layers


def bert_base(seq_len: int = 512) -> list[NetLayer]:
    """BERT-base encoder as matmuls (12 layers, 12 heads, hidden 768)."""
    hidden, heads, layers_n = 768, 12, 12
    head_dim = hidden // heads
    ffn = 4 * hidden
    layers = [
        NetLayer(
            "qkv_proj",
            matmul(seq_len, hidden, hidden, name="qkv_proj"),
            repeat=3 * layers_n,
        ),
        NetLayer(
            "attn_qk",
            matmul(seq_len, head_dim, seq_len, name="attn_qk"),
            repeat=heads * layers_n,
        ),
        NetLayer(
            "attn_av",
            matmul(seq_len, seq_len, head_dim, name="attn_av"),
            repeat=heads * layers_n,
        ),
        NetLayer(
            "out_proj",
            matmul(seq_len, hidden, hidden, name="out_proj"),
            repeat=layers_n,
        ),
        NetLayer(
            "ffn_up",
            matmul(seq_len, hidden, ffn, name="ffn_up"),
            repeat=layers_n,
        ),
        NetLayer(
            "ffn_down",
            matmul(seq_len, ffn, hidden, name="ffn_down"),
            repeat=layers_n,
        ),
    ]
    return layers


def _rank(name: str, dim: str) -> RankProjection:
    return RankProjection(name, (ProjectionTerm(dim),))


def attention(
    seq: int = 512, d_model: int = 768, heads: int = 12
) -> EinsumGraph:
    """Multi-head attention as a fused-evaluable einsum graph.

    Two einsums per the standard cascade, batched over heads:

    * ``qk``: ``S[h,m,n] = sum_k Q[h,m,k] * K[h,n,k]`` — attention
      scores,
    * ``av``: ``O[h,m,p] = sum_n S[h,m,n] * V[h,n,p]`` — score-weighted
      values,

    with ``S`` the shared intermediate (``heads x seq x seq`` — the
    tensor whose DRAM round trip fusion eliminates). The softmax
    between them is elementwise over ``S`` (a row-wise normalisation),
    so it changes values, not traffic shape; the dataflow model treats
    ``S`` as flowing straight from ``qk`` to ``av``, exactly as a fused
    kernel would apply the normalisation in place at the fusion level.
    """
    if d_model % heads != 0:
        raise SpecError(
            f"d_model {d_model} is not divisible by heads {heads}"
        )
    head_dim = d_model // heads
    q = TensorRef("Q", (_rank("H", "h"), _rank("M", "m"), _rank("K", "k")))
    k = TensorRef("K", (_rank("H", "h"), _rank("N", "n"), _rank("K", "k")))
    s_out = TensorRef(
        "S", (_rank("H", "h"), _rank("M", "m"), _rank("N", "n")), is_output=True
    )
    qk = EinsumSpec(
        "qk",
        {"h": heads, "m": seq, "n": seq, "k": head_dim},
        [q, k, s_out],
    )
    s_in = TensorRef("S", (_rank("H", "h"), _rank("M", "m"), _rank("N", "n")))
    v = TensorRef("V", (_rank("H", "h"), _rank("N", "n"), _rank("P", "p")))
    o = TensorRef(
        "O", (_rank("H", "h"), _rank("M", "m"), _rank("P", "p")), is_output=True
    )
    av = EinsumSpec(
        "av",
        {"h": heads, "m": seq, "n": seq, "p": head_dim},
        [s_in, v, o],
    )
    return EinsumGraph("attention", [qk, av])


NETWORKS = {
    "alexnet": alexnet,
    "vgg16": vgg16,
    "resnet50": resnet50,
    "mobilenet_v1": mobilenet_v1,
    "bert_base": bert_base,
}


def network(name: str, **kwargs) -> list[NetLayer]:
    """Look up a network's layer table by name."""
    try:
        factory = NETWORKS[name]
    except KeyError:
        raise KeyError(
            f"unknown network {name!r}; available: {sorted(NETWORKS)}"
        ) from None
    return factory(**kwargs)
