"""Extended Einsum workload algorithms.

An Einsum (Sec 5.1) names iteration-space dimensions with bounds and
declares tensors whose ranks project onto those dimensions. Projections
are affine sums like conv's ``h = p + r`` (optionally strided), which is
all that is needed for matrix multiplication, convolution, and the
other kernels the paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SpecError
from repro.common.util import prod


@dataclass(frozen=True)
class ProjectionTerm:
    """One ``coefficient * dimension`` term of a rank projection."""

    dim: str
    coefficient: int = 1

    def __post_init__(self) -> None:
        if self.coefficient <= 0:
            raise SpecError(
                f"projection coefficient must be positive, got {self.coefficient}"
            )


@dataclass(frozen=True)
class RankProjection:
    """A tensor rank as an affine sum of iteration dimensions.

    The rank coordinate is ``sum(coeff_i * dim_i)``; e.g. a conv input
    row is ``stride * p + r``.
    """

    name: str
    terms: tuple[ProjectionTerm, ...]

    @property
    def dims(self) -> tuple[str, ...]:
        return tuple(t.dim for t in self.terms)

    def extent(self, dim_extents: dict[str, int]) -> int:
        """Rank extent when each dimension spans ``dim_extents[dim]``.

        For an affine sum, the number of distinct coordinates touched is
        ``sum(coeff * (extent - 1)) + 1`` (e.g. P-point output tile with
        R-point filter tile touches ``P + R - 1`` input rows).
        """
        span = 0
        for term in self.terms:
            span += term.coefficient * (dim_extents[term.dim] - 1)
        return span + 1


@dataclass(frozen=True)
class TensorRef:
    """A tensor participating in an Einsum.

    ``ranks`` run from the outermost rank to the innermost; each has a
    projection onto iteration dimensions. ``is_output`` marks the tensor
    populated (and reduced into) by the computation.
    """

    name: str
    ranks: tuple[RankProjection, ...]
    is_output: bool = False

    @property
    def rank_names(self) -> tuple[str, ...]:
        return tuple(r.name for r in self.ranks)

    @property
    def dims(self) -> frozenset[str]:
        """All iteration dimensions this tensor depends on."""
        return frozenset(d for r in self.ranks for d in r.dims)

    def tile_size(self, dim_extents: dict[str, int]) -> int:
        """Number of data elements covered by per-dimension tile extents."""
        return prod(r.extent(dim_extents) for r in self.ranks)

    def tile_rank_extents(self, dim_extents: dict[str, int]) -> tuple[int, ...]:
        """Per-rank extents (outer..inner) for the given dim extents."""
        return tuple(r.extent(dim_extents) for r in self.ranks)


@dataclass
class EinsumSpec:
    """A complete tensor-algebra kernel specification.

    Example (matrix multiplication ``Z[m,n] = sum_k A[m,k] * B[k,n]``)::

        spec = matmul(m=16, k=32, n=8)
    """

    name: str
    dims: dict[str, int]
    tensors: list[TensorRef] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.dims:
            raise SpecError(f"einsum {self.name!r} declares no dimensions")
        for dim, bound in self.dims.items():
            if bound <= 0:
                raise SpecError(f"dimension {dim!r} has bound {bound}")
        outputs = [t for t in self.tensors if t.is_output]
        if len(outputs) != 1:
            raise SpecError(
                f"einsum {self.name!r} must have exactly one output tensor, "
                f"found {len(outputs)}"
            )
        names = [t.name for t in self.tensors]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate tensor names in einsum {self.name!r}")
        for tensor in self.tensors:
            for rank in tensor.ranks:
                for term in rank.terms:
                    if term.dim not in self.dims:
                        raise SpecError(
                            f"tensor {tensor.name!r} projects rank "
                            f"{rank.name!r} onto unknown dim {term.dim!r}"
                        )

    def cache_key(self) -> tuple:
        """Canonical hashable content key (dims in declaration order
        plus the frozen tensor refs). Einsums with equal keys have
        identical iteration spaces and projections. Memoised on first
        use; einsums are frozen by contract once evaluated."""
        memo = getattr(self, "_cache_key", None)
        if memo is None:
            memo = (tuple(self.dims.items()), tuple(self.tensors))
            self._cache_key = memo
        return memo

    @property
    def output(self) -> TensorRef:
        # Memoised like cache_key: einsums are frozen by contract once
        # evaluated, and the modeling walks ask for the output tensor
        # once or more per candidate mapping.
        memo = getattr(self, "_output", None)
        if memo is None:
            memo = next(t for t in self.tensors if t.is_output)
            self._output = memo
        return memo

    @property
    def inputs(self) -> list[TensorRef]:
        memo = getattr(self, "_inputs", None)
        if memo is None:
            memo = [t for t in self.tensors if not t.is_output]
            self._inputs = memo
        return memo

    def tensor(self, name: str) -> TensorRef:
        by_name = getattr(self, "_tensors_by_name", None)
        if by_name is None:
            by_name = {t.name: t for t in self.tensors}
            self._tensors_by_name = by_name
        try:
            return by_name[name]
        except KeyError:
            raise SpecError(
                f"unknown tensor {name!r} in einsum {self.name!r}"
            ) from None

    @property
    def total_operations(self) -> int:
        """Dense compute count = the full iteration space volume."""
        return prod(self.dims.values())

    def tensor_size(self, name: str) -> int:
        """Dense element count of a tensor at full dimension bounds."""
        return self.tensor(name).tile_size(dict(self.dims))

    def tensor_shape(self, name: str) -> tuple[int, ...]:
        """Dense per-rank shape (outer..inner) at full dimension bounds."""
        return self.tensor(name).tile_rank_extents(dict(self.dims))

    @property
    def reduction_dims(self) -> frozenset[str]:
        """Dimensions reduced away (absent from the output tensor)."""
        memo = getattr(self, "_reduction_dims", None)
        if memo is None:
            memo = frozenset(self.dims) - self.output.dims
            self._reduction_dims = memo
        return memo


def _simple_rank(name: str, dim: str) -> RankProjection:
    return RankProjection(name, (ProjectionTerm(dim),))


def einsum_to_dict(spec: EinsumSpec) -> dict:
    """Explicit serialized form of an einsum (dims + tensor rank
    projections), the inverse of :func:`einsum_from_dict`.

    Unlike the kernel shorthand (``matmul``/``conv2d`` factories), this
    form can express any affine-projection einsum, so it is what
    :class:`~repro.workload.graph.EinsumGraph` envelopes and the YAML
    ``einsums:`` section carry.
    """
    return {
        "name": spec.name,
        "dims": dict(spec.dims),
        "tensors": [
            {
                "name": tensor.name,
                "output": tensor.is_output,
                "ranks": [
                    {
                        "name": rank.name,
                        "terms": [
                            {"dim": term.dim, "coefficient": term.coefficient}
                            for term in rank.terms
                        ],
                    }
                    for rank in tensor.ranks
                ],
            }
            for tensor in spec.tensors
        ],
    }


def einsum_from_dict(data: dict) -> EinsumSpec:
    """Rebuild an einsum from :func:`einsum_to_dict` output.

    Construction re-runs every :class:`EinsumSpec` consistency check
    (exactly one output, unique tensor names, projections onto known
    dims), so malformed serialized specs raise :class:`SpecError` here
    — at load time — rather than deep inside nest analysis.
    """
    if not isinstance(data, dict):
        raise SpecError(
            f"serialized einsum must be a dict, got {type(data).__name__}"
        )
    try:
        tensors = [
            TensorRef(
                name=entry["name"],
                ranks=tuple(
                    RankProjection(
                        name=rank["name"],
                        terms=tuple(
                            ProjectionTerm(
                                dim=term["dim"],
                                coefficient=int(term.get("coefficient", 1)),
                            )
                            for term in rank["terms"]
                        ),
                    )
                    for rank in entry["ranks"]
                ),
                is_output=bool(entry.get("output", False)),
            )
            for entry in data["tensors"]
        ]
        return EinsumSpec(
            name=data["name"],
            dims={dim: int(bound) for dim, bound in data["dims"].items()},
            tensors=tensors,
        )
    except SpecError:
        raise
    except (KeyError, TypeError, AttributeError) as exc:
        raise SpecError(f"malformed serialized einsum: {exc!r}") from exc


def matmul(m: int, k: int, n: int, name: str = "matmul") -> EinsumSpec:
    """``Z[m, n] = sum_k A[m, k] * B[k, n]``."""
    a = TensorRef("A", (_simple_rank("M", "m"), _simple_rank("K", "k")))
    b = TensorRef("B", (_simple_rank("K", "k"), _simple_rank("N", "n")))
    z = TensorRef(
        "Z", (_simple_rank("M", "m"), _simple_rank("N", "n")), is_output=True
    )
    return EinsumSpec(name, {"m": m, "k": k, "n": n}, [a, b, z])


def conv2d(
    n: int,
    k: int,
    c: int,
    p: int,
    q: int,
    r: int,
    s: int,
    stride: int = 1,
    name: str = "conv2d",
) -> EinsumSpec:
    """2D convolution as a 7-dim Einsum.

    ``O[n,k,p,q] = sum_{c,r,s} I[n,c,stride*p+r,stride*q+s] * W[k,c,r,s]``
    """
    weights = TensorRef(
        "W",
        (
            _simple_rank("K", "k"),
            _simple_rank("C", "c"),
            _simple_rank("R", "r"),
            _simple_rank("S", "s"),
        ),
    )
    inputs = TensorRef(
        "I",
        (
            _simple_rank("N", "n"),
            _simple_rank("C", "c"),
            RankProjection(
                "H", (ProjectionTerm("p", stride), ProjectionTerm("r"))
            ),
            RankProjection(
                "Wd", (ProjectionTerm("q", stride), ProjectionTerm("s"))
            ),
        ),
    )
    outputs = TensorRef(
        "O",
        (
            _simple_rank("N", "n"),
            _simple_rank("K", "k"),
            _simple_rank("P", "p"),
            _simple_rank("Q", "q"),
        ),
        is_output=True,
    )
    dims = {"n": n, "k": k, "c": c, "p": p, "q": q, "r": r, "s": s}
    return EinsumSpec(name, dims, [weights, inputs, outputs])


def depthwise_conv2d(
    n: int,
    c: int,
    p: int,
    q: int,
    r: int,
    s: int,
    stride: int = 1,
    name: str = "dwconv2d",
) -> EinsumSpec:
    """Depthwise convolution: one filter per channel, no reduction over c."""
    weights = TensorRef(
        "W",
        (
            _simple_rank("C", "c"),
            _simple_rank("R", "r"),
            _simple_rank("S", "s"),
        ),
    )
    inputs = TensorRef(
        "I",
        (
            _simple_rank("N", "n"),
            _simple_rank("C", "c"),
            RankProjection(
                "H", (ProjectionTerm("p", stride), ProjectionTerm("r"))
            ),
            RankProjection(
                "Wd", (ProjectionTerm("q", stride), ProjectionTerm("s"))
            ),
        ),
    )
    outputs = TensorRef(
        "O",
        (
            _simple_rank("N", "n"),
            _simple_rank("C", "c"),
            _simple_rank("P", "p"),
            _simple_rank("Q", "q"),
        ),
        is_output=True,
    )
    dims = {"n": n, "c": c, "p": p, "q": q, "r": r, "s": s}
    return EinsumSpec(name, dims, [weights, inputs, outputs])
