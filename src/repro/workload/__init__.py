"""Workload specification: extended Einsum algorithms and DNN layer tables."""

from repro.workload.einsum import EinsumSpec, TensorRef, conv2d, matmul
from repro.workload.spec import Workload

__all__ = ["EinsumSpec", "TensorRef", "matmul", "conv2d", "Workload"]
