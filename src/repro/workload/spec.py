"""Workload = Einsum algorithm + per-tensor density characterisation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SpecError
from repro.sparse.density import DensityModel, UniformDensity
from repro.workload.einsum import EinsumSpec


@dataclass
class Workload:
    """A complete workload specification (Sec 5.1).

    ``densities`` maps tensor names to :class:`DensityModel` instances;
    tensors left unlisted are dense. The helper :meth:`uniform` builds
    the common case of uniformly-random operand sparsity with exact
    (hypergeometric) tensor-size-aware models.
    """

    einsum: EinsumSpec
    densities: dict[str, DensityModel] = field(default_factory=dict)
    name: str | None = None

    def __post_init__(self) -> None:
        known = {t.name for t in self.einsum.tensors}
        for tensor in self.densities:
            if tensor not in known:
                raise SpecError(
                    f"density given for unknown tensor {tensor!r}; "
                    f"einsum has {sorted(known)}"
                )
        if self.name is None:
            self.name = self.einsum.name

    def density_of(self, tensor: str) -> DensityModel:
        """Density model for ``tensor`` (dense model if unspecified)."""
        model = self.densities.get(tensor)
        if model is None:
            model = UniformDensity(1.0, self.einsum.tensor_size(tensor))
            self.densities[tensor] = model
        return model

    @classmethod
    def uniform(
        cls,
        einsum: EinsumSpec,
        densities: dict[str, float],
        name: str | None = None,
    ) -> "Workload":
        """Workload with uniform-random density models per tensor.

        Each model is bound to the exact tensor size so tile occupancy
        follows the hypergeometric distribution.
        """
        models: dict[str, DensityModel] = {}
        for tensor, density in densities.items():
            models[tensor] = UniformDensity(density, einsum.tensor_size(tensor))
        return cls(einsum, models, name=name)

    @property
    def effectual_operations(self) -> float:
        """Expected compute count with all-nonzero operands (independent)."""
        fraction = 1.0
        for tensor in self.einsum.inputs:
            fraction *= self.density_of(tensor.name).density
        return self.einsum.total_operations * fraction

    def describe(self) -> str:
        lines = [f"workload {self.name}: {self.einsum.name}"]
        lines.append(
            "dims: "
            + ", ".join(f"{d}={b}" for d, b in self.einsum.dims.items())
        )
        for tensor in self.einsum.tensors:
            model = self.densities.get(tensor.name)
            density = model.density if model else 1.0
            role = "output" if tensor.is_output else "input"
            lines.append(
                f"  {tensor.name} ({role}): shape "
                f"{self.einsum.tensor_shape(tensor.name)}, "
                f"density {density:.4f}"
            )
        return "\n".join(lines)
