"""Mapping: an exact schedule of the workload onto the architecture.

A mapping assigns to each storage level an ordered list of temporal
loops and a list of spatial loops (Sec 5.1, Fig. 6). Following the
Timeloop convention, the data resident in a level is the footprint of
all loops at that level and below; the loops of outer levels iterate
over those resident tiles. Spatial loops at a level distribute work
across instances of the level below.

Mappings also carry per-level *keep* sets (tensors resident at the
level); tensors not kept bypass the level entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.spec import Architecture
from repro.common.errors import MappingError
from repro.common.util import prod
from repro.workload.einsum import EinsumSpec


@dataclass(frozen=True)
class Loop:
    """A single for / parallel-for loop over an iteration dimension."""

    dim: str
    bound: int
    spatial: bool = False

    def __post_init__(self) -> None:
        if self.bound <= 0:
            raise MappingError(f"loop over {self.dim!r} has bound {self.bound}")

    def __repr__(self) -> str:
        kind = "parallel-for" if self.spatial else "for"
        return f"{kind} {self.dim} in [0:{self.bound})"


@dataclass
class LevelMapping:
    """Loops and residency for one storage level.

    ``temporal`` is ordered outermost first. ``keep`` is the set of
    tensor names resident at this level (``None`` keeps everything).
    """

    level: str
    temporal: list[Loop] = field(default_factory=list)
    spatial: list[Loop] = field(default_factory=list)
    keep: set[str] | None = None

    def __post_init__(self) -> None:
        for loop in self.temporal:
            if loop.spatial:
                raise MappingError(
                    f"spatial loop {loop!r} listed in temporal loops of "
                    f"{self.level!r}"
                )
        self.spatial = [
            Loop(l.dim, l.bound, spatial=True) for l in self.spatial
        ]

    def keeps(self, tensor: str) -> bool:
        return self.keep is None or tensor in self.keep

    @property
    def spatial_fanout(self) -> int:
        return int(prod(l.bound for l in self.spatial))

    def loops(self) -> list[Loop]:
        """All loops at this level, temporal (outer) then spatial."""
        return list(self.temporal) + list(self.spatial)


@dataclass
class Mapping:
    """A complete mapping: one :class:`LevelMapping` per storage level,
    ordered outermost first (matching ``Architecture.levels``)."""

    levels: list[LevelMapping]

    def level(self, name: str) -> LevelMapping:
        for lvl in self.levels:
            if lvl.level == name:
                return lvl
        raise MappingError(f"mapping has no level {name!r}")

    def validate(self, einsum: EinsumSpec, arch: Architecture) -> None:
        """Check structural consistency against workload and hardware.

        * level names and order match the architecture,
        * per-dimension loop bounds multiply exactly to the dim bound,
        * spatial fanout at each level fits the instance ratio to the
          level below,
        * every tensor is kept somewhere, and the outermost level keeps
          everything it ever serves.
        """
        arch_names = arch.level_names
        map_names = [lvl.level for lvl in self.levels]
        if map_names != arch_names:
            raise MappingError(
                f"mapping levels {map_names} do not match architecture "
                f"levels {arch_names}"
            )
        # Loop bound products must tile each dimension exactly.
        for dim, bound in einsum.dims.items():
            product = 1
            for lvl in self.levels:
                for loop in lvl.loops():
                    if loop.dim == dim:
                        product *= loop.bound
            if product != bound:
                raise MappingError(
                    f"dimension {dim!r}: loop bounds multiply to {product}, "
                    f"workload needs {bound}"
                )
        for lvl in self.levels:
            for loop in lvl.loops():
                if loop.dim not in einsum.dims:
                    raise MappingError(
                        f"level {lvl.level!r} loops over unknown dim "
                        f"{loop.dim!r}"
                    )
        # Spatial fanout must fit hardware instance ratios.
        ordered = list(self.levels)  # outer -> inner
        for idx, lvl in enumerate(ordered):
            parent_instances = (
                arch.level(ordered[idx - 1].level).instances if idx else 1
            )
            below_instances = (
                arch.level(ordered[idx + 1].level).instances
                if idx + 1 < len(ordered)
                else arch.compute.instances
            )
            this_instances = arch.level(lvl.level).instances
            if this_instances % parent_instances != 0:
                raise MappingError(
                    f"level {lvl.level!r}: {this_instances} instances not a "
                    f"multiple of parent's {parent_instances}"
                )
            fanout = lvl.spatial_fanout
            available = below_instances // this_instances
            if fanout > available:
                raise MappingError(
                    f"level {lvl.level!r}: spatial fanout {fanout} exceeds "
                    f"available child instances {available}"
                )
        # Residency checks.
        for tensor in einsum.tensors:
            if not any(lvl.keeps(tensor.name) for lvl in self.levels):
                raise MappingError(
                    f"tensor {tensor.name!r} is kept at no storage level"
                )

    def keep_chain(self, tensor: str) -> list[str]:
        """Names of levels keeping ``tensor``, outermost first.

        Memoised per instance: callers must treat the returned list as
        read-only and must not rearrange levels after the first call.
        """
        memo = getattr(self, "_keep_chains", None)
        if memo is None:
            memo = self._keep_chains = {}
        chain = memo.get(tensor)
        if chain is None:
            chain = [lvl.level for lvl in self.levels if lvl.keeps(tensor)]
            memo[tensor] = chain
        return chain

    def to_spec(self) -> list[dict]:
        """Serializable spec form: the same list-of-level-entries shape
        the YAML ``mapping:`` section uses (and
        :func:`repro.io.yaml_spec.load_mapping` parses). Keep sets are
        emitted sorted so equal mappings serialize identically."""
        spec: list[dict] = []
        for lvl in self.levels:
            entry: dict = {"level": lvl.level}
            if lvl.temporal:
                entry["temporal"] = [
                    {"dim": l.dim, "bound": l.bound} for l in lvl.temporal
                ]
            if lvl.spatial:
                entry["spatial"] = [
                    {"dim": l.dim, "bound": l.bound} for l in lvl.spatial
                ]
            if lvl.keep is not None:
                entry["keep"] = sorted(lvl.keep)
            spec.append(entry)
        return spec

    @classmethod
    def from_spec(cls, spec: list[dict]) -> "Mapping":
        """Rebuild a mapping from :meth:`to_spec` output (also the
        parsed YAML ``mapping:`` section)."""
        if not isinstance(spec, list):
            raise MappingError("mapping spec must be a list of level entries")
        levels = []
        for entry in spec:
            try:
                temporal = [
                    Loop(l["dim"], int(l["bound"]))
                    for l in entry.get("temporal", [])
                ]
                spatial = [
                    Loop(l["dim"], int(l["bound"]), spatial=True)
                    for l in entry.get("spatial", [])
                ]
                keep = entry.get("keep")
                levels.append(
                    LevelMapping(
                        entry["level"],
                        temporal,
                        spatial,
                        keep=set(keep) if keep is not None else None,
                    )
                )
            except (KeyError, TypeError, ValueError, AttributeError) as exc:
                raise MappingError(
                    f"malformed mapping level entry {entry!r}: {exc!r}"
                ) from exc
        return cls(levels)

    def cache_key(self) -> tuple:
        """Canonical hashable content key.

        Two mappings with equal keys schedule identically: same levels,
        same ordered temporal loops, same spatial loops, same keep sets.
        Used by the engine's dense-analysis cache.
        """
        return tuple(
            (
                lvl.level,
                tuple(lvl.temporal),
                tuple(lvl.spatial),
                None if lvl.keep is None else frozenset(lvl.keep),
            )
            for lvl in self.levels
        )

    def structure_key(self) -> tuple:
        """Loop-*structure* signature: everything in :meth:`cache_key`
        except the loop bounds — level names, ordered temporal/spatial
        loop dims, and keep sets.

        Mappings sharing a structure key differ only in loop bound
        values, so per-candidate integer quantities (tile extents,
        fanouts, episode counts) become row-wise products over a stacked
        factor matrix. The batched dense analysis and the vectorized
        capacity prefilter group candidate blocks by this key.
        """
        return tuple(
            (
                lvl.level,
                tuple(l.dim for l in lvl.temporal),
                tuple(l.dim for l in lvl.spatial),
                None if lvl.keep is None else frozenset(lvl.keep),
            )
            for lvl in self.levels
        )

    def describe(self) -> str:
        lines = []
        indent = 0
        for lvl in self.levels:
            lines.append(" " * indent + f"[{lvl.level}]")
            for loop in lvl.loops():
                indent += 2
                lines.append(" " * indent + repr(loop))
        return "\n".join(lines)


def single_level_mapping(
    arch: Architecture,
    einsum: EinsumSpec,
    order: list[str] | None = None,
) -> Mapping:
    """Trivial mapping: all loops temporal at the innermost level.

    Useful for tests and as a mapper seed. ``order`` gives the loop
    order (outermost first); default is the einsum's dim order.
    """
    dims = order or list(einsum.dims)
    levels = []
    for idx, level in enumerate(arch.levels):
        if idx == len(arch.levels) - 1:
            temporal = [Loop(d, einsum.dims[d]) for d in dims]
        else:
            temporal = []
        levels.append(LevelMapping(level.name, temporal))
    return Mapping(levels)
