"""Mappings (loop-nest schedules) and mapspace search."""

from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.mapping.mapspace import MapspaceConstraints, Mapper

__all__ = ["Loop", "LevelMapping", "Mapping", "Mapper", "MapspaceConstraints"]
