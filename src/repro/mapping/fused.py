"""Fused mappings: per-einsum sub-nests sharing a fusion buffer level.

A :class:`FusedMapping` schedules every einsum of an
:class:`~repro.workload.graph.EinsumGraph` with its own
:class:`~repro.mapping.mapping.Mapping` (the *sub-nest*), plus an
explicit ``fuse_at`` storage level where the graph's intermediate
tensors live. Fusion semantics (following the fastfusion
``LinearMapping`` shape):

* each intermediate is produced into — and consumed out of — the
  ``fuse_at`` buffer, never travelling through the levels outside it
  (no DRAM round trip),
* below ``fuse_at`` each einsum keeps its own schedule; the sub-nests
  only need to agree on the intermediate's tile at the fusion level,
* the *degenerate* form (``fuse_at is None``) applies the sub-nests
  verbatim, which is exactly the unfused per-layer evaluation — the
  equivalence oracle the engine tests against ``evaluate_network``.

``mappings`` may be ``None``: the engine then resolves each einsum's
sub-nest through the design's mapping policy
(:meth:`~repro.model.engine.Design.mapping_for`), mirroring the
network path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.spec import Architecture
from repro.common.errors import MappingError
from repro.mapping.mapping import Mapping
from repro.workload.graph import EinsumGraph


@dataclass
class FusedMapping:
    """Per-einsum sub-nests plus the shared fusion level.

    ``mappings`` maps einsum names to sub-nests (``None`` defers to the
    design's mapping policy). ``fuse_at`` names the storage level where
    intermediates are resident; ``None`` is the degenerate (unfused)
    form.
    """

    mappings: dict[str, Mapping] | None = None
    fuse_at: str | None = None

    def mapping_for(self, einsum_name: str) -> Mapping | None:
        if self.mappings is None:
            return None
        return self.mappings.get(einsum_name)

    def validate(self, graph: EinsumGraph, arch: Architecture) -> None:
        """Structural checks against the graph and the hardware.

        * explicit sub-nests name einsums the graph actually has and
          validate against their einsums,
        * ``fuse_at`` names an architecture storage level,
        * when fusing, every sub-nest touching an intermediate keeps it
          at ``fuse_at`` (the fused keep transform strips any keeps
          outside the fusion level; a sub-nest not keeping the tensor
          there at all cannot host the resident copy).

        Tile agreement between producer and consumers at the fusion
        level is value-dependent and checked by the fused dataflow
        analysis.
        """
        if self.mappings is not None:
            known = {spec.name for spec in graph.einsums}
            for name in self.mappings:
                if name not in known:
                    raise MappingError(
                        f"fused mapping schedules unknown einsum {name!r}; "
                        f"graph {graph.name!r} has {sorted(known)}"
                    )
        if self.fuse_at is None:
            return
        if self.fuse_at not in arch.level_names:
            raise MappingError(
                f"fuse_at level {self.fuse_at!r} is not an architecture "
                f"storage level (have {arch.level_names})"
            )
        if self.mappings is not None:
            for tensor in graph.intermediates:
                touching = [graph.producer_of(tensor)] + graph.consumers_of(
                    tensor
                )
                for einsum_name in touching:
                    mapping = self.mappings.get(einsum_name)
                    if mapping is None:
                        continue
                    level = mapping.level(self.fuse_at)
                    if not level.keeps(tensor):
                        raise MappingError(
                            f"intermediate {tensor!r} is fused at "
                            f"{self.fuse_at!r} but einsum {einsum_name!r}'s "
                            f"sub-nest does not keep it there"
                        )

    def fused_levels(
        self, mapping: Mapping, tensor_names: set[str], fused: set[str]
    ) -> Mapping:
        """The fused form of one sub-nest: ``fused`` (the graph's
        intermediates this einsum touches) are stripped from the keep
        sets of every level *outside* ``fuse_at``, pinning them at the
        fusion level. ``tensor_names`` is the einsum's full tensor set,
        needed to materialise ``keep=None`` (keep-everything) levels
        into explicit sets that exclude the intermediates.

        With the keep chain now starting at ``fuse_at``, the ordinary
        dense dataflow analysis produces zero traffic for the tensor at
        the outer levels by construction — the fusion saving is a
        property of the mapping content, so every cache keyed by
        mapping content stays sound with no special cases.
        """
        if self.fuse_at is None or not fused:
            return mapping
        levels = []
        outside = True
        for lvl in mapping.levels:  # outermost first
            if lvl.level == self.fuse_at:
                outside = False
            if outside and (lvl.keep is None or lvl.keep & fused):
                keep = set(lvl.keep if lvl.keep is not None else tensor_names)
                keep -= fused
                levels.append(replace_level(lvl, keep=keep))
            else:
                levels.append(lvl)
        return Mapping(levels)

    def to_spec(self) -> dict:
        """Serializable spec form (also the YAML ``fused:`` section
        shape): per-einsum :meth:`Mapping.to_spec` lists plus the
        fusion level."""
        return {
            "fuse_at": self.fuse_at,
            "mappings": (
                None
                if self.mappings is None
                else {
                    name: mapping.to_spec()
                    for name, mapping in sorted(self.mappings.items())
                }
            ),
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "FusedMapping":
        if not isinstance(spec, dict):
            raise MappingError(
                f"fused mapping spec must be a dict, got "
                f"{type(spec).__name__}"
            )
        mappings = spec.get("mappings")
        if mappings is not None:
            if not isinstance(mappings, dict):
                raise MappingError(
                    "fused mapping 'mappings' must map einsum names to "
                    "mapping specs"
                )
            mappings = {
                name: Mapping.from_spec(entry)
                for name, entry in mappings.items()
            }
        return cls(mappings=mappings, fuse_at=spec.get("fuse_at"))

    def cache_key(self) -> tuple:
        """Canonical hashable content key (sub-nests sorted by einsum
        name so equal fused mappings key identically)."""
        return (
            self.fuse_at,
            None
            if self.mappings is None
            else tuple(
                (name, mapping.cache_key())
                for name, mapping in sorted(self.mappings.items())
            ),
        )


def replace_level(lvl, *, keep):
    """A copy of one :class:`~repro.mapping.mapping.LevelMapping` with a
    new keep set (loops shared — they are immutable)."""
    from repro.mapping.mapping import LevelMapping

    return LevelMapping(
        lvl.level, list(lvl.temporal), list(lvl.spatial), keep=keep
    )
