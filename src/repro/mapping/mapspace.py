"""Mapspace constraints and mapping enumeration (Sec 5.1).

Characterising a design requires finding its best mapping for each
workload, so Sparseloop accepts *mapspace constraints* instead of a
fixed mapping and searches the space they allow. This module provides
the combinatorial machinery: per-dimension factorization across levels,
permutation handling, and exhaustive or random enumeration. Picking the
best candidate by model feedback lives in
:meth:`repro.model.engine.Evaluator.search_mappings`.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.arch.spec import Architecture
from repro.common.errors import MappingError
from repro.common.util import (
    cached_divisors,
    factorization_count,
    factorizations,
    prod,
)
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.workload.einsum import EinsumSpec


@dataclass
class MapspaceConstraints:
    """Restrictions on the allowed schedules (Fig. 6's mapspace input).

    Attributes:
        loop_orders: Fixed temporal loop order (outermost first) per
            level name; dims omitted from the order are appended in
            workload order. ``None`` = search permutations too (only for
            levels listed in ``permute_levels``).
        spatial_dims: Dims allowed to be spatial at each level name.
        keep: Per-level resident tensor sets (``None`` entry = keep all).
        fixed_factors: Pin ``level -> dim -> factor`` tiling choices.
        max_permutations: Cap on permutations searched per level.
    """

    loop_orders: dict[str, list[str]] = field(default_factory=dict)
    spatial_dims: dict[str, list[str]] = field(default_factory=dict)
    keep: dict[str, set[str] | None] = field(default_factory=dict)
    fixed_factors: dict[str, dict[str, int]] = field(default_factory=dict)
    max_permutations: int = 8


class Mapper:
    """Enumerates valid mappings of a workload onto an architecture.

    The mapspace per dimension is the set of factorizations of its
    bound across (temporal slots of every level) + (spatial slots of
    levels allowing that dim spatially). ``enumerate_mappings`` walks it
    exhaustively; ``sample_mappings`` draws random points for large
    spaces.
    """

    def __init__(
        self,
        einsum: EinsumSpec,
        arch: Architecture,
        constraints: MapspaceConstraints | None = None,
    ):
        self.einsum = einsum
        self.arch = arch
        self.constraints = constraints or MapspaceConstraints()
        self.level_names = arch.level_names  # outermost first
        # Slot layout: per dim, temporal slot per level then spatial
        # slots for levels that allow this dim spatially.
        self._spatial_slots: list[tuple[str, str]] = []  # (level, dim)
        for level in self.level_names:
            for dim in self.constraints.spatial_dims.get(level, []):
                if dim not in einsum.dims:
                    raise MappingError(
                        f"constraint allows unknown spatial dim {dim!r} at "
                        f"{level!r}"
                    )
                self._spatial_slots.append((level, dim))

    # ------------------------------------------------------------------
    # Factor enumeration

    def _dim_slot_names(self, dim: str) -> list[tuple[str, str]]:
        """Slots a dim's bound can be split across: ('t'|'s', level)."""
        slots = [("t", level) for level in self.level_names]
        slots += [
            ("s", level) for (level, d) in self._spatial_slots if d == dim
        ]
        return slots

    def _dim_factorizations(self, dim: str) -> Iterator[tuple[int, ...]]:
        bound = self.einsum.dims[dim]
        slots = self._dim_slot_names(dim)
        pinned = {
            ("t", level): level_factors.get(dim)
            for level, level_factors in self.constraints.fixed_factors.items()
        }
        for combo in factorizations(bound, len(slots)):
            ok = True
            for slot, factor in zip(slots, combo):
                want = pinned.get(slot)
                if want is not None and factor != want:
                    ok = False
                    break
            if ok:
                yield combo

    def _random_dim_factorization(
        self, dim: str, rng: random.Random
    ) -> tuple[int, ...]:
        bound = self.einsum.dims[dim]
        slots = self._dim_slot_names(dim)
        remaining = bound
        combo = []
        for _ in range(len(slots) - 1):
            f = rng.choice(cached_divisors(remaining))
            combo.append(f)
            remaining //= f
        combo.append(remaining)
        rng.shuffle(combo)
        return tuple(combo)

    # ------------------------------------------------------------------
    # Mapping construction

    def _build_mapping(
        self, factor_choices: dict[str, tuple[int, ...]]
    ) -> Mapping:
        levels: list[LevelMapping] = []
        for level in self.level_names:
            temporal_factors: dict[str, int] = {}
            spatial_factors: dict[str, int] = {}
            for dim, combo in factor_choices.items():
                slots = self._dim_slot_names(dim)
                for slot, factor in zip(slots, combo):
                    kind, slot_level = slot
                    if slot_level != level or factor == 1:
                        continue
                    if kind == "t":
                        temporal_factors[dim] = factor
                    else:
                        spatial_factors[dim] = factor
            order = self.constraints.loop_orders.get(level)
            ordered_dims = self._ordered(temporal_factors, order)
            temporal = [Loop(d, temporal_factors[d]) for d in ordered_dims]
            spatial = [
                Loop(d, f, spatial=True) for d, f in spatial_factors.items()
            ]
            keep = self.constraints.keep.get(level, None)
            levels.append(LevelMapping(level, temporal, spatial, keep=keep))
        return Mapping(levels)

    def _ordered(
        self, factors: dict[str, int], order: list[str] | None
    ) -> list[str]:
        if order is None:
            return [d for d in self.einsum.dims if d in factors]
        ordered = [d for d in order if d in factors]
        ordered += [d for d in self.einsum.dims if d in factors and d not in ordered]
        return ordered

    # ------------------------------------------------------------------
    # Public enumeration API

    def enumerate_mappings(self, limit: int | None = None) -> Iterator[Mapping]:
        """Exhaustively yield structurally-valid mappings.

        Candidates violating hardware fanout limits are silently
        dropped. ``limit`` caps the number of yielded mappings.
        """
        dims = list(self.einsum.dims)
        produced = 0
        spaces = [list(self._dim_factorizations(d)) for d in dims]
        for combos in itertools.product(*spaces):
            mapping = self._build_mapping(dict(zip(dims, combos)))
            if not self._structurally_valid(mapping):
                continue
            yield mapping
            produced += 1
            if limit is not None and produced >= limit:
                return

    def sample_mappings(
        self, count: int, seed: int | None = None, max_tries: int | None = None
    ) -> Iterator[Mapping]:
        """Yield up to ``count`` random valid mappings."""
        rng = random.Random(seed)
        dims = list(self.einsum.dims)
        tries = 0
        produced = 0
        budget = max_tries or count * 50
        while produced < count and tries < budget:
            tries += 1
            combos = {
                d: self._random_dim_factorization(d, rng) for d in dims
            }
            mapping = self._build_mapping(combos)
            if self._structurally_valid(mapping):
                produced += 1
                yield mapping

    def _structurally_valid(self, mapping: Mapping) -> bool:
        try:
            mapping.validate(self.einsum, self.arch)
        except MappingError:
            return False
        return True

    def mapspace_size_estimate(self) -> int:
        """Upper bound on the factorization space (permutations excluded).

        Computed in closed form per dimension (stars-and-bars over the
        prime exponents) — no enumeration, so it is cheap even for huge
        mapspaces.
        """
        total = 1
        for dim in self.einsum.dims:
            slots = len(self._dim_slot_names(dim))
            bound = self.einsum.dims[dim]
            total *= factorization_count(bound, slots)
        return total
