"""Mapspace constraints and mapping enumeration (Sec 5.1).

Characterising a design requires finding its best mapping for each
workload, so Sparseloop accepts *mapspace constraints* instead of a
fixed mapping and searches the space they allow. This module provides
the combinatorial machinery: per-dimension factorization across levels,
permutation handling, and exhaustive or random enumeration. Picking the
best candidate by model feedback lives in
:meth:`repro.model.engine.Evaluator.search_mappings`.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.arch.spec import Architecture
from repro.common.errors import MappingError
from repro.common.util import (
    cached_divisors,
    factorization_count,
    factorizations,
    prod,
)
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.workload.einsum import EinsumSpec


@dataclass
class MapspaceConstraints:
    """Restrictions on the allowed schedules (Fig. 6's mapspace input).

    Attributes:
        loop_orders: Fixed temporal loop order (outermost first) per
            level name; dims omitted from the order are appended in
            workload order. ``None`` = search permutations too (only for
            levels listed in ``permute_levels``).
        spatial_dims: Dims allowed to be spatial at each level name.
        keep: Per-level resident tensor sets (``None`` entry = keep all).
        fixed_factors: Pin ``level -> dim -> factor`` tiling choices.
        max_permutations: Cap on permutations searched per level.
    """

    loop_orders: dict[str, list[str]] = field(default_factory=dict)
    spatial_dims: dict[str, list[str]] = field(default_factory=dict)
    keep: dict[str, set[str] | None] = field(default_factory=dict)
    fixed_factors: dict[str, dict[str, int]] = field(default_factory=dict)
    max_permutations: int = 8

    def cache_key(self) -> tuple:
        """Canonical hashable content key (sorted, order-insensitive
        for the dict containers, order-preserving for the lists whose
        order matters — loop orders and spatial priority)."""
        return (
            tuple(
                (level, tuple(dims))
                for level, dims in sorted(self.loop_orders.items())
            ),
            tuple(
                (level, tuple(dims))
                for level, dims in sorted(self.spatial_dims.items())
            ),
            tuple(
                (level, None if tensors is None else tuple(sorted(tensors)))
                for level, tensors in sorted(self.keep.items())
            ),
            tuple(
                (level, tuple(sorted(factors.items())))
                for level, factors in sorted(self.fixed_factors.items())
            ),
            self.max_permutations,
        )


#: Cache-stage name under which sampled candidate streams are memoised
#: (see :func:`sampled_candidates_key` and the engine's search path).
CANDIDATES_STAGE = "candidates"


def sampled_candidates_key(
    einsum: EinsumSpec,
    arch: Architecture,
    constraints: MapspaceConstraints,
    seed: int | None,
    count: int,
    max_tries: int | None = None,
) -> tuple:
    """Content key of one :meth:`Mapper.sample_mappings` stream.

    The stream is a pure function of the mapspace (einsum dims, the
    architecture's level/fanout structure, the constraints) and the
    sampling parameters (seed, count, try budget): witnesses never
    alter the draws — they only withhold doomed candidates — so the
    *unpruned* stream is deterministic under this key and can be
    replayed across searches, evaluators, and processes.
    """
    return (
        CANDIDATES_STAGE,
        einsum.cache_key(),
        arch.cache_key(),
        constraints.cache_key(),
        seed,
        count,
        max_tries,
    )


class Mapper:
    """Enumerates valid mappings of a workload onto an architecture.

    The mapspace per dimension is the set of factorizations of its
    bound across (temporal slots of every level) + (spatial slots of
    levels allowing that dim spatially). ``enumerate_mappings`` walks it
    exhaustively; ``sample_mappings`` draws random points for large
    spaces.
    """

    def __init__(
        self,
        einsum: EinsumSpec,
        arch: Architecture,
        constraints: MapspaceConstraints | None = None,
    ):
        self.einsum = einsum
        self.arch = arch
        self.constraints = constraints or MapspaceConstraints()
        self.level_names = arch.level_names  # outermost first
        self._level_order = {name: i for i, name in enumerate(self.level_names)}
        # Constraints must name real levels: a typo'd level would
        # otherwise be silently ignored (its pins/orders/keeps never
        # consulted), which reads as "constraint accepted" while the
        # search roams the unconstrained space.
        for option, per_level in (
            ("loop_orders", self.constraints.loop_orders),
            ("spatial_dims", self.constraints.spatial_dims),
            ("keep", self.constraints.keep),
            ("fixed_factors", self.constraints.fixed_factors),
        ):
            for level in per_level:
                if level not in self._level_order:
                    raise MappingError(
                        f"constraint {option} names unknown level "
                        f"{level!r}; architecture has {self.level_names}"
                    )
        # ...and real dimensions: a typo'd dim in a loop order or a
        # pinned factor would be looked up with `.get` and silently
        # never enforced (the same silent-acceptance class as the level
        # names above; spatial_dims already validates its dims below).
        for option, dims_of_level in (
            ("loop_orders", self.constraints.loop_orders),
            ("fixed_factors", self.constraints.fixed_factors),
        ):
            for level, dims in dims_of_level.items():
                for dim in dims:
                    if dim not in einsum.dims:
                        raise MappingError(
                            f"constraint {option} at {level!r} names "
                            f"unknown dim {dim!r}; workload has "
                            f"{sorted(einsum.dims)}"
                        )
        # Slot layout: per dim, temporal slot per level then spatial
        # slots for levels that allow this dim spatially.
        self._spatial_slots: list[tuple[str, str]] = []  # (level, dim)
        for level in self.level_names:
            for dim in self.constraints.spatial_dims.get(level, []):
                if dim not in einsum.dims:
                    raise MappingError(
                        f"constraint allows unknown spatial dim {dim!r} at "
                        f"{level!r}"
                    )
                self._spatial_slots.append((level, dim))
        self._slot_levels_cache: dict[str, list[int]] = {}
        self._dim_pins_cache: dict[str, dict[int, int]] = {}
        self._dim_slots_cache: dict[str, list[tuple[str, str]]] = {}
        self._draw_ctx: tuple[bool, list[tuple[int, list[tuple[str, int]]]]] | None = None
        # ...and satisfiable pins: factors that are non-positive or
        # cannot tile their dim's bound make the whole mapspace empty.
        # Failing here attributes that to the malformed constraint
        # instead of a later, misleading "no valid mapping found".
        for dim in einsum.dims:
            if not self._pins_satisfiable(dim):
                pins = {
                    level: factors[dim]
                    for level, factors in self.constraints.fixed_factors.items()
                    if dim in factors
                }
                raise MappingError(
                    f"fixed_factors pins {pins} cannot tile dim {dim!r} "
                    f"(bound {einsum.dims[dim]}); the mapspace is empty"
                )
        # Capacity-overflow feedback (engine prefilter -> mapper): per
        # level, monotone infeasibility witnesses. A witness ``w`` means
        # any candidate whose per-dim tile extents at that level
        # dominate ``w`` (>= in every dim) is guaranteed to overflow,
        # so enumeration/sampling drops it — and whole factorization
        # subtrees when a chosen prefix already seals the dominance.
        self._overflow_witnesses: dict[str, list[dict[str, int]]] = {}
        #: Candidates dropped by witness dominance (observability).
        self.pruned_candidates = 0
        #: Factorization subtrees cut before enumeration reached them.
        self.pruned_subtrees = 0

    # ------------------------------------------------------------------
    # Factor enumeration

    def _dim_slot_names(self, dim: str) -> list[tuple[str, str]]:
        """Slots a dim's bound can be split across: ('t'|'s', level).

        Cached per dim: the sampler asks for the same slot list on
        every candidate draw. Callers must not mutate the result.
        """
        slots = self._dim_slots_cache.get(dim)
        if slots is None:
            slots = [("t", level) for level in self.level_names]
            slots += [
                ("s", level) for (level, d) in self._spatial_slots if d == dim
            ]
            self._dim_slots_cache[dim] = slots
        return slots

    def _dim_factorizations(self, dim: str) -> Iterator[tuple[int, ...]]:
        bound = self.einsum.dims[dim]
        slots = self._dim_slot_names(dim)
        pinned = {
            ("t", level): level_factors.get(dim)
            for level, level_factors in self.constraints.fixed_factors.items()
        }
        for combo in factorizations(bound, len(slots)):
            ok = True
            for slot, factor in zip(slots, combo):
                want = pinned.get(slot)
                if want is not None and factor != want:
                    ok = False
                    break
            if ok:
                yield combo

    def _dim_pins(self, dim: str) -> dict[int, int]:
        """Pinned slots of ``dim``: slot index -> fixed factor, from
        ``constraints.fixed_factors`` (temporal slots only, matching
        :meth:`_dim_factorizations`)."""
        pins = self._dim_pins_cache.get(dim)
        if pins is None:
            pins = {}
            for index, (kind, level) in enumerate(self._dim_slot_names(dim)):
                if kind != "t":
                    continue
                factor = self.constraints.fixed_factors.get(level, {}).get(dim)
                if factor is not None:
                    pins[index] = factor
            self._dim_pins_cache[dim] = pins
        return pins

    def _pins_satisfiable(self, dim: str) -> bool:
        """True when the pinned factors of ``dim`` can tile its bound
        (their product divides it; all-slots-pinned needs an exact
        tile). Unsatisfiable pins would make the whole mapspace empty,
        so :meth:`__init__` rejects them outright."""
        pins = self._dim_pins(dim)
        quotient = self.einsum.dims[dim]
        for factor in pins.values():
            if factor <= 0 or quotient % factor:
                return False
            quotient //= factor
        slots = len(self._dim_slot_names(dim))
        return quotient == 1 if len(pins) == slots else True

    def _random_dim_factorization(
        self, dim: str, rng: random.Random
    ) -> tuple[int, ...]:
        """A uniform-ish random slot factorization honouring the pins.

        Pinned slots take their fixed factor directly; only the free
        slots are drawn, from the pinned-down quotient — every draw
        conforms by construction, so pins never trigger redraw loops
        (and never desynchronise the documented RNG stream contract:
        with no pins the draw sequence is exactly the historical one).
        Pin satisfiability was established at :meth:`__init__`.
        """
        bound = self.einsum.dims[dim]
        slots = self._dim_slot_names(dim)
        pins = self._dim_pins(dim)
        remaining = bound
        for factor in pins.values():
            remaining //= factor
        free = len(slots) - len(pins)
        combo = []
        if free > 0:
            for _ in range(free - 1):
                f = rng.choice(cached_divisors(remaining))
                combo.append(f)
                remaining //= f
            combo.append(remaining)
            rng.shuffle(combo)
        if not pins:
            return tuple(combo)
        free_factors = iter(combo)
        return tuple(
            pins[index] if index in pins else next(free_factors)
            for index in range(len(slots))
        )

    # ------------------------------------------------------------------
    # Capacity-overflow feedback (monotone dominance pruning)

    def register_overflow(self, level: str, dim_extents: dict[str, int]) -> None:
        """Record a monotone infeasibility witness for ``level``.

        The engine's capacity prefilter calls this when a candidate's
        tile at ``level`` overflows even under a *monotone* occupancy
        bound (dense tile sizes, expected occupancy for compressed
        tensors). Because that bound grows with every per-dim tile
        extent, any other candidate whose extents at ``level`` dominate
        the witness (>= in every dimension) must overflow too, so
        enumeration and sampling drop it — whole factorization subtrees
        at once when a chosen prefix already seals the dominance. The
        search result never changes: every pruned candidate is one the
        prefilter, and therefore the full validity check, would reject.

        The witness set is kept minimal: new witnesses dominated by an
        existing one are discarded, and existing witnesses dominated by
        a new one are replaced.
        """
        if level not in self.level_names:
            raise MappingError(
                f"overflow registered for unknown level {level!r}; "
                f"architecture has {self.level_names}"
            )
        witness = {d: int(e) for d, e in dim_extents.items() if int(e) > 1}
        witnesses = self._overflow_witnesses.setdefault(level, [])
        for existing in witnesses:
            if all(witness.get(d, 1) >= v for d, v in existing.items()):
                return  # an existing witness already prunes a superset
        witnesses[:] = [
            w
            for w in witnesses
            if not all(w.get(d, 1) >= v for d, v in witness.items())
        ]
        witnesses.append(witness)

    @property
    def overflow_witness_count(self) -> int:
        return sum(len(w) for w in self._overflow_witnesses.values())

    def export_witnesses(self) -> dict[str, list[dict[str, int]]]:
        """JSON-safe snapshot of the overflow-witness set.

        Plain ``{level: [{dim: extent, ...}, ...]}`` with int extents —
        the wire form the distributed search layer ships between
        shards. Empty levels are dropped.
        """
        return {
            level: [dict(w) for w in witnesses]
            for level, witnesses in self._overflow_witnesses.items()
            if witnesses
        }

    def import_witnesses(
        self, witnesses: dict[str, list[dict[str, int]]]
    ) -> None:
        """Replace the witness set with an :meth:`export_witnesses`
        snapshot.

        Replacement (not merging) is deliberate: a snapshot is an
        authoritative point-in-time state of the single-host scan
        timeline, and a shard fast-forwarding its replay to that point
        must hold *exactly* that state — merging in witnesses the
        single-host scan had not yet registered would withhold
        candidates it had not yet learned to withhold, shifting stream
        indices.
        """
        imported: dict[str, list[dict[str, int]]] = {}
        for level, entries in witnesses.items():
            if level not in self.level_names:
                raise MappingError(
                    f"witness snapshot names unknown level {level!r}; "
                    f"architecture has {self.level_names}"
                )
            imported[level] = [
                {str(d): int(e) for d, e in entry.items()} for entry in entries
            ]
        self._overflow_witnesses = imported

    def _slot_levels(self, dim: str) -> list[int]:
        """Per slot of ``dim``, the outermost-first index of its level."""
        cached = self._slot_levels_cache.get(dim)
        if cached is None:
            cached = [
                self._level_order[level]
                for (_kind, level) in self._dim_slot_names(dim)
            ]
            self._slot_levels_cache[dim] = cached
        return cached

    def _dim_extent_at(
        self, dim: str, combo: tuple[int, ...], level_index: int
    ) -> int:
        """Tile extent of ``dim`` at a level: the product of factors in
        slots at or inside that level (temporal and spatial)."""
        extent = 1
        for slot_index, factor in zip(self._slot_levels(dim), combo):
            if slot_index >= level_index:
                extent *= factor
        return extent

    def _combo_sort_key(self, dim: str, combo: tuple[int, ...]) -> tuple:
        """Ascending tile extents, innermost level most significant."""
        last = len(self.level_names) - 1
        return tuple(
            self._dim_extent_at(dim, combo, index)
            for index in range(last, -1, -1)
        )

    def _witness_dominated(
        self, dims: list[str], combos: list[tuple[int, ...]]
    ) -> bool:
        """True when a full candidate dominates a registered witness."""
        if not self._overflow_witnesses:
            return False
        for level, witnesses in self._overflow_witnesses.items():
            level_index = self._level_order[level]
            for witness in witnesses:
                dominated = True
                for j, dim in enumerate(dims):
                    need = witness.get(dim, 1)
                    if need <= 1:
                        continue
                    if self._dim_extent_at(dim, combos[j], level_index) < need:
                        dominated = False
                        break
                if dominated:
                    return True
        return False

    def mapping_dominated(self, mapping: Mapping) -> bool:
        """True when a built mapping dominates a registered witness.

        The replayed-stream equivalent of the yield-time check inside
        :meth:`enumerate_mappings` / :meth:`sample_mappings`: a search
        that scans a *materialised* candidate list (e.g. a memoised
        sampled stream) calls this per candidate to withhold exactly
        the candidates the live generator would have withheld, keeping
        stream positions — and therefore tie-breaking indices —
        identical to the generator-driven scan.
        """
        if not self._overflow_witnesses:
            return False
        extents = {dim: 1 for dim in self.einsum.dims}
        for level_map in reversed(mapping.levels):  # innermost first
            for loop in level_map.temporal + level_map.spatial:
                extents[loop.dim] *= loop.bound
            witnesses = self._overflow_witnesses.get(level_map.level)
            if not witnesses:
                continue
            for witness in witnesses:
                if all(extents.get(d, 1) >= v for d, v in witness.items()):
                    return True
        return False

    def _subtree_dominated(
        self, dims: list[str], chosen: list[tuple[int, ...]]
    ) -> bool:
        """True when every completion of the chosen prefix dominates a
        witness: the chosen dims already meet the witness extents and
        the witness asks nothing (> 1) of the unchosen dims, whose
        extents are always >= 1."""
        if not self._overflow_witnesses:
            return False
        k = len(chosen)
        for level, witnesses in self._overflow_witnesses.items():
            level_index = self._level_order[level]
            for witness in witnesses:
                if any(witness.get(d, 1) > 1 for d in dims[k:]):
                    continue
                if all(
                    self._dim_extent_at(d, chosen[j], level_index)
                    >= witness.get(d, 1)
                    for j, d in enumerate(dims[:k])
                ):
                    return True
        return False

    # ------------------------------------------------------------------
    # Mapping construction

    def _build_mapping(
        self, factor_choices: dict[str, tuple[int, ...]]
    ) -> Mapping:
        levels: list[LevelMapping] = []
        for level in self.level_names:
            temporal_factors: dict[str, int] = {}
            spatial_factors: dict[str, int] = {}
            for dim, combo in factor_choices.items():
                slots = self._dim_slot_names(dim)
                for slot, factor in zip(slots, combo):
                    kind, slot_level = slot
                    if slot_level != level or factor == 1:
                        continue
                    if kind == "t":
                        temporal_factors[dim] = factor
                    else:
                        spatial_factors[dim] = factor
            order = self.constraints.loop_orders.get(level)
            ordered_dims = self._ordered(temporal_factors, order)
            temporal = [Loop(d, temporal_factors[d]) for d in ordered_dims]
            spatial = [
                Loop(d, f, spatial=True) for d, f in spatial_factors.items()
            ]
            keep = self.constraints.keep.get(level, None)
            levels.append(LevelMapping(level, temporal, spatial, keep=keep))
        return Mapping(levels)

    def _ordered(
        self, factors: dict[str, int], order: list[str] | None
    ) -> list[str]:
        if order is None:
            return [d for d in self.einsum.dims if d in factors]
        ordered = [d for d in order if d in factors]
        ordered += [d for d in self.einsum.dims if d in factors and d not in ordered]
        return ordered

    # ------------------------------------------------------------------
    # Public enumeration API

    def enumerate_mappings(self, limit: int | None = None) -> Iterator[Mapping]:
        """Exhaustively yield structurally-valid mappings.

        Candidates violating hardware fanout limits are silently
        dropped, as are candidates dominated by a registered overflow
        witness (:meth:`register_overflow`). When no ``limit`` is set —
        the engine's exhaustive-search path — whole factorization
        subtrees are cut as soon as a chosen prefix seals a dominance.
        Witnesses may be registered *while* this generator is being
        consumed; later candidates observe them immediately.

        Candidates are visited inner-tiles-first (ascending tile
        extents at the innermost levels): capacity overflow grows with
        the inner tile, so a model-driven consumer that registers
        witnesses as it scans sees the infeasibility frontier early and
        prunes everything beyond it.
        """
        dims = list(self.einsum.dims)
        spaces = [
            sorted(
                self._dim_factorizations(d),
                key=lambda combo, d=d: self._combo_sort_key(d, combo),
            )
            for d in dims
        ]
        prune_subtrees = limit is None

        def walk(k: int, chosen: list[tuple[int, ...]]) -> Iterator[Mapping]:
            if k == len(dims):
                mapping = self._build_mapping(dict(zip(dims, chosen)))
                if not self._structurally_valid(mapping):
                    return
                if self._witness_dominated(dims, chosen):
                    self.pruned_candidates += 1
                    return
                yield mapping
                return
            for combo in spaces[k]:
                chosen.append(combo)
                if (
                    prune_subtrees
                    and k + 1 < len(dims)
                    and self._subtree_dominated(dims, chosen)
                ):
                    self.pruned_subtrees += 1
                else:
                    yield from walk(k + 1, chosen)
                chosen.pop()

        produced = 0
        for mapping in walk(0, []):
            yield mapping
            produced += 1
            if limit is not None and produced >= limit:
                return

    def sample_mappings(
        self, count: int, seed: int | None = None, max_tries: int | None = None
    ) -> Iterator[Mapping]:
        """Yield up to ``count`` random valid mappings.

        Structurally-valid candidates dominated by an overflow witness
        still count toward ``count`` but are not yielded: a pruned run
        draws exactly the same random candidates as an unpruned one and
        merely withholds the doomed ones, so a model-driven search over
        the samples finds the same winner either way. Draws honour
        ``constraints.fixed_factors`` by construction (pinned slots are
        fixed, only the free slots are drawn), so pins neither produce
        non-conforming candidates nor perturb the draw sequence of
        unpinned dimensions. ``max_tries`` caps the structural-validity
        rejection loop; an explicit ``0`` means no tries at all (only
        ``None`` selects the default ``count * 50`` budget).
        """
        rng = random.Random(seed)
        dims = list(self.einsum.dims)
        tries = 0
        produced = 0
        budget = count * 50 if max_tries is None else max_tries
        while produced < count and tries < budget:
            tries += 1
            combos = {
                d: self._random_dim_factorization(d, rng) for d in dims
            }
            # Structural validity is decided on the combos themselves
            # (see _combo_structurally_valid): rejected draws never pay
            # a Mapping construction, accepted ones are valid by the
            # same rules Mapping.validate enforces.
            if not self._combo_structurally_valid(combos):
                continue
            produced += 1
            if self._witness_dominated(dims, [combos[d] for d in dims]):
                self.pruned_candidates += 1
                continue
            yield self._build_mapping(combos)

    def _structurally_valid(self, mapping: Mapping) -> bool:
        try:
            mapping.validate(self.einsum, self.arch)
        except MappingError:
            return False
        return True

    def _combo_structurally_valid(
        self, combos: dict[str, tuple[int, ...]]
    ) -> bool:
        """:meth:`Mapping.validate` evaluated directly on slot combos.

        Sampled draws satisfy most of ``validate`` *by construction*:
        level names match the architecture, factor products tile every
        bound exactly, and all dims are known. What remains is the
        spatial-fanout limit (genuinely draw-dependent) and the
        draw-independent checks (instance ratios, keep-set residency),
        which are computed once and reused. Accepts exactly the combos
        whose built mapping passes ``validate``, without paying a
        :class:`Mapping` construction for rejected draws.
        """
        ctx = self._draw_ctx
        if ctx is None:
            ctx = self._draw_ctx = self._build_draw_ctx()
        static_ok, spatial_checks = ctx
        if not static_ok:
            return False
        for available, slots in spatial_checks:
            fanout = 1
            for dim, index in slots:
                fanout *= combos[dim][index]
            if fanout > available:
                return False
        return True

    def _build_draw_ctx(
        self,
    ) -> tuple[bool, list[tuple[int, list[tuple[str, int]]]]]:
        """Draw-independent validity facts for sampled candidates.

        Returns ``(static_ok, spatial_checks)``: ``static_ok`` covers
        the checks no draw can change (hardware instance ratios, keep
        residency under the fixed constraint keep sets, fanout room at
        levels with no spatial slots), ``spatial_checks`` lists, per
        level that can receive spatial factors, the available child
        instances and the (dim, slot index) positions contributing to
        that level's fanout.
        """
        ordered = self.level_names
        static_ok = True
        for tensor in self.einsum.tensors:
            if not any(
                self.constraints.keep.get(level) is None
                or tensor.name in self.constraints.keep[level]
                for level in ordered
            ):
                static_ok = False
        spatial_checks: list[tuple[int, list[tuple[str, int]]]] = []
        for idx, level in enumerate(ordered):
            parent_instances = (
                self.arch.level(ordered[idx - 1]).instances if idx else 1
            )
            below_instances = (
                self.arch.level(ordered[idx + 1]).instances
                if idx + 1 < len(ordered)
                else self.arch.compute.instances
            )
            this_instances = self.arch.level(level).instances
            if this_instances % parent_instances != 0:
                static_ok = False
            available = below_instances // this_instances
            slots = [
                (dim, index)
                for dim in self.einsum.dims
                for index, (kind, slot_level) in enumerate(
                    self._dim_slot_names(dim)
                )
                if kind == "s" and slot_level == level
            ]
            if slots:
                spatial_checks.append((available, slots))
            elif available < 1:
                # A draw puts no spatial factor here, so its fanout is
                # exactly 1 — which still needs one child instance.
                static_ok = False
        return static_ok, spatial_checks

    def mapspace_size_estimate(self) -> int:
        """Upper bound on the factorization space (permutations excluded).

        Computed in closed form per dimension (stars-and-bars over the
        prime exponents) — no enumeration, so it is cheap even for huge
        mapspaces.
        """
        total = 1
        for dim in self.einsum.dims:
            slots = len(self._dim_slot_names(dim))
            bound = self.einsum.dims[dim]
            total *= factorization_count(bound, slots)
        return total
