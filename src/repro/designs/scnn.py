"""SCNN [37] model (Table 3 row 3, Fig. 11).

SCNN runs a PlanarTiled-InputStationary-CartesianProduct dataflow:
compressed inputs stay stationary in each PE while compressed weights
stream past, and every (input nonzero x weight nonzero) pair multiplies
— skipping all ineffectual work (``Skip W <- I``, ``Skip O <- I & W``)
with gating mopping up the compute units. Both operand tensors use a
three-level B-UOP-RLE format.
"""

from __future__ import annotations

from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.designs.common import generic_matmul_mapping, split_factor
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.model.engine import Design
from repro.sparse.formats import (
    Bitmask,
    FormatRank,
    FormatSpec,
    RunLengthEncoding,
    UncompressedOffsetPairs,
)
from repro.sparse.saf import SAFSpec, gate_compute, skip_storage
from repro.workload.spec import Workload

#: SCNN has an 8x8 PE array; each PE has a 4x4 multiplier array.
NUM_PES = 64
MULTS_PER_PE = 16


def scnn_format() -> FormatSpec:
    """B-UOP-RLE (Table 3)."""
    return FormatSpec(
        [
            FormatRank(Bitmask(), flattened_ranks=2),
            FormatRank(UncompressedOffsetPairs()),
            FormatRank(RunLengthEncoding(run_bits=4)),
        ]
    )


def build_architecture() -> Architecture:
    return Architecture(
        "scnn",
        [
            StorageLevel(
                "DRAM",
                capacity_words=None,
                component="dram",
                read_bandwidth=8,
                write_bandwidth=8,
            ),
            StorageLevel(
                "IARAM",  # per-PE input/weight RAM pair, modeled jointly
                capacity_words=10 * 1024,
                component="sram",
                instances=NUM_PES,
                read_bandwidth=4,
                write_bandwidth=4,
            ),
            StorageLevel(
                "AccumBuf",
                capacity_words=1536,
                component="regfile",
                instances=NUM_PES,
                read_bandwidth=8,
                write_bandwidth=8,
            ),
        ],
        ComputeLevel("MULT", instances=NUM_PES * MULTS_PER_PE),
    )


def planar_tiled_mapping(workload: Workload, arch) -> Mapping:
    """Planar tiling over (p, q) across PEs; inputs stationary inside."""
    dims = dict(workload.einsum.dims)
    if set(dims) == {"m", "k", "n"}:
        return generic_matmul_mapping(workload, arch)

    dims = dict(workload.einsum.dims)
    k = dims.get("k", 1)
    c = dims.get("c", 1)
    p = dims.get("p", 1)
    q = dims.get("q", 1)
    r = dims.get("r", 1)
    s = dims.get("s", 1)
    n = dims.get("n", 1)

    p1, p_s = split_factor(p, 8)
    q1, q_s = split_factor(q, 8)
    k1, k0 = split_factor(k, 16)
    k0t, k0s = split_factor(k0, 4)
    c1, c0 = split_factor(c, 4)
    c0t, c0s = split_factor(c0, 4)

    dram = [Loop("n", n), Loop("c", c1), Loop("k", k1)]
    # Planar (p, q) tiling fans out across the 8x8 PE array: the
    # spatial loops sit at DRAM, distributing tiles to per-PE IARAMs.
    dram_s = []
    if p_s > 1:
        dram_s.append(Loop("p", p_s, spatial=True))
    if q_s > 1:
        dram_s.append(Loop("q", q_s, spatial=True))
    iaram_t = [Loop("p", p1), Loop("q", q1)]
    # Cartesian product inside the PE: the 4x4 multiplier array takes
    # (k, c) pairs spatially; weights (k, r, s) stream against
    # stationary input slivers.
    accum_t = [Loop("c", c0t), Loop("k", k0t), Loop("r", r), Loop("s", s)]
    accum_s = []
    if k0s > 1:
        accum_s.append(Loop("k", k0s, spatial=True))
    if c0s > 1:
        accum_s.append(Loop("c", c0s, spatial=True))

    def prune(loops):
        return [l for l in loops if l.bound > 1]

    return Mapping(
        [
            LevelMapping("DRAM", prune(dram), dram_s),
            LevelMapping("IARAM", prune(iaram_t), keep={"I", "W"}),
            LevelMapping("AccumBuf", prune(accum_t), accum_s, keep={"O"}),
        ]
    )


def scnn_design() -> Design:
    fmt = scnn_format()
    formats = {}
    for level in ("DRAM", "IARAM"):
        formats[(level, "I")] = fmt
        formats[(level, "W")] = fmt
    safs = SAFSpec(
        formats=formats,
        storage_safs=[
            skip_storage("W", ["I"], "IARAM"),
            skip_storage("O", ["I", "W"], "AccumBuf"),
        ],
        compute_safs=[gate_compute()],
    )
    return Design(
        name="scnn",
        arch=build_architecture(),
        safs=safs,
        mapping_factory=planar_tiled_mapping,
    )


def dense_scnn_design() -> Design:
    return Design(
        name="scnn-dense",
        arch=build_architecture(),
        safs=SAFSpec(),
        mapping_factory=planar_tiled_mapping,
    )
