"""Sec 7.2 co-design study: dataflow x SAF combinations for spMspM.

Hardware budget: 256 compute units (with per-unit accumulator
registers) and 128KB on-chip storage (Table 8).

Dataflows:
* **ReuseABZ** — all three tensors reuse the shared buffer; each
  on-chip B tile is reused across many A tiles.
* **ReuseAZ** — B gets no on-chip reuse: it streams from DRAM straight
  to the intersection/compute units.

SAF sets (representation formats identical across choices):
* **InnermostSkip** — ``Skip A <-> B`` intersection *on chip only*. For
  a streamed B this means B is fetched from DRAM first and discarded
  after the intersection — the off-chip traffic is not saved.
* **HierarchicalSkip** — the intersection also filters off-chip
  traffic: tile-granular for buffered tensors, stream-granular for a
  streamed B.

The mapping determines whether the off-chip intersection has leverage:
under ReuseABZ a B tile transfer is eliminated only when *all* the A
tiles it will meet are empty, which the leader-tile analysis (Fig. 10)
prices at nearly zero probability — making ReuseABZ.HierarchicalSkip
never the best design, exactly the paper's observation.
"""

from __future__ import annotations

from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.designs.common import split_factor
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.model.engine import Design
from repro.sparse.formats import (
    CoordinatePayload,
    FormatRank,
    FormatSpec,
    UncompressedOffsetPairs,
)
from repro.sparse.saf import (
    SAFKind,
    SAFSpec,
    StorageSAF,
    double_sided,
    skip_compute,
)
from repro.workload.spec import Workload

NUM_COMPUTES = 256
BUFFER_WORDS = 64 * 1024  # 128KB of 16-bit words
SPATIAL_X = 16
SPATIAL_Y = 16


def build_architecture(name: str) -> Architecture:
    return Architecture(
        name,
        [
            StorageLevel(
                "DRAM",
                capacity_words=None,
                component="dram",
                read_bandwidth=16,
                write_bandwidth=16,
            ),
            StorageLevel(
                "Buffer",
                capacity_words=BUFFER_WORDS,
                component="sram",
                read_bandwidth=32,
                write_bandwidth=32,
            ),
            StorageLevel(
                "Reg",
                capacity_words=32,
                component="regfile",
                instances=NUM_COMPUTES,
                read_bandwidth=4,
                write_bandwidth=4,
            ),
        ],
        ComputeLevel("MAC", instances=NUM_COMPUTES),
    )


def csr_format() -> FormatSpec:
    return FormatSpec(
        [
            FormatRank(UncompressedOffsetPairs()),
            FormatRank(CoordinatePayload()),
        ]
    )


def _prune(loops):
    return [l for l in loops if l.bound > 1]


def reuse_abz_mapping(workload: Workload, arch) -> Mapping:
    """All tensors tiled for buffer reuse; full k on chip so partial
    sums never spill; B tiles stationary across the m loop."""
    dims = workload.einsum.dims
    m1, m0 = split_factor(dims["m"], 32)
    n1, n0 = split_factor(dims["n"], 32)
    m0t, m_s = split_factor(m0, SPATIAL_X)
    n0t, n_s = split_factor(n0, SPATIAL_Y)
    spatial = []
    if m_s > 1:
        spatial.append(Loop("m", m_s, spatial=True))
    if n_s > 1:
        spatial.append(Loop("n", n_s, spatial=True))
    return Mapping(
        [
            LevelMapping("DRAM", _prune([Loop("n", n1), Loop("m", m1)])),
            LevelMapping(
                "Buffer",
                _prune([Loop("m", m0t), Loop("n", n0t)]),
                spatial,
            ),
            LevelMapping("Reg", _prune([Loop("k", dims["k"])]), keep={"Z"}),
        ]
    )


def reuse_az_mapping(workload: Workload, arch) -> Mapping:
    """A and Z reuse the buffer; B streams from DRAM (no on-chip keep)."""
    dims = workload.einsum.dims
    m1, m0 = split_factor(dims["m"], 64)
    n1, n0 = split_factor(dims["n"], 16)
    m0t, m_s = split_factor(m0, SPATIAL_X)
    n0t, n_s = split_factor(n0, SPATIAL_Y)
    spatial = []
    if m_s > 1:
        spatial.append(Loop("m", m_s, spatial=True))
    if n_s > 1:
        spatial.append(Loop("n", n_s, spatial=True))
    return Mapping(
        [
            LevelMapping("DRAM", _prune([Loop("m", m1), Loop("n", n1)])),
            LevelMapping(
                "Buffer",
                _prune([Loop("m", m0t), Loop("n", n0t)]),
                spatial,
                keep={"A", "Z"},
            ),
            LevelMapping("Reg", _prune([Loop("k", dims["k"])]), keep={"Z"}),
        ]
    )


def build_design(dataflow: str, saf_choice: str) -> Design:
    """Build one of the four Table 8 combinations.

    ``dataflow`` in {"ReuseABZ", "ReuseAZ"}; ``saf_choice`` in
    {"InnermostSkip", "HierarchicalSkip"}.
    """
    if dataflow == "ReuseABZ":
        mapping_factory = reuse_abz_mapping
        b_levels = [("DRAM", "B"), ("Buffer", "B")]
        b_on_chip = True
    elif dataflow == "ReuseAZ":
        mapping_factory = reuse_az_mapping
        b_levels = [("DRAM", "B")]
        b_on_chip = False
    else:
        raise ValueError(f"unknown dataflow {dataflow!r}")

    # The on-chip intersection always exists and always skips compute.
    compute_safs = [skip_compute(["A", "B"])]
    storage_safs: list[StorageSAF] = []
    if b_on_chip:
        storage_safs += double_sided(SAFKind.SKIP, "A", "B", "Buffer")
    else:
        # Only A lives on chip; B is intersected as it streams past.
        storage_safs.append(StorageSAF(SAFKind.SKIP, "A", ("B",), "Buffer"))

    if saf_choice == "HierarchicalSkip":
        storage_safs += double_sided(SAFKind.SKIP, "A", "B", "DRAM")
    elif saf_choice != "InnermostSkip":
        raise ValueError(f"unknown SAF choice {saf_choice!r}")

    fmt = csr_format()
    formats = {
        key: fmt
        for key in [
            ("DRAM", "A"),
            ("Buffer", "A"),
            # spMspM outputs are sparse too; they leave the chip
            # compressed (accumulator registers stay uncompressed).
            ("DRAM", "Z"),
            ("Buffer", "Z"),
            *b_levels,
        ]
    }
    name = f"{dataflow}.{saf_choice}"
    return Design(
        name=name,
        arch=build_architecture(name),
        safs=SAFSpec(
            formats=formats,
            storage_safs=storage_safs,
            compute_safs=compute_safs,
        ),
        mapping_factory=mapping_factory,
    )


ALL_COMBINATIONS = [
    ("ReuseABZ", "InnermostSkip"),
    ("ReuseABZ", "HierarchicalSkip"),
    ("ReuseAZ", "InnermostSkip"),
    ("ReuseAZ", "HierarchicalSkip"),
]
