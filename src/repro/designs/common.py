"""Shared helpers for building design mapping factories."""

from __future__ import annotations

import math

from repro.common.util import divisors
from repro.workload.einsum import EinsumSpec
from repro.workload.nets import NetLayer
from repro.workload.einsum import matmul


def split_factor(bound: int, inner_target: int) -> tuple[int, int]:
    """Split ``bound`` into (outer, inner) with inner <= target.

    Picks the largest divisor of ``bound`` not exceeding
    ``inner_target`` so loop bounds always multiply back exactly.
    """
    if inner_target <= 1:
        return bound, 1
    inner = 1
    for d in divisors(bound):
        if d <= inner_target:
            inner = d
    return bound // inner, inner


def split_three(bound: int, inner: int, middle: int) -> tuple[int, int, int]:
    """Split ``bound`` into (outer, middle, inner) honoring targets."""
    rest, inner_f = split_factor(bound, inner)
    outer_f, middle_f = split_factor(rest, middle)
    return outer_f, middle_f, inner_f


def conv_as_gemm(layer: NetLayer) -> EinsumSpec:
    """Lower a conv layer to the GEMM its im2col form computes.

    Tensor-core style designs (STC, DSTC) consume matrix
    multiplications: M = output channels, K = C*R*S, N = N*P*Q.
    Non-conv (matmul) layers pass through.
    """
    spec = layer.spec
    if set(spec.dims) == {"m", "k", "n"}:
        return spec
    d = spec.dims
    m = d.get("k", 1)
    k = d.get("c", 1) * d.get("r", 1) * d.get("s", 1)
    n = d.get("n", 1) * d.get("p", 1) * d.get("q", 1)
    return matmul(m, k, n, name=f"{spec.name}_gemm")


def pow2_floor(value: int) -> int:
    """Largest power of two <= value (>= 1)."""
    return 1 << max(0, int(math.floor(math.log2(max(1, value)))))


def generic_einsum_mapping(workload, arch):
    """Shape-agnostic schedule for arbitrary einsums.

    A small inner tile per dimension at the innermost storage level,
    the remainder outermost, every tensor kept at every level (no
    ``keep`` restriction). Used where a mapping must exist for einsums
    whose dimension names no kernel-specific factory recognises —
    notably the einsum-graph (fused) paths, whose cascade einsums
    (attention's ``h``/``p`` dims) fit no conv or matmul template.
    """
    from repro.mapping.mapping import LevelMapping, Loop, Mapping

    names = arch.level_names  # outermost first
    inner, outer = [], []
    for dim, bound in workload.einsum.dims.items():
        rest, inner_f = split_factor(bound, 16)
        if inner_f > 1:
            inner.append(Loop(dim, inner_f))
        if rest > 1:
            outer.append(Loop(dim, rest))
    if len(names) == 1:
        return Mapping([LevelMapping(names[0], outer + inner)])
    levels = [LevelMapping(names[0], outer)]
    for extra in names[1:-1]:
        levels.append(LevelMapping(extra, []))
    levels.append(LevelMapping(names[-1], inner))
    return Mapping(levels)


def generic_matmul_mapping(workload, arch):
    """Conservative matmul schedule for DNN designs' FC/attention layers.

    Conv-oriented mapping factories delegate here when handed a plain
    matmul (fully-connected or BERT layers): small inner tiles that fit
    any of the modeled register files, larger middle tiles, remainder
    outermost.
    """
    from repro.mapping.mapping import LevelMapping, Loop, Mapping

    dims = workload.einsum.dims
    m_rest, m0 = split_factor(dims["m"], 16)
    n_rest, n0 = split_factor(dims["n"], 16)
    k_rest, k0 = split_factor(dims["k"], 64)
    m1, m2 = split_factor(m_rest, 16)
    n1, n2 = split_factor(n_rest, 16)
    k1, k2 = split_factor(k_rest, 8)

    names = arch.level_names  # outermost first
    inner = [Loop("k", k0)]
    middle = [Loop("m", m0), Loop("n", n0), Loop("k", k2)]
    outer = [
        Loop("m", m1),
        Loop("n", n1),
        Loop("k", k1),
        Loop("m", m2),
        Loop("n", n2),
    ]

    def prune(loops):
        return [l for l in loops if l.bound > 1]

    if len(names) == 2:
        return Mapping(
            [
                LevelMapping(names[0], prune(outer + middle[2:3])),
                LevelMapping(
                    names[1], prune(middle[:2] + inner)
                ),
            ]
        )
    levels = [LevelMapping(names[0], prune(outer))]
    levels.append(LevelMapping(names[1], prune(middle)))
    levels.append(LevelMapping(names[2], prune(inner)))
    for extra in names[3:]:
        levels.append(LevelMapping(extra, []))
    return Mapping(levels)
