"""The two motivating designs of Fig. 1.

Both share an output-stationary matmul dataflow on a two-level
hierarchy; they differ only in representation format and whether
ineffectual compute is gated or skipped:

* **bitmask**: one presence bit per element; storage/compute idle
  through ineffectual cycles (saves energy, not time).
* **coordinate list**: explicit multi-bit coordinates per nonzero;
  hardware jumps to the next effectual computation (saves energy and
  time) but pays more metadata per nonzero, which hurts at high
  density.
"""

from __future__ import annotations

from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.model.engine import Design
from repro.sparse.formats import (
    Bitmask,
    CoordinatePayload,
    FormatRank,
    FormatSpec,
)
from repro.sparse.saf import (
    SAFKind,
    SAFSpec,
    double_sided,
    gate_compute,
    skip_compute,
)
from repro.designs.common import split_factor
from repro.workload.spec import Workload


def build_architecture(name: str) -> Architecture:
    return Architecture(
        name,
        [
            StorageLevel(
                "DRAM",
                capacity_words=None,
                component="dram",
                read_bandwidth=8,
                write_bandwidth=8,
            ),
            StorageLevel(
                "Buffer",
                capacity_words=64 * 1024,
                component="sram",
                read_bandwidth=4,
                write_bandwidth=4,
            ),
        ],
        ComputeLevel("MAC", instances=4),
    )


def output_stationary_mapping(workload: Workload, arch) -> Mapping:
    """Z stationary in the buffer; k innermost; modest m tiling."""
    dims = workload.einsum.dims
    m_outer, m_inner = split_factor(dims["m"], 64)
    n_outer, n_inner = split_factor(dims["n"], 64)
    return Mapping(
        [
            LevelMapping(
                "DRAM", [Loop("m", m_outer), Loop("n", n_outer)]
            ),
            LevelMapping(
                "Buffer",
                [
                    Loop("m", m_inner),
                    Loop("n", n_inner),
                    Loop("k", dims["k"]),
                ],
            ),
        ]
    )


def _both_level_formats(fmt: FormatSpec) -> dict:
    return {
        ("DRAM", "A"): fmt,
        ("DRAM", "B"): fmt,
        ("Buffer", "A"): fmt,
        ("Buffer", "B"): fmt,
    }


def bitmask_design() -> Design:
    """Eyeriss-like bitmask encoding + gating (Fig. 1, design 1).

    The presence bits let storage and compute idle through ineffectual
    cycles (double-sided gating + compute gating): energy drops, cycle
    count does not.
    """
    fmt = FormatSpec([FormatRank(Bitmask()), FormatRank(Bitmask())])
    safs = SAFSpec(
        formats=_both_level_formats(fmt),
        storage_safs=double_sided(SAFKind.GATE, "A", "B", "Buffer"),
        compute_safs=[gate_compute()],
    )
    return Design(
        name="bitmask",
        arch=build_architecture("bitmask-arch"),
        safs=safs,
        mapping_factory=output_stationary_mapping,
    )


def coordinate_list_design() -> Design:
    """SCNN-like coordinate-list encoding + skipping (Fig. 1, design 2).

    Coordinates point directly at the next effectual computation, so
    both the opposite operand's fetches and the compute cycles are
    skipped — at the price of multi-bit metadata per nonzero.
    """
    fmt = FormatSpec(
        [FormatRank(CoordinatePayload()), FormatRank(CoordinatePayload())]
    )
    safs = SAFSpec(
        formats=_both_level_formats(fmt),
        storage_safs=double_sided(SAFKind.SKIP, "A", "B", "Buffer"),
        compute_safs=[skip_compute()],
    )
    return Design(
        name="coordinate-list",
        arch=build_architecture("coordlist-arch"),
        safs=safs,
        mapping_factory=output_stationary_mapping,
    )


def dense_design() -> Design:
    """Baseline with no SAFs, for normalisation."""
    return Design(
        name="dense",
        arch=build_architecture("dense-arch"),
        safs=SAFSpec(),
        mapping_factory=output_stationary_mapping,
    )
