"""Prebuilt accelerator models from the paper (Table 3, Sec 6-7).

Each module builds a :class:`repro.model.engine.Design` capturing the
architecture topology, representation formats, and gating/skipping SAFs
of a published accelerator, plus a mapping factory encoding its
dataflow.
"""

from repro.designs import codesign, dstc, eyeriss, eyeriss_v2, scnn, stc, toy

__all__ = ["toy", "eyeriss", "eyeriss_v2", "scnn", "dstc", "stc", "codesign"]
