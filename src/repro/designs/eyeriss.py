"""Eyeriss [8] model (Table 3 row 1).

Row-stationary CNN accelerator: RLE-compressed activations off-chip
(B-RLE), uncompressed weights, on-chip zero-bitmask inputs driving
gating of weight and partial-sum accesses (``Gate W <- I``,
``Gate O <- I``). Gating saves energy but not cycles.
"""

from __future__ import annotations

from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.designs.common import generic_matmul_mapping, split_factor
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.model.engine import Design
from repro.sparse.formats import (
    Bitmask,
    FormatRank,
    FormatSpec,
    RunLengthEncoding,
    UncompressedBitmask,
)
from repro.sparse.saf import SAFSpec, gate_storage
from repro.workload.spec import Workload

#: Eyeriss PE array is 12 x 14.
PE_ROWS = 12
PE_COLS = 14
NUM_PES = PE_ROWS * PE_COLS


def build_architecture() -> Architecture:
    return Architecture(
        "eyeriss",
        [
            StorageLevel(
                "DRAM",
                capacity_words=None,
                component="dram",
                read_bandwidth=4,
                write_bandwidth=4,
            ),
            StorageLevel(
                "GLB",
                capacity_words=54 * 1024,  # 108KB of 16-bit words
                component="sram",
                read_bandwidth=4,
                write_bandwidth=4,
            ),
            StorageLevel(
                "RF",
                capacity_words=260,  # per-PE spads (W 224 + I 12 + psum 24)
                component="regfile",
                instances=NUM_PES,
                read_bandwidth=2,
                write_bandwidth=2,
            ),
        ],
        ComputeLevel("MAC", instances=NUM_PES),
    )


def offchip_activation_format(run_bits: int = 4) -> FormatSpec:
    """B-RLE: bitmask over outer ranks, run-length innermost (Table 3)."""
    return FormatSpec(
        [
            FormatRank(Bitmask(), flattened_ranks=3),
            FormatRank(RunLengthEncoding(run_bits=run_bits)),
        ]
    )


def onchip_input_format() -> FormatSpec:
    """UB: uncompressed payloads with a zero-bitmask to drive gating."""
    return FormatSpec(
        [
            FormatRank(UncompressedBitmask(), flattened_ranks=3),
            FormatRank(UncompressedBitmask()),
        ]
    )


def row_stationary_mapping(workload: Workload, arch) -> Mapping:
    """Row-stationary flavored conv mapping.

    Filter rows and a slice of output rows map spatially onto the PE
    array; filter-row reuse and psum accumulation happen inside each
    PE's spads.
    """
    dims = dict(workload.einsum.dims)
    if set(dims) == {"m", "k", "n"}:
        return generic_matmul_mapping(workload, arch)

    dims = dict(workload.einsum.dims)
    r = dims.get("r", 1)
    s = dims.get("s", 1)
    p = dims.get("p", 1)
    q = dims.get("q", 1)
    c = dims.get("c", 1)
    k = dims.get("k", 1)
    n = dims.get("n", 1)

    p_budget = max(1, NUM_PES // max(1, r))
    p_outer, p_s = split_factor(p, min(PE_COLS, p_budget))
    k_target = 8 if s <= 5 else 2
    k1, k0 = split_factor(k, k_target)
    c1, c0 = split_factor(c, 2)
    q1, q0 = split_factor(q, 7)

    dram = [Loop("n", n), Loop("k", k1), Loop("c", c1), Loop("p", p_outer)]
    glb_t = [Loop("q", q1)]
    glb_s = []
    if r > 1:
        glb_s.append(Loop("r", r, spatial=True))
    if p_s > 1:
        glb_s.append(Loop("p", p_s, spatial=True))
    rf = [Loop("k", k0), Loop("c", c0), Loop("q", q0), Loop("s", s)]

    def prune(loops):
        return [l for l in loops if l.bound > 1]

    return Mapping(
        [
            LevelMapping("DRAM", prune(dram)),
            LevelMapping("GLB", prune(glb_t), glb_s),
            LevelMapping("RF", prune(rf)),
        ]
    )


def eyeriss_design(run_bits: int = 4) -> Design:
    """The full Eyeriss design point."""
    input_name, output_name, weight_name = "I", "O", "W"
    ub = onchip_input_format()
    formats = {
        ("DRAM", input_name): offchip_activation_format(run_bits),
        ("DRAM", output_name): offchip_activation_format(run_bits),
        ("GLB", input_name): ub,
        ("RF", input_name): ub,
    }
    safs = SAFSpec(
        formats=formats,
        storage_safs=[
            gate_storage(weight_name, [input_name], "RF"),
            gate_storage(output_name, [input_name], "RF"),
        ],
    )
    return Design(
        name="eyeriss",
        arch=build_architecture(),
        safs=safs,
        mapping_factory=row_stationary_mapping,
    )


def dense_eyeriss_design() -> Design:
    """Same architecture and dataflow without any SAFs (baseline)."""
    return Design(
        name="eyeriss-dense",
        arch=build_architecture(),
        safs=SAFSpec(),
        mapping_factory=row_stationary_mapping,
    )
