"""Dual-side sparse tensor core (DSTC) [53] model (Table 3, Fig. 13/15).

DSTC exploits arbitrary sparsity in both operands: two-level bitmap
(B-B) compression, an output-stationary outer-product dataflow with
operand panels streamed through SMEM, and double-sided skipping
(``Skip A <-> B``) plus output skipping (``Skip Z <- A & B``). The
streaming dataflow re-fetches each operand panel once per opposite
panel, which pressures SMEM bandwidth — the effect behind Fig. 15's
energy story and Fig. 13's low-density latency floor.
"""

from __future__ import annotations

from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.designs.common import split_factor
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.model.engine import Design
from repro.sparse.formats import Bitmask, FormatRank, FormatSpec
from repro.sparse.saf import (
    SAFKind,
    SAFSpec,
    double_sided,
    skip_storage,
)
from repro.workload.spec import Workload

#: Tensor-core geometry: 16 x 16 MAC grid, 2x2 accumulators per MAC.
#: The small accumulation tile is the outer-product dataflow's cost:
#: operand panels are re-fetched once per opposite 32-wide tile, twice
#: as often as the STC schedule's 64-wide tiles.
TILE_M = 16
TILE_N = 16
NUM_MACS = TILE_M * TILE_N
ACCUM_M = 2
ACCUM_N = 2

#: SMEM read bandwidth provisioned for the STC-class designs (words per
#: cycle). Shared with :mod:`repro.designs.stc` so comparisons are
#: apples-to-apples (Sec 7.1.1 controls hardware resources). The value
#: is sized for STC's 2:4 operation: 32 uncompressed input words + the
#: compressed weight stream + metadata per cycle, and deliberately NOT
#: for sparser ratios (Sec 7.1.3).
SMEM_READ_BW = 40.0
SMEM_WRITE_BW = 32.0
#: Streaming k-chunk buffered in SMEM.
K_CHUNK = 64


def bitmap_format() -> FormatSpec:
    """Two-level BitMap (B-B) encoding."""
    return FormatSpec([FormatRank(Bitmask()), FormatRank(Bitmask())])


def build_architecture(name: str = "dstc") -> Architecture:
    return Architecture(
        name,
        [
            StorageLevel(
                "GMEM",
                capacity_words=None,
                component="dram",
                component_attrs={"gated_fraction": 0.0},
            ),
            StorageLevel(
                "SMEM",
                capacity_words=64 * 1024,
                component="sram",
                read_bandwidth=SMEM_READ_BW,
                write_bandwidth=SMEM_WRITE_BW,
            ),
            StorageLevel(
                "RF",
                capacity_words=256,
                component="regfile",
                instances=NUM_MACS,
                read_bandwidth=8,
                write_bandwidth=8,
            ),
        ],
        ComputeLevel("MAC", instances=NUM_MACS),
    )


def outer_product_mapping(workload: Workload, arch) -> Mapping:
    """Output stationary at the accumulators; operands streamed.

    Z tiles live in the RF across the whole reduction (k loops are all
    inside the innermost Z-relevant loop), while A/B panels stream
    through SMEM in k-chunks and are re-fetched once per opposite
    panel — the outer product's bandwidth cost.
    """
    dims = workload.einsum.dims
    m1, m_tile = split_factor(dims["m"], TILE_M * ACCUM_M)
    n1, n_tile = split_factor(dims["n"], TILE_N * ACCUM_N)
    m_s, m2 = split_factor(m_tile, ACCUM_M)
    n_s, n2 = split_factor(n_tile, ACCUM_N)
    k1, k0 = split_factor(dims["k"], K_CHUNK)

    gmem = [Loop("m", m1), Loop("n", n1), Loop("k", k1)]
    smem_t = [Loop("k", k0)]
    smem_s = []
    if m_s > 1:
        smem_s.append(Loop("m", m_s, spatial=True))
    if n_s > 1:
        smem_s.append(Loop("n", n_s, spatial=True))
    rf = [Loop("m", m2), Loop("n", n2)]

    def prune(loops):
        return [l for l in loops if l.bound > 1]

    return Mapping(
        [
            LevelMapping("GMEM", prune(gmem)),
            LevelMapping("SMEM", prune(smem_t), smem_s, keep={"A", "B"}),
            LevelMapping("RF", prune(rf), keep={"Z"}),
        ]
    )


def dstc_design() -> Design:
    fmt = bitmap_format()
    formats = {}
    for level in ("GMEM", "SMEM"):
        formats[(level, "A")] = fmt
        formats[(level, "B")] = fmt
    safs = SAFSpec(
        formats=formats,
        storage_safs=[
            *double_sided(SAFKind.SKIP, "A", "B", "SMEM"),
            skip_storage("Z", ["A", "B"], "RF"),
        ],
    )
    return Design(
        name="dstc",
        arch=build_architecture(),
        safs=safs,
        mapping_factory=outer_product_mapping,
    )


def dense_tensor_core_design() -> Design:
    """Plain tensor core: same resources, no sparsity support."""
    return Design(
        name="dense-tc",
        arch=build_architecture("dense-tc"),
        safs=SAFSpec(),
        mapping_factory=outer_product_mapping,
    )
