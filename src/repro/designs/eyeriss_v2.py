"""Eyeriss V2 [9] processing element model (Table 3 row 2, Fig. 12).

Eyeriss V2's sparse acceleration lives in its PE: both inputs and
weights arrive CSC-compressed (B-UOP-CP hierarchy), the PE skips weight
and output accesses based on input nonzeros (``Skip W <- I``,
``Skip O <- I & W``), and leftover ineffectual computes are gated. The
paper validates the PE's processing latency on MobileNet; we model a
single PE with its spads fed from a backing store.
"""

from __future__ import annotations

from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.designs.common import generic_matmul_mapping, split_factor
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.model.engine import Design
from repro.sparse.formats import (
    Bitmask,
    CoordinatePayload,
    FormatRank,
    FormatSpec,
    UncompressedOffsetPairs,
)
from repro.sparse.saf import (
    SAFSpec,
    gate_compute,
    skip_storage,
)
from repro.workload.spec import Workload


def csc_like_format() -> FormatSpec:
    """B-UOP-CP: the hierarchical compressed format of Eyeriss V2."""
    return FormatSpec(
        [
            FormatRank(Bitmask(), flattened_ranks=2),
            FormatRank(UncompressedOffsetPairs()),
            FormatRank(CoordinatePayload()),
        ]
    )


def build_architecture() -> Architecture:
    return Architecture(
        "eyeriss-v2-pe",
        [
            StorageLevel(
                "Backing",
                capacity_words=None,
                component="sram",
                component_attrs={"capacity_words": 16 * 1024},
                read_bandwidth=4,
                write_bandwidth=4,
            ),
            StorageLevel(
                "Spad",
                capacity_words=512,
                component="regfile",
                # Three separate spads (inputs, weights, psums) give an
                # aggregate of ~4 words/cycle each way; metadata lives
                # in its own small address spads.
                read_bandwidth=4,
                write_bandwidth=4,
                metadata_on_data_port=False,
            ),
        ],
        ComputeLevel("MAC", instances=1),
    )


def pe_mapping(workload: Workload, arch) -> Mapping:
    """Single-PE schedule: weights stream against stationary inputs."""
    dims = dict(workload.einsum.dims)
    if set(dims) == {"m", "k", "n"}:
        return generic_matmul_mapping(workload, arch)

    dims = dict(workload.einsum.dims)
    k = dims.get("k", 1)
    c = dims.get("c", 1)
    q = dims.get("q", 1)
    s = dims.get("s", 1)
    r = dims.get("r", 1)
    p = dims.get("p", 1)
    n = dims.get("n", 1)

    k1, k0 = split_factor(k, 8)
    c1, c0 = split_factor(c, 4)
    q1, q0 = split_factor(q, 4)

    backing = [
        Loop("n", n),
        Loop("p", p),
        Loop("k", k1),
        Loop("c", c1),
        Loop("q", q1),
    ]
    # CSC-style processing: each stationary input streams the weight
    # column past it (k innermost), matching Eyeriss V2's PE.
    spad = [
        Loop("q", q0),
        Loop("c", c0),
        Loop("r", r),
        Loop("s", s),
        Loop("k", k0),
    ]

    def prune(loops):
        return [l for l in loops if l.bound > 1]

    return Mapping(
        [
            LevelMapping("Backing", prune(backing)),
            LevelMapping("Spad", prune(spad)),
        ]
    )


def eyeriss_v2_pe_design() -> Design:
    fmt = csc_like_format()
    formats = {}
    for level in ("Backing", "Spad"):
        formats[(level, "I")] = fmt
        formats[(level, "W")] = fmt
    safs = SAFSpec(
        formats=formats,
        storage_safs=[
            skip_storage("W", ["I"], "Spad"),
            skip_storage("O", ["I", "W"], "Spad"),
        ],
        compute_safs=[gate_compute()],
    )
    return Design(
        name="eyeriss-v2-pe",
        arch=build_architecture(),
        safs=safs,
        mapping_factory=pe_mapping,
    )


def dense_pe_design() -> Design:
    return Design(
        name="eyeriss-v2-pe-dense",
        arch=build_architecture(),
        safs=SAFSpec(),
        mapping_factory=pe_mapping,
    )
