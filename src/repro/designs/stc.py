"""NVIDIA sparse tensor core (STC) [34] and next-gen variants (Sec 7.1).

STC compresses weights with N:M structured sparsity (offset-based
coordinate-payload metadata), keeps inputs uncompressed, and skips
compute on weight zeros only — 2x speedup at 2:4, 100% predictable
(Fig. 15's STC point). The case-study variants extend it:

* ``stc_flexible`` — more ratios (2:6, 2:8): extra *energy* savings but
  no speedup because uncompressed input traffic saturates the SMEM
  bandwidth provisioned for 2:4 (Sec 7.1.3, Fig. 16).
* ``stc_flexible_rle`` — RLE weight metadata (fewer bits than CP for
  large blocks).
* ``stc_flexible_rle_dualcompress`` — bitmask-compressed inputs as
  well (no input skipping, compute stays synced): speedups return via
  pure bandwidth reduction (Sec 7.1.4).
"""

from __future__ import annotations

from repro.designs.common import split_factor
from repro.designs.dstc import (
    NUM_MACS,
    TILE_M,
    TILE_N,
    build_architecture,
)
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.model.engine import Design
from repro.sparse.formats import (
    Bitmask,
    CoordinatePayload,
    FormatRank,
    FormatSpec,
    RunLengthEncoding,
    Uncompressed,
)
from repro.sparse.saf import SAFSpec, skip_compute
from repro.workload.spec import Workload

#: k-chunk of weights resident in each MAC's registers.
K_CHUNK = 16
#: Per-MAC register output tile (64-wide SMEM tiles: 16 x 4).
REG_M = 4
REG_N = 4


def weight_cp_format(block_size: int = 4) -> FormatSpec:
    """Offset-based CP: each nonzero carries its position in the block
    of ``block_size`` (2 bits for 2:4, 3 bits for 2:6 / 2:8)."""
    bits = max(1, (block_size - 1).bit_length())
    return FormatSpec(
        [
            FormatRank(Uncompressed()),
            FormatRank(CoordinatePayload(coord_bits=bits)),
        ]
    )


def weight_rle_format(run_bits: int = 2) -> FormatSpec:
    """RLE weight metadata — cheaper than CP for the larger blocks."""
    return FormatSpec(
        [
            FormatRank(Uncompressed()),
            FormatRank(RunLengthEncoding(run_bits=run_bits)),
        ]
    )


def input_bitmask_format() -> FormatSpec:
    return FormatSpec([FormatRank(Uncompressed()), FormatRank(Bitmask())])


def stc_mapping(workload: Workload, arch) -> Mapping:
    """Tensor-core GEMM schedule: output tiles accumulate in registers,
    weights resident per k-chunk, inputs streamed dense from SMEM."""
    dims = workload.einsum.dims
    m1, m_tile = split_factor(dims["m"], TILE_M * REG_M)
    n1, n_tile = split_factor(dims["n"], TILE_N * REG_N)
    m_s, m2 = split_factor(m_tile, REG_M)
    n_s, n2 = split_factor(n_tile, REG_N)
    k1, k0 = split_factor(dims["k"], K_CHUNK)

    gmem = [Loop("m", m1), Loop("n", n1), Loop("k", k1)]
    smem_s = []
    if m_s > 1:
        smem_s.append(Loop("m", m_s, spatial=True))
    if n_s > 1:
        smem_s.append(Loop("n", n_s, spatial=True))
    rf = [Loop("m", m2), Loop("n", n2), Loop("k", k0)]

    def prune(loops):
        return [l for l in loops if l.bound > 1]

    return Mapping(
        [
            LevelMapping("GMEM", prune(gmem)),
            LevelMapping("SMEM", [], smem_s, keep={"A", "B"}),
            LevelMapping("RF", prune(rf), keep={"A", "Z"}),
        ]
    )


def _stc_variant(
    name: str,
    weight_format: FormatSpec,
    input_format: FormatSpec | None = None,
) -> Design:
    formats = {}
    for level in ("GMEM", "SMEM", "RF"):
        formats[(level, "A")] = weight_format
        if input_format is not None and level != "RF":
            formats[(level, "B")] = input_format
    # NOTE: no storage SAF on the inputs — STC fetches them dense from
    # SMEM and selects the needed 2-of-N *after* the fetch (Fig. 14),
    # which is precisely why input bandwidth becomes the bottleneck for
    # ratios beyond 2:4 (Sec 7.1.3).
    safs = SAFSpec(
        formats=formats,
        compute_safs=[skip_compute(["A"])],
    )
    return Design(
        name=name,
        arch=build_architecture(name),
        safs=safs,
        mapping_factory=stc_mapping,
    )


def stc_design() -> Design:
    """Commercial STC: 2:4 structured weights only."""
    return _stc_variant("stc", weight_cp_format(block_size=4))


def stc_flexible_design(block_size: int = 8) -> Design:
    """Naive extension with selection logic for more ratios."""
    return _stc_variant(
        "stc-flexible", weight_cp_format(block_size=block_size)
    )


def stc_flexible_rle_design(run_bits: int = 2) -> Design:
    """STC-flexible with RLE weight metadata."""
    return _stc_variant(
        "stc-flexible-rle", weight_rle_format(run_bits=run_bits)
    )


def stc_flexible_rle_dualcompress_design(run_bits: int = 2) -> Design:
    """RLE weights + bitmask-compressed inputs (no input skipping)."""
    return _stc_variant(
        "stc-flexible-rle-dualCompress",
        weight_rle_format(run_bits=run_bits),
        input_format=input_bitmask_format(),
    )
