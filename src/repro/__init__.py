"""repro: a from-scratch reproduction of Sparseloop (MICRO 2022).

Sparseloop is an analytical modeling framework for sparse tensor
accelerators. The public API mirrors the paper's structure:

* :mod:`repro.workload` — extended-Einsum workloads and DNN layer tables
* :mod:`repro.arch` — architecture specifications
* :mod:`repro.mapping` — mappings and mapspace search
* :mod:`repro.sparse` — density models, formats, and SAF specifications
* :mod:`repro.model` — the three-step evaluation engine
* :mod:`repro.designs` — prebuilt accelerator models from the paper
* :mod:`repro.refsim` — cycle-level reference simulator (validation)
"""

from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.model.engine import Design, Evaluator
from repro.model.result import EvaluationResult
from repro.sparse.density import (
    ActualDataDensity,
    BandedDensity,
    FixedStructuredDensity,
    UniformDensity,
)
from repro.sparse.saf import SAFSpec
from repro.workload.einsum import conv2d, matmul
from repro.workload.spec import Workload

__version__ = "1.0.0"

__all__ = [
    "Architecture",
    "StorageLevel",
    "ComputeLevel",
    "Loop",
    "LevelMapping",
    "Mapping",
    "Workload",
    "matmul",
    "conv2d",
    "UniformDensity",
    "FixedStructuredDensity",
    "BandedDensity",
    "ActualDataDensity",
    "SAFSpec",
    "Design",
    "Evaluator",
    "EvaluationResult",
    "__version__",
]
