"""repro: a from-scratch reproduction of Sparseloop (MICRO 2022).

Sparseloop is an analytical modeling framework for sparse tensor
accelerators. The public API mirrors the paper's structure:

* :mod:`repro.api` — the :class:`Session`/job evaluation façade (the
  primary entry point; see ``docs/api.md``)
* :mod:`repro.workload` — extended-Einsum workloads and DNN layer tables
* :mod:`repro.arch` — architecture specifications
* :mod:`repro.mapping` — mappings and mapspace search
* :mod:`repro.search` — objectives (named, weighted, vector) and
  Pareto frontiers for mapspace search (see ``docs/search.md``)
* :mod:`repro.sparse` — density models, formats, and SAF specifications
* :mod:`repro.model` — the three-step evaluation engine and the
  versioned, serializable result schema
* :mod:`repro.designs` — prebuilt accelerator models from the paper
* :mod:`repro.refsim` — cycle-level reference simulator (validation)

Quick start::

    from repro import Session

    with Session() as session:
        result = session.evaluate("design.yaml")
        print(result.summary())
"""

from repro.api import (
    EvaluateJob,
    JobHandle,
    NetworkJob,
    SearchJob,
    Session,
    evaluate_network,
)
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.io.yaml_spec import load_design
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.mapping.mapspace import MapspaceConstraints
from repro.model.engine import Design, Evaluator
from repro.model.result import (
    RESULT_SCHEMA_VERSION,
    EvaluationResult,
    NetworkResult,
    SearchResult,
)
from repro.search import (
    MultiObjective,
    NamedObjective,
    Objective,
    ParetoFrontier,
    WeightedObjective,
    resolve_objective,
)
from repro.sparse.density import (
    ActualDataDensity,
    BandedDensity,
    FixedStructuredDensity,
    StructuredNMDensity,
    UniformDensity,
)
from repro.sparse.saf import SAFSpec
from repro.workload.einsum import conv2d, matmul
from repro.workload.spec import Workload

__version__ = "1.2.0"

__all__ = [
    # Evaluation façade
    "Session",
    "EvaluateJob",
    "SearchJob",
    "NetworkJob",
    "JobHandle",
    "evaluate_network",
    # Specs and building blocks
    "Architecture",
    "StorageLevel",
    "ComputeLevel",
    "Loop",
    "LevelMapping",
    "Mapping",
    "MapspaceConstraints",
    "Workload",
    "matmul",
    "conv2d",
    "UniformDensity",
    "FixedStructuredDensity",
    "StructuredNMDensity",
    "BandedDensity",
    "ActualDataDensity",
    "SAFSpec",
    "Design",
    "load_design",
    # Search objectives and frontiers
    "Objective",
    "NamedObjective",
    "WeightedObjective",
    "MultiObjective",
    "ParetoFrontier",
    "resolve_objective",
    # Engine (legacy entry points) and results
    "Evaluator",
    "EvaluationResult",
    "SearchResult",
    "NetworkResult",
    "RESULT_SCHEMA_VERSION",
    "__version__",
]
