"""Pareto frontier maintenance for mapspace search.

The frontier is the set of evaluated candidates whose objective
vectors are mutually non-dominated.  Dominance is the standard
minimising rule: ``a`` dominates ``b`` iff ``a <= b`` component-wise
with at least one strict inequality.  Exact duplicates of a vector
already on the frontier are rejected, keeping the first (lowest
stream index) representative — which is what makes the 1-D scalar
case degenerate to exactly the serial oracle's winner: the frontier
of a scalar search is the single first-seen minimum.

Merging frontiers is exact: the non-dominated set of a union equals
the non-dominated set of the union of per-chunk non-dominated sets,
so the parallel fan-out can merge partial frontiers without losing
or inventing points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SpecError
from repro.mapping.mapping import Mapping

__all__ = ["FrontierPoint", "ParetoFrontier", "dominates"]


def dominates(a, b) -> bool:
    """True iff vector ``a`` dominates ``b`` (minimising, strict)."""

    return a != b and all(x <= y for x, y in zip(a, b))


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated candidate.

    ``result`` keeps the full in-memory ``EvaluationResult`` for the
    winner-selection path; it is deliberately excluded from equality
    and serialization — on the wire a point is its stream ``index``,
    scalar ``score``, objective vector, summary ``metrics``, and the
    ``mapping`` that produced it.
    """

    index: int
    score: float
    objectives: tuple[float, ...]
    metrics: dict
    mapping: Mapping | None = None
    result: object = field(default=None, compare=False, repr=False)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "score": self.score,
            "objectives": list(self.objectives),
            "metrics": dict(self.metrics),
            "mapping": None if self.mapping is None else self.mapping.to_spec(),
        }

    @classmethod
    def from_dict(cls, data) -> "FrontierPoint":
        if not isinstance(data, dict):
            raise SpecError("frontier point must be a dict, got %r" % (data,))
        try:
            mapping = data["mapping"]
            return cls(
                index=data["index"],
                score=data["score"],
                objectives=tuple(data["objectives"]),
                metrics=dict(data["metrics"]),
                mapping=None if mapping is None else Mapping.from_spec(mapping),
            )
        except (KeyError, TypeError) as exc:
            raise SpecError("malformed frontier point: %s" % exc) from exc


class ParetoFrontier:
    """Incrementally maintained set of mutually non-dominated points."""

    __slots__ = ("axes", "_points")

    def __init__(self, axes=("edp",), points=None):
        self.axes = tuple(axes)
        self._points: list[FrontierPoint] = []
        if points:
            for point in points:
                self.add(point)

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def __repr__(self) -> str:
        return "ParetoFrontier(axes=%r, points=%d)" % (self.axes, len(self._points))

    @property
    def points(self) -> tuple[FrontierPoint, ...]:
        """Points in insertion (stream) order."""

        return tuple(self._points)

    def add(self, point: FrontierPoint) -> bool:
        """Insert ``point`` unless dominated; evict what it dominates.

        Returns True when the point joined the frontier.  A point
        whose vector exactly equals an existing one is rejected (the
        earlier index is the canonical representative).
        """

        if len(point.objectives) != len(self.axes):
            raise SpecError(
                "frontier point has %d objectives but the frontier spans "
                "%d axes %r"
                % (len(point.objectives), len(self.axes), self.axes)
            )
        vector = point.objectives
        for existing in self._points:
            if existing.objectives == vector or dominates(
                existing.objectives, vector
            ):
                return False
        self._points = [
            existing
            for existing in self._points
            if not dominates(vector, existing.objectives)
        ]
        self._points.append(point)
        return True

    def observe(self, objective, score, index, result) -> bool:
        """Add an evaluated candidate, deriving its point in place."""

        point = FrontierPoint(
            index=index,
            score=score,
            objectives=objective.vector(result),
            metrics={
                "cycles": result.cycles,
                "energy_pj": result.energy_pj,
                "edp": result.edp,
            },
            mapping=result.dense.mapping,
            result=result,
        )
        return self.add(point)

    def merge(self, other: "ParetoFrontier") -> None:
        """Fold another frontier in (points re-checked in index order)."""

        for point in sorted(other._points, key=lambda p: p.index):
            self.add(point)

    def best(self):
        """The winner: minimum ``(score, index)`` over the frontier.

        For a scalar objective this is provably the serial oracle's
        first-strictly-better winner; for vector objectives it is the
        best-scalar frontier member, so the reported winner always
        lies on the frontier.
        """

        if not self._points:
            return None
        return min(self._points, key=lambda p: (p.score, p.index))

    def ordered(self) -> list[FrontierPoint]:
        """Canonical stable ordering: by objective vector, then index."""

        return sorted(self._points, key=lambda p: (p.objectives, p.index))

    def to_dict(self) -> dict:
        return {
            "axes": list(self.axes),
            "points": [point.to_dict() for point in self.ordered()],
        }

    @classmethod
    def from_dict(cls, data) -> "ParetoFrontier":
        if not isinstance(data, dict):
            raise SpecError("frontier section must be a dict, got %r" % (data,))
        try:
            frontier = cls(axes=tuple(data["axes"]))
            points = data["points"]
        except KeyError as exc:
            raise SpecError("malformed frontier section: %s" % exc) from exc
        # Serialized points are already mutually non-dominated; load
        # them verbatim so the round-trip is bit-exact even if float
        # comparisons would behave oddly (NaN scores etc.).
        frontier._points = [FrontierPoint.from_dict(entry) for entry in points]
        return frontier
