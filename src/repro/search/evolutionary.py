"""Genome operators for the evolutionary search strategy.

The genome of a mapping is exactly the mapper's per-dimension slot
factorization: for every problem dimension, a tuple of integer
factors over the dimension's slot layout (one temporal slot per
architecture level followed by one spatial slot per matching
spatial-dims constraint).  ``Mapper._build_mapping`` is the
genome→phenotype map, and it is invertible because a factor > 1 only
ever appears in the loop of its own slot — :func:`genome_of` walks a
built mapping back into slot space.

Operators:

* crossover — uniform per-dimension: each dimension's whole factor
  tuple comes from one parent.  Because both parents honour the
  ``fixed_factors`` pins, so does every child, by construction.
* mutation — redraw one dimension's tuple with the mapper's own
  constraint-honouring sampler (``_random_dim_factorization``), which
  keeps pinned slots fixed and redistributes only the free quotient.

Offspring are killed before evaluation by the mapper's structural
checks and accumulated overflow witnesses; killed offspring do not
consume search budget (the pruned mass is recycled into extra
population budget).  See ``docs/search.md`` for the knobs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "EvolutionConfig",
    "genome_of",
    "genome_key",
    "random_genome",
    "make_offspring",
]


@dataclass(frozen=True)
class EvolutionConfig:
    """Knobs of the evolutionary strategy (all deterministic).

    ``population_fraction`` sizes each generation relative to the
    total search budget; ``parent_fraction`` is the truncation-
    selection cut; ``mutation_rate`` is the per-dimension redraw
    probability applied after crossover; ``tries_factor`` bounds how
    many structurally-invalid / duplicate proposals the offspring
    loop will discard per requested child before giving up (the
    termination guard for exhausted genome neighbourhoods).
    """

    population_fraction: float = 0.25
    parent_fraction: float = 0.5
    mutation_rate: float = 0.3
    tries_factor: int = 50

    def population_size(self, budget: int) -> int:
        return max(2, min(budget, round(budget * self.population_fraction)))

    def parent_count(self, population_size: int) -> int:
        return max(2, int(population_size * self.parent_fraction))


def genome_of(mapper, mapping) -> dict:
    """Invert a built mapping into its per-dimension slot combos."""

    temporal = {}
    spatial = {}
    for level in mapping.levels:
        temporal[level.level] = {loop.dim: loop.bound for loop in level.temporal}
        spatial[level.level] = {loop.dim: loop.bound for loop in level.spatial}
    genome = {}
    for dim in mapper.einsum.dims:
        combo = []
        for kind, level in mapper._dim_slot_names(dim):
            table = temporal if kind == "t" else spatial
            combo.append(table.get(level, {}).get(dim, 1))
        genome[dim] = tuple(combo)
    return genome


def genome_key(genome, dims) -> tuple:
    """Hashable identity of a genome (dims in canonical order)."""

    return tuple(genome[dim] for dim in dims)


def random_genome(mapper, rng) -> dict:
    """A fresh constraint-honouring genome (diversity injection)."""

    return {
        dim: mapper._random_dim_factorization(dim, rng)
        for dim in mapper.einsum.dims
    }


def make_offspring(mapper, parents, rng, count, seen, config) -> list:
    """Breed up to ``count`` novel, structurally valid genomes.

    ``parents`` is an ordered list (best first); ``seen`` is the
    all-time set of genome keys and is updated in place so no genome
    is ever proposed twice.  With fewer than two parents the loop
    falls back to fresh random genomes.  Deterministic for a given
    ``rng`` state.
    """

    dims = list(mapper.einsum.dims)
    out = []
    tries = max(1, count) * config.tries_factor
    while len(out) < count and tries > 0:
        tries -= 1
        if len(parents) >= 2:
            mother, father = rng.sample(parents, 2)
            child = {
                dim: (mother if rng.random() < 0.5 else father)[dim]
                for dim in dims
            }
            for dim in dims:
                if rng.random() < config.mutation_rate:
                    child[dim] = mapper._random_dim_factorization(dim, rng)
        else:
            child = random_genome(mapper, rng)
        key = genome_key(child, dims)
        if key in seen:
            continue
        if not mapper._combo_structurally_valid(child):
            continue
        seen.add(key)
        out.append(child)
    return out
