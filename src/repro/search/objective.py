"""Declarative search objectives.

An :class:`Objective` turns an ``EvaluationResult`` into the value the
mapspace search minimises.  Objectives come in four flavours:

* :class:`NamedObjective` — one of the built-in metrics
  (:data:`OBJECTIVE_NAMES`).  ``"edp"`` is the package-wide default
  and reproduces the engine's historical EDP objective bit-for-bit.
* :class:`WeightedObjective` — a weighted sum of named metrics.
* :class:`MultiObjective` — a vector of named metrics.  The scalar
  winner is still picked by a designated scalar axis, but the search
  maintains a Pareto frontier over the full vector.
* :class:`CallableObjective` — a wrapper over a legacy
  ``Callable[[EvaluationResult], float]``.  Supported in-process;
  deprecated on the serve wire (see ``docs/serving.md``).

Every objective **minimises**.  Metrics where larger is better (the
capacity-slack axis) are negated so the frontier's dominance test can
stay a plain component-wise ``<=``.

Named objectives and their combinations serialize as plain JSON data
(``to_spec`` / :func:`objective_from_spec`), never as pickles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.errors import SpecError

__all__ = [
    "Objective",
    "NamedObjective",
    "WeightedObjective",
    "MultiObjective",
    "CallableObjective",
    "OBJECTIVE_NAMES",
    "DEFAULT_OBJECTIVE",
    "capacity_slack",
    "objective_from_spec",
    "resolve_objective",
]


def capacity_slack(result) -> float:
    """Fraction of the tightest bounded level left unused, in [~, 1].

    ``1.0`` means no bounded level holds any data (or the design has
    no bounded levels); ``0.0`` means some level is exactly full.
    Larger is better — the ``"slack"`` objective negates this so that
    all objective axes minimise.
    """

    slack = 1.0
    for usage in result.usage.values():
        capacity = usage.capacity_words
        if capacity:
            slack = min(slack, 1.0 - usage.used_words / capacity)
    return slack


def _metric_edp(result) -> float:
    return result.edp


def _metric_energy(result) -> float:
    return result.energy_pj


def _metric_cycles(result) -> float:
    return result.cycles


def _metric_slack(result) -> float:
    return -capacity_slack(result)


_METRICS = {
    "edp": _metric_edp,
    "energy": _metric_energy,
    "latency": _metric_cycles,
    "cycles": _metric_cycles,
    "slack": _metric_slack,
}

OBJECTIVE_NAMES = tuple(_METRICS)


def _require_name(name) -> str:
    if not isinstance(name, str) or name not in _METRICS:
        raise SpecError(
            "unknown objective name %r; expected one of %s"
            % (name, ", ".join(OBJECTIVE_NAMES))
        )
    return name


class Objective:
    """Base class for search objectives.  Objectives minimise."""

    #: whether this objective can be reconstructed from ``to_spec()``
    #: data — i.e. whether it may travel over an untrusted transport.
    wire_safe = True

    @property
    def name(self) -> str:
        raise NotImplementedError

    @property
    def axes(self) -> tuple[str, ...]:
        """Names of the frontier axes this objective spans."""

        return (self.name,)

    def score(self, result) -> float:
        """The scalar value the winner is picked by (minimised)."""

        raise NotImplementedError

    def vector(self, result) -> tuple[float, ...]:
        """The point this result occupies in frontier space."""

        return (self.score(result),)

    def to_spec(self):
        """Plain JSON data describing this objective.

        For wire-safe objectives the spec round-trips through
        :func:`objective_from_spec`; for callables it is a purely
        descriptive record (results stay self-describing, but the
        callable itself cannot be rebuilt from it).
        """

        raise NotImplementedError


@dataclass(frozen=True)
class NamedObjective(Objective):
    """One of the built-in metrics, referenced by name."""

    metric: str = "edp"

    def __post_init__(self):
        _require_name(self.metric)

    @property
    def name(self) -> str:
        return self.metric

    def score(self, result) -> float:
        return _METRICS[self.metric](result)

    def to_spec(self):
        return self.metric


@dataclass(frozen=True)
class WeightedObjective(Objective):
    """A weighted sum of named metrics (still a scalar objective)."""

    weights: tuple[tuple[str, float], ...] = ()

    def __post_init__(self):
        if not self.weights:
            raise SpecError("weighted objective needs at least one term")
        terms = []
        for entry in self.weights:
            try:
                name, weight = entry
            except (TypeError, ValueError):
                raise SpecError(
                    "weighted objective terms must be (name, weight) pairs, "
                    "got %r" % (entry,)
                ) from None
            _require_name(name)
            weight = float(weight)
            if not math.isfinite(weight):
                raise SpecError(
                    "weighted objective weight for %r must be finite, got %r"
                    % (name, weight)
                )
            terms.append((name, weight))
        object.__setattr__(self, "weights", tuple(terms))

    @property
    def name(self) -> str:
        return "+".join("%g*%s" % (weight, name) for name, weight in self.weights)

    def score(self, result) -> float:
        return sum(weight * _METRICS[name](result) for name, weight in self.weights)

    def to_spec(self):
        return {"weighted": {name: weight for name, weight in self.weights}}


@dataclass(frozen=True)
class MultiObjective(Objective):
    """A vector of named metrics searched as a Pareto frontier.

    ``scalar`` names the axis-like metric that still picks the single
    reported winner (``best_score`` / ``best``); it does not have to
    be one of the vector axes — the default pairs the classic EDP
    winner with the (energy, cycles, slack) frontier from ROADMAP
    item 2.
    """

    metrics: tuple[str, ...] = ("energy", "cycles", "slack")
    scalar: str = "edp"

    def __post_init__(self):
        if not self.metrics:
            raise SpecError("multi-objective needs at least one axis")
        object.__setattr__(
            self, "metrics", tuple(_require_name(name) for name in self.metrics)
        )
        _require_name(self.scalar)

    @property
    def name(self) -> str:
        return "multi(%s)" % ",".join(self.metrics)

    @property
    def axes(self) -> tuple[str, ...]:
        return self.metrics

    def score(self, result) -> float:
        return _METRICS[self.scalar](result)

    def vector(self, result) -> tuple[float, ...]:
        return tuple(_METRICS[name](result) for name in self.metrics)

    def to_spec(self):
        return {"multi": list(self.metrics), "scalar": self.scalar}


@dataclass(frozen=True)
class CallableObjective(Objective):
    """A legacy ``Callable[[EvaluationResult], float]`` objective."""

    fn: object = field(default=None)

    wire_safe = False

    def __post_init__(self):
        if not callable(self.fn):
            raise SpecError("callable objective needs a callable, got %r" % (self.fn,))

    @property
    def name(self) -> str:
        fn = self.fn
        return getattr(fn, "__qualname__", None) or getattr(
            fn, "__name__", None
        ) or "callable"

    def score(self, result) -> float:
        return self.fn(result)

    def to_spec(self):
        fn = self.fn
        module = getattr(fn, "__module__", None) or "?"
        return {"callable": "%s:%s" % (module, self.name)}


DEFAULT_OBJECTIVE = NamedObjective("edp")


def objective_from_spec(spec) -> Objective:
    """Rebuild an :class:`Objective` from ``to_spec()`` wire data.

    Accepts a metric name string, a ``{"weighted": {...}}`` dict, or a
    ``{"multi": [...], "scalar": ...}`` dict.  Raises
    :class:`SpecError` for anything else — including ``{"callable":
    ...}`` records, which are descriptive only.
    """

    if isinstance(spec, str):
        return NamedObjective(_require_name(spec))
    if isinstance(spec, dict):
        if "callable" in spec:
            raise SpecError(
                "callable objective %r cannot be reconstructed from its "
                "spec; use a named objective (%s) instead"
                % (spec["callable"], ", ".join(OBJECTIVE_NAMES))
            )
        if "weighted" in spec:
            weights = spec["weighted"]
            if not isinstance(weights, dict):
                raise SpecError(
                    "weighted objective spec must map names to weights, "
                    "got %r" % (weights,)
                )
            return WeightedObjective(tuple(weights.items()))
        if "multi" in spec:
            metrics = spec["multi"]
            if not isinstance(metrics, (list, tuple)):
                raise SpecError(
                    "multi-objective spec must list axis names, got %r"
                    % (metrics,)
                )
            return MultiObjective(tuple(metrics), spec.get("scalar", "edp"))
    raise SpecError("unrecognised objective spec %r" % (spec,))


def resolve_objective(objective) -> Objective:
    """Normalise any accepted objective form into one :class:`Objective`.

    ``None`` means the default EDP objective; strings are named
    objectives; sequences of names become a :class:`MultiObjective`;
    dicts are parsed as wire specs; callables are wrapped (supported
    in-process, deprecated on the wire); Objective instances pass
    through.
    """

    if objective is None:
        return DEFAULT_OBJECTIVE
    if isinstance(objective, Objective):
        return objective
    if isinstance(objective, str):
        return NamedObjective(_require_name(objective))
    if isinstance(objective, (list, tuple)):
        return MultiObjective(tuple(objective))
    if isinstance(objective, dict):
        return objective_from_spec(objective)
    if callable(objective):
        return CallableObjective(objective)
    raise SpecError(
        "objective must be a name, a sequence of names, an Objective, "
        "or a callable; got %r" % (objective,)
    )
