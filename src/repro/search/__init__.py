"""First-class search objectives and Pareto frontiers.

This package is the declarative layer over the engine's mapspace
search (see ``docs/search.md``):

* :mod:`repro.search.objective` — named scalar objectives (``"edp"``,
  ``"energy"``, ``"latency"``, ``"cycles"``, ``"slack"``), weighted
  combinations, the vector-valued :class:`MultiObjective`, and the
  resolution rules that turn names / vectors / legacy callables into
  one :class:`Objective`.
* :mod:`repro.search.frontier` — the :class:`ParetoFrontier`
  container with incremental dominance maintenance; the scalar search
  path is its 1-D special case.
* :mod:`repro.search.evolutionary` — genome operators (factorization
  -space crossover and mutation honouring ``fixed_factors``) and the
  knobs of the engine's ``strategy="evolutionary"`` search.

Objectives serialize as plain schema-v1 wire data (a name string or a
small spec dict) — never as pickles — which is what lets the serving
daemon accept them from untrusted TCP peers.
"""

from repro.search.frontier import FrontierPoint, ParetoFrontier
from repro.search.objective import (
    DEFAULT_OBJECTIVE,
    OBJECTIVE_NAMES,
    CallableObjective,
    MultiObjective,
    NamedObjective,
    Objective,
    WeightedObjective,
    capacity_slack,
    objective_from_spec,
    resolve_objective,
)

__all__ = [
    "Objective",
    "NamedObjective",
    "WeightedObjective",
    "MultiObjective",
    "CallableObjective",
    "OBJECTIVE_NAMES",
    "DEFAULT_OBJECTIVE",
    "capacity_slack",
    "objective_from_spec",
    "resolve_objective",
    "ParetoFrontier",
    "FrontierPoint",
]
