"""Command-line entry point: evaluate a YAML design specification.

Usage::

    python -m repro evaluate spec.yaml
    python -m repro evaluate spec.yaml --search --budget 64

The spec file combines arch / workload / safs / mapping sections (see
:mod:`repro.io.yaml_spec` for the schema). With ``--search`` the
mapping section may be omitted and the built-in mapper explores the
mapspace instead.
"""

from __future__ import annotations

import argparse
import sys

from repro.io.yaml_spec import load_design
from repro.mapping.mapspace import MapspaceConstraints
from repro.model.engine import Evaluator


def _cmd_evaluate(args: argparse.Namespace) -> int:
    design, workload = load_design(args.spec)
    evaluator = Evaluator(
        check_capacity=not args.no_capacity_check,
        search_budget=args.budget,
    )
    if args.search:
        design.mapping = None
        design.constraints = design.constraints or MapspaceConstraints()
    result = evaluator.evaluate(design, workload)
    print(result.summary())
    if args.verbose:
        print()
        print("mapping:")
        print(result.dense.mapping.describe())
        print()
        for level, usage in result.usage.items():
            capacity = (
                "unbounded"
                if usage.capacity_words is None
                else f"{usage.capacity_words:g}"
            )
            print(
                f"occupancy {level}: {usage.used_words:.1f} / {capacity} "
                f"words ({usage.utilization:.1%})"
            )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sparseloop reproduction: analytical sparse tensor "
        "accelerator modeling",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    ev = sub.add_parser("evaluate", help="evaluate a YAML design spec")
    ev.add_argument("spec", help="path to the YAML specification")
    ev.add_argument(
        "--search",
        action="store_true",
        help="search the mapspace instead of using the spec's mapping",
    )
    ev.add_argument(
        "--budget", type=int, default=64, help="mappings sampled per search"
    )
    ev.add_argument(
        "--no-capacity-check",
        action="store_true",
        help="allow mappings whose tiles overflow storage",
    )
    ev.add_argument("-v", "--verbose", action="store_true")
    ev.set_defaults(func=_cmd_evaluate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
