"""Command-line entry point, built on the :mod:`repro.api` façade.

Usage::

    python -m repro evaluate spec.yaml
    python -m repro evaluate spec.yaml --json
    python -m repro search spec.yaml --budget 64 --parallel 4
    python -m repro search spec.yaml --shards 4
    python -m repro fused graph_spec.yaml --json
    python -m repro serve --worker --unix /tmp/worker.sock
    python -m repro --version

The spec file combines arch / workload / safs / mapping / constraints
sections (see :mod:`repro.io.yaml_spec` for the schema). ``evaluate``
runs the spec's mapping (or searches when the spec only carries
constraints, or with ``--search``); ``search`` always explores the
mapspace and reports the winner.

``--json`` emits the versioned result schema (``schema: 1``, see
:mod:`repro.model.result`) on stdout — machine-readable, diffable, and
round-trippable via ``EvaluationResult.from_json`` /
``SearchResult.from_json``.

Repeated runs start warm: the Session spills analysis-cache snapshots
to a persistent on-disk store (``$REPRO_CACHE_DIR`` or
``~/.cache/repro``) keyed by the spec's content and warm-starts from it
on first use. Disable with ``--cold`` or the
``REPRO_NO_PERSISTENT_CACHE`` environment variable.

Exit codes: 0 on success, 2 on an input/modeling error (malformed
spec, invalid mapping, capacity overflow, no valid mapping found) —
reported as one ``error:`` line on stderr, never a traceback.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import __version__
from repro.api import Session
from repro.common.cache import PersistentCache
from repro.common.errors import ReproError
from repro.model.result import SearchResult


def _persistent_store(args: argparse.Namespace) -> PersistentCache | None:
    if args.cold or os.environ.get("REPRO_NO_PERSISTENT_CACHE"):
        return None
    return PersistentCache(root=args.cache_dir)


def _session(args: argparse.Namespace, workers=None) -> Session:
    return Session(
        check_capacity=not args.no_capacity_check,
        search_budget=args.budget,
        search_seed=args.seed,
        parallel=args.parallel,
        persistent=_persistent_store(args),
        workers=workers,
    )


def _print_verbose(session: Session, result, baseline=None) -> None:
    print()
    if session.evaluator.persistent is not None:
        print(
            f"persistent cache: {session.warm_loaded} entries warm "
            "(snapshot spills when the session closes)"
        )
    # With a checkpoint taken before the run, report what *this run*
    # hit and missed (cache_stats(since=...)) instead of lifetime
    # totals — the totals include warm-started entries.
    stats = session.cache_stats(since=baseline)
    if stats:
        print("cache stages (this run):" if baseline else "cache stages:")
        for name in sorted(stats):
            stage = stats[name]
            print(
                f"  {name}: {stage['hits']} hits / {stage['misses']} misses "
                f"({stage['hit_rate']:.0%}), {stage['entries']} entries"
            )
    print()
    print("mapping:")
    print(result.dense.mapping.describe())
    print()
    for level, usage in result.usage.items():
        capacity = (
            "unbounded"
            if usage.capacity_words is None
            else f"{usage.capacity_words:g}"
        )
        print(
            f"occupancy {level}: {usage.used_words:.1f} / {capacity} "
            f"words ({usage.utilization:.1%})"
        )


def _cmd_evaluate(args: argparse.Namespace) -> int:
    with _session(args) as session:
        baseline = session.cache_stats()
        outcome = session.submit(args.spec, search=args.search).result()
        if isinstance(outcome, SearchResult):
            result = outcome.best_or_raise()
        else:
            result = outcome
        if args.json:
            print(result.to_json(indent=2))
        else:
            print(result.summary())
            if args.verbose:
                _print_verbose(session, result, baseline)
    return 0


def _cmd_fused(args: argparse.Namespace) -> int:
    from repro.io.yaml_spec import load_fused_spec

    design, graph, fused, densities = load_fused_spec(args.spec)
    with _session(args) as session:
        baseline = session.cache_stats()
        result = session.evaluate_fused(
            design, graph, densities or None, fused
        )
        if args.json:
            print(result.to_json(indent=2))
        else:
            print(result.summary())
            if args.verbose:
                print()
                stats = session.cache_stats(since=baseline)
                if stats:
                    print("cache stages (this run):")
                    for name in sorted(stats):
                        stage = stats[name]
                        print(
                            f"  {name}: {stage['hits']} hits / "
                            f"{stage['misses']} misses "
                            f"({stage['hit_rate']:.0%}), "
                            f"{stage['entries']} entries"
                        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here: the asyncio serve stack is daemon-only baggage for
    # the evaluate/search one-shot paths.
    import asyncio

    from repro.serve.server import ReproServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        batch_window_ms=args.batch_window_ms,
        batch_max=args.batch_max,
        # A --worker daemon runs exactly one shard at a time (the
        # coordinator is the only client), so extra handler threads
        # would just contend on the engine lock.
        workers=1 if args.worker else args.workers,
        queue_depth=args.queue_depth,
        heartbeat_s=args.heartbeat_s,
    )
    server = ReproServer(
        config,
        check_capacity=not args.no_capacity_check,
        search_budget=args.budget,
        search_seed=args.seed,
        parallel=args.parallel,
        persistent=_persistent_store(args),
    )

    async def _serve() -> None:
        import signal

        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_stop)
            except NotImplementedError:  # non-unix event loops
                pass
        # One line per listener, then a ready marker — flushed so
        # supervisors (and bench_serve.py) can wait on it.
        for address in server.addresses:
            print(f"listening on {address}", flush=True)
        print("ready", flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _search_progress(info) -> None:
    """One stderr line per progress frame in ``search -v`` runs."""
    if not isinstance(info, dict) or info.get("heartbeat"):
        return
    event = info.get("event")
    if event is not None:
        shard = info.get("shard")
        where = "" if shard is None else f" (shard {shard})"
        print(f"  {event}{where}", file=sys.stderr, flush=True)
        return
    best = info.get("best_score")
    label = "-" if best is None else f"{best:.6g}"
    prefix = f"  shard {info['shard']}:" if "shard" in info else "  search:"
    print(
        f"{prefix} {info.get('evaluated', 0)} evaluated, best {label}, "
        f"frontier {info.get('frontier_size', 0)}",
        file=sys.stderr,
        flush=True,
    )


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.search import resolve_objective

    workers = None
    if args.shards and args.shards > 1:
        workers = args.shard_workers or args.shards
    with _session(args, workers=workers) as session:
        baseline = session.cache_stats()
        search = session.search(
            args.spec,
            objective=args.objective,
            strategy=args.strategy,
            shards=args.shards,
            on_progress=_search_progress if args.verbose else None,
        )
        best = search.best_or_raise()
        if args.json:
            print(search.to_json(indent=2))
        else:
            name = resolve_objective(search.objective).name
            label = "EDP" if name == "edp" else name
            score = search.best_score
            score = best.edp if score is None else score
            print(
                f"best mapping ({search.budget} budget, "
                f"seed {search.seed}, {label} {score:.6g}):"
            )
            print(best.dense.mapping.describe())
            print()
            print(best.summary())
            if args.frontier and search.frontier is not None:
                axes = search.frontier.axes
                print()
                print(f"frontier ({', '.join(axes)}):")
                for point in search.frontier.ordered():
                    coords = ", ".join(
                        f"{axis}={value:.6g}"
                        for axis, value in zip(axes, point.objectives)
                    )
                    print(f"  #{point.index}: {coords}")
            if args.verbose:
                print(f"objective {name}: winning score {score:.6g}")
                _print_verbose(session, best, baseline)
    return 0


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("spec", help="path to the YAML specification")
    parser.add_argument(
        "--budget", type=int, default=64, help="mappings sampled per search"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="mapspace sampling seed"
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="fan batched work and searches out over N worker processes",
    )
    parser.add_argument(
        "--no-capacity-check",
        action="store_true",
        help="allow mappings whose tiles overflow storage",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the versioned result schema as JSON on stdout",
    )
    parser.add_argument(
        "--cold",
        action="store_true",
        help="skip the persistent cache tier (start cold, spill nothing)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent cache location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    parser.add_argument("-v", "--verbose", action="store_true")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sparseloop reproduction: analytical sparse tensor "
        "accelerator modeling",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ev = sub.add_parser("evaluate", help="evaluate a YAML design spec")
    _add_common_arguments(ev)
    ev.add_argument(
        "--search",
        action="store_true",
        help="search the mapspace instead of using the spec's mapping",
    )
    ev.set_defaults(func=_cmd_evaluate)

    se = sub.add_parser(
        "search", help="search the mapspace for the best mapping"
    )
    _add_common_arguments(se)
    se.add_argument(
        "--objective",
        default=None,
        choices=["edp", "energy", "latency", "cycles", "slack"],
        help="metric to minimize (default: edp)",
    )
    se.add_argument(
        "--strategy",
        default=None,
        choices=["serial", "batched", "evolutionary"],
        help="candidate evaluation strategy (default: batched)",
    )
    se.add_argument(
        "--frontier",
        action="store_true",
        help="print the Pareto frontier after the winner",
    )
    se.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="split the scan into N contiguous shards over local worker "
        "daemons (bit-identical merged result; see docs/distributed.md)",
    )
    se.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker daemons to boot for --shards (default: one per shard)",
    )
    se.set_defaults(func=_cmd_search)

    fu = sub.add_parser(
        "fused",
        help="evaluate an einsum graph under a fused mapping "
        "(spec needs a 'graph' section; see docs/workloads.md)",
    )
    _add_common_arguments(fu)
    fu.set_defaults(func=_cmd_fused)

    sv = sub.add_parser(
        "serve",
        help="run the evaluation daemon (one hot Session, many clients)",
    )
    sv.add_argument("--host", default="127.0.0.1", help="TCP bind host")
    sv.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help="TCP port (0 picks an ephemeral port; omit for no TCP)",
    )
    sv.add_argument(
        "--unix",
        default=None,
        metavar="PATH",
        help="unix socket path (omit for no unix listener)",
    )
    sv.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="evaluate micro-batch collection window (default 2ms)",
    )
    sv.add_argument(
        "--batch-max",
        type=int,
        default=32,
        metavar="N",
        help="flush the evaluate collector at N jobs (1 = no batching)",
    )
    sv.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="worker threads for search/network jobs",
    )
    sv.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        metavar="N",
        help="max queued search/network jobs before shedding "
        "('overloaded' errors)",
    )
    sv.add_argument(
        "--worker",
        action="store_true",
        help="run as a sharded-search worker (single handler thread; "
        "the coordinator assigns one shard at a time)",
    )
    sv.add_argument(
        "--heartbeat-s",
        type=float,
        default=5.0,
        metavar="S",
        help="progress-heartbeat interval for in-flight jobs "
        "(0 disables)",
    )
    sv.add_argument(
        "--budget", type=int, default=64, help="mappings sampled per search"
    )
    sv.add_argument(
        "--seed", type=int, default=0, help="mapspace sampling seed"
    )
    sv.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="engine worker processes for pooled work",
    )
    sv.add_argument(
        "--no-capacity-check",
        action="store_true",
        help="allow mappings whose tiles overflow storage",
    )
    sv.add_argument(
        "--cold",
        action="store_true",
        help="skip the persistent cache tier (start cold, spill nothing)",
    )
    sv.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent cache location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    sv.set_defaults(func=_cmd_serve)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
