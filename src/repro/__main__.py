"""Command-line entry point: evaluate a YAML design specification.

Usage::

    python -m repro evaluate spec.yaml
    python -m repro evaluate spec.yaml --search --budget 64

The spec file combines arch / workload / safs / mapping sections (see
:mod:`repro.io.yaml_spec` for the schema). With ``--search`` the
mapping section may be omitted and the built-in mapper explores the
mapspace instead.

Repeated runs start warm: analysis-cache snapshots are spilled to a
persistent on-disk store (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``)
keyed by the spec's content, so re-evaluating the same design — a
tweaked mapping, a different SAF flag, a CI job — skips everything the
previous run already derived. Disable with ``--cold`` or the
``REPRO_NO_PERSISTENT_CACHE`` environment variable.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.common.cache import PersistentCache
from repro.io.yaml_spec import load_design
from repro.mapping.mapspace import MapspaceConstraints
from repro.model.engine import Evaluator, persistent_state_key


def _persistent_store(args: argparse.Namespace) -> PersistentCache | None:
    if args.cold or os.environ.get("REPRO_NO_PERSISTENT_CACHE"):
        return None
    return PersistentCache(root=args.cache_dir)


def _cmd_evaluate(args: argparse.Namespace) -> int:
    design, workload = load_design(args.spec)
    evaluator = Evaluator(
        check_capacity=not args.no_capacity_check,
        search_budget=args.budget,
        persistent=_persistent_store(args),
    )
    if args.search:
        design.mapping = None
        design.constraints = design.constraints or MapspaceConstraints()
    loaded = 0
    if evaluator.persistent is not None:
        key = persistent_state_key(design, [workload])
        if key is not None:
            loaded = evaluator.warm_start(key)
    result = evaluator.evaluate(design, workload)
    spilled = evaluator.spill_cache()
    print(result.summary())
    if args.verbose:
        print()
        if evaluator.persistent is not None:
            print(
                f"persistent cache: {loaded} entries warm, snapshot "
                f"{spilled if spilled else '(nothing to spill)'}"
            )
        print()
        print("mapping:")
        print(result.dense.mapping.describe())
        print()
        for level, usage in result.usage.items():
            capacity = (
                "unbounded"
                if usage.capacity_words is None
                else f"{usage.capacity_words:g}"
            )
            print(
                f"occupancy {level}: {usage.used_words:.1f} / {capacity} "
                f"words ({usage.utilization:.1%})"
            )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sparseloop reproduction: analytical sparse tensor "
        "accelerator modeling",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    ev = sub.add_parser("evaluate", help="evaluate a YAML design spec")
    ev.add_argument("spec", help="path to the YAML specification")
    ev.add_argument(
        "--search",
        action="store_true",
        help="search the mapspace instead of using the spec's mapping",
    )
    ev.add_argument(
        "--budget", type=int, default=64, help="mappings sampled per search"
    )
    ev.add_argument(
        "--no-capacity-check",
        action="store_true",
        help="allow mappings whose tiles overflow storage",
    )
    ev.add_argument(
        "--cold",
        action="store_true",
        help="skip the persistent cache tier (start cold, spill nothing)",
    )
    ev.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent cache location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    ev.add_argument("-v", "--verbose", action="store_true")
    ev.set_defaults(func=_cmd_evaluate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
