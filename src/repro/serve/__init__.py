"""Evaluation-as-a-service: daemon, wire protocol, and thin client.

The daemon (``repro serve`` or :class:`ReproServer`) owns one hot
:class:`~repro.api.Session` per process and speaks newline-delimited
``schema: 1`` JSON over TCP and unix sockets; concurrent evaluate jobs
from different clients micro-batch into single stacked engine passes.
:func:`repro.api.connect` returns a :class:`RemoteSession` mirroring
the Session surface. See ``docs/serving.md``.
"""

from repro.serve.client import RemoteHandle, RemoteSession, connect
from repro.serve.server import ReproServer, ServeConfig

__all__ = [
    "connect",
    "RemoteSession",
    "RemoteHandle",
    "ReproServer",
    "ServeConfig",
]
