"""The evaluation daemon: one hot Session, many clients.

Architecture (see ``docs/serving.md`` for the operator view):

* an asyncio loop owns all sockets and framing; protocol work never
  blocks on evaluation,
* one long-lived :class:`~repro.api.Session` per process holds the
  warm :class:`~repro.common.cache.AnalysisCache` every client shares,
* **micro-batching**: evaluate jobs from *different* connections
  accumulate while the engine lane is busy — bounded by the
  ``batch_window_ms`` window or ``batch_max`` jobs — and resolve
  through one ``Session.submit_many`` pass (an idle lane dispatches
  immediately, so batching never costs latency). The engine stacks
  the whole batch's dense- and sparse-stage misses into stacked
  numpy passes, so N clients share both the cache and the vectorized
  kernels,
* search/network jobs run on a bounded worker pool behind admission
  control: a bounded queue ordered oldest-deadline-first, with an
  explicit ``overloaded`` error envelope once the queue is full —
  the daemon sheds load instead of buffering without bound,
* every engine pass is bracketed with
  :meth:`Session.cache_stats(since=...)
  <repro.api.session.Session.cache_stats>` checkpoints, so cache hits
  are attributed to the clients whose jobs ran in that pass (split
  evenly across a shared batch) without any global counters.

Evaluation runs on executor threads, serialized by one engine lock:
the engine's numpy passes already saturate cores (and ``parallel=N``
fans out processes below it), so the lock costs nothing while keeping
stats attribution exact and the Session single-writer.
"""

from __future__ import annotations

import asyncio
import functools
import heapq
import itertools
import os
import socket
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from threading import Lock

from repro.api.jobs import SearchJob, SearchShardJob, job_from_dict
from repro.api.session import Session
from repro.distributed.plan import WitnessBoard, WitnessSnapshot
from repro.search.objective import resolve_objective
from repro.model.result import EvaluationResult
from repro.common.errors import OverloadedError, ReproError, SpecError
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_line,
    encode_line,
    error_to_envelope,
)

__all__ = ["ServeConfig", "ReproServer"]


@dataclass
class ServeConfig:
    """Operator knobs for one daemon process (CLI flags mirror these)."""

    host: str = "127.0.0.1"
    port: int | None = None  #: TCP port (0 = ephemeral); None = no TCP.
    unix_path: str | None = None  #: unix socket path; None = no unix socket.
    batch_window_ms: float = 2.0  #: evaluate collector window.
    batch_max: int = 32  #: flush the collector at this many jobs.
    workers: int = 2  #: search/network worker threads.
    queue_depth: int = 64  #: admission bound for queued search/network jobs.
    default_deadline_ms: float = 30_000.0  #: queue priority for deadline-less jobs.
    heartbeat_s: float = 5.0  #: liveness-ping period for queued/running jobs (0 = off).


@dataclass
class _ClientStats:
    jobs: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    cache_hits: float = 0.0
    overloaded: int = 0

    def to_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "cache_hits": self.cache_hits,
            "overloaded": self.overloaded,
        }


class _Client:
    __slots__ = ("writer", "name", "stats", "blobs", "trusted")

    def __init__(
        self, writer: asyncio.StreamWriter, name: str, trusted: bool = False
    ):
        self.writer = writer
        self.name = name
        self.stats = _ClientStats()
        #: interned payloads: digest -> tagged blob dict. Lives and
        #: dies with the connection, so refs cannot dangle a restart.
        self.blobs: dict[str, dict] = {}
        #: same-host peers (unix socket) may ship pickled payload
        #: extras like callable objectives; TCP peers may not (see
        #: docs/serving.md, "Trust model").
        self.trusted = trusted


@dataclass(order=True)
class _QueueEntry:
    """One admitted search/network job, heap-ordered oldest-deadline
    (= smallest effective deadline) first; ``seq`` breaks ties FIFO."""

    deadline: float
    seq: int
    client: _Client = field(compare=False)
    request_id: object = field(compare=False)
    job: object = field(compare=False)  #: raw wire dict, decoded on the worker.
    fields: object = field(compare=False)  #: result projection, or None.


class ReproServer:
    """One daemon instance: sockets, collector, admission queue.

    ``session_kwargs`` are forwarded to the hot :class:`Session`
    (``parallel=``, ``persistent=``, ``check_capacity=``, ...).
    """

    def __init__(self, config: ServeConfig | None = None, **session_kwargs):
        self.config = config or ServeConfig()
        self.session = Session(**session_kwargs)
        self._engine_lock = Lock()
        self._clients: dict[str, _Client] = {}
        self._client_seq = itertools.count(1)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._servers: list[asyncio.AbstractServer] = []
        self._addresses: list[str] = []
        # Evaluate micro-batch collector state (loop-confined); jobs
        # stay as raw wire dicts until the lane thread decodes them.
        self._batch: list[tuple[_Client, object, dict]] = []
        self._batch_timer: asyncio.TimerHandle | None = None
        self._batch_inflight = 0  #: evaluate batches on the executor lane.
        # One serialized lane for evaluate batches keeps flush order
        # deterministic; search/network jobs get their own bounded pool.
        self._batch_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-batch"
        )
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, self.config.workers),
            thread_name_prefix="repro-serve-worker",
        )
        self._queue: list[_QueueEntry] = []
        self._queue_seq = itertools.count()
        self._active_workers = 0
        self._stopping = asyncio.Event()
        # Server-wide counters (the "server-stats" op; written by the
        # batch lane thread, read from the loop — counter drift under
        # the GIL is cosmetic and torn values are impossible).
        self._evaluate_jobs = 0
        self._evaluate_batches = 0
        self._evaluate_batch_max = 0
        self._engine_seconds = 0.0
        # Per-objective search attribution (written by worker threads;
        # same GIL-atomicity caveat as the evaluate counters).
        self._search_jobs = 0
        self._search_objectives: dict[str, int] = {}
        self._shard_jobs = 0
        # Queued/running pool jobs, loop-confined: heartbeat progress
        # frames go to these until their terminal response pops them.
        self._running: dict[tuple[str, str], tuple[_Client, object]] = {}
        self._heartbeat_timer: asyncio.TimerHandle | None = None
        # Per-search witness boards for shard jobs: shards running here
        # post to (and poll) their search's board, and coordinators
        # feed snapshots from shards on *other* daemons in through the
        # ``witness-update`` op. Bounded LRU — a board is pure
        # accelerator state, so eviction only slows replays down.
        self._boards_lock = Lock()
        self._shard_boards: dict[str, WitnessBoard] = {}

    # ------------------------------------------------------------------
    # Lifecycle

    @property
    def addresses(self) -> list[str]:
        """Bound listen addresses (``tcp://host:port``, ``unix://path``)."""
        return list(self._addresses)

    async def start(self) -> None:
        if not self._servers:
            self._loop = asyncio.get_running_loop()
            config = self.config
            if config.port is None and config.unix_path is None:
                raise SpecError("serve needs a TCP port and/or a unix socket")
            if config.port is not None:
                server = await asyncio.start_server(
                    self._handle_connection,
                    host=config.host,
                    port=config.port,
                    limit=MAX_LINE_BYTES,
                )
                for sock in server.sockets:
                    host, port = sock.getsockname()[:2]
                    self._addresses.append(f"tcp://{host}:{port}")
                self._servers.append(server)
            if config.unix_path is not None:
                # A stale socket file from a dead daemon must not block
                # restarts; a live daemon still holds its listener, so
                # the unlink only ever clears leftovers.
                try:
                    os.unlink(config.unix_path)
                except FileNotFoundError:
                    pass
                server = await asyncio.start_unix_server(
                    self._handle_connection,
                    path=config.unix_path,
                    limit=MAX_LINE_BYTES,
                )
                self._addresses.append(f"unix://{config.unix_path}")
                self._servers.append(server)
            if config.heartbeat_s > 0:
                self._heartbeat_timer = self._loop.call_later(
                    config.heartbeat_s, self._heartbeat_tick
                )

    async def serve_forever(self) -> None:
        await self.start()
        await self._stopping.wait()
        await self.aclose()

    def request_stop(self) -> None:
        self._stopping.set()

    async def aclose(self) -> None:
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
            self._heartbeat_timer = None
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers = []
        self._batch_executor.shutdown(wait=True)
        self._pool.shutdown(wait=True)
        if self.config.unix_path is not None:
            try:
                os.unlink(self.config.unix_path)
            except FileNotFoundError:
                pass
        self.session.close()

    # ------------------------------------------------------------------
    # Connections and dispatch

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        sock = writer.get_extra_info("socket")
        trusted = (
            sock is not None
            and getattr(sock, "family", None) == socket.AF_UNIX
        )
        client = _Client(
            writer, name=f"client-{next(self._client_seq)}", trusted=trusted
        )
        self._clients[client.name] = client
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self._send(
                        client,
                        None,
                        error=SpecError(
                            f"message exceeds {MAX_LINE_BYTES} bytes"
                        ),
                    )
                    break
                if not line:
                    break
                client.stats.bytes_in += len(line)
                if line.strip() == b"":
                    continue
                try:
                    message = decode_line(line)
                except ReproError as exc:
                    self._send(client, None, error=exc)
                    continue
                self._dispatch(client, message)
        except asyncio.CancelledError:
            # Shutdown cancels connection handlers mid-read; exiting
            # the loop normally keeps asyncio's stream machinery from
            # logging the cancellation as a connection error.
            pass
        finally:
            del self._clients[client.name]
            self._running = {
                key: entry
                for key, entry in self._running.items()
                if entry[0] is not client
            }
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    def _dispatch(self, client: _Client, message: dict) -> None:
        request_id = message.get("id")
        op = message.get("op")
        if op is not None:
            self._handle_op(client, request_id, op, message)
            return
        job_dict = message.get("job")
        if job_dict is None:
            self._send(
                client,
                request_id,
                error=SpecError("request needs a 'job' or an 'op' field"),
            )
            return
        fields = message.get("fields")
        if fields is not None and (
            not isinstance(fields, list)
            or not all(isinstance(name, str) for name in fields)
        ):
            self._send(
                client,
                request_id,
                error=SpecError(
                    "'fields' must be a list of result key names"
                ),
            )
            return
        try:
            self._resolve_blob_refs(client, job_dict)
        except ReproError as exc:
            self._send(client, request_id, error=exc)
            return
        # Trust boundary: search objectives cross the wire as plain
        # named/weighted/multi spec data. A pickled objective callable
        # is only honoured from same-host unix-socket peers — over TCP
        # it is rejected up front, before the payload ever reaches an
        # unpickler (docs/serving.md, "Trust model").
        if (
            not client.trusted
            and isinstance(job_dict, dict)
            and job_dict.get("kind") in ("search-job", "search-shard-job")
        ):
            objective = job_dict.get("objective")
            if (
                isinstance(objective, dict)
                and objective.get("encoding") == "pickle"
            ):
                self._send(
                    client,
                    request_id,
                    error=SpecError(
                        "pickled objective callables are not accepted "
                        "over TCP; send a named objective ('edp', "
                        "'energy', 'latency', 'cycles', 'slack') or a "
                        "weighted/multi spec instead (see "
                        "docs/serving.md)"
                    ),
                )
                return
        client.stats.jobs += 1
        deadline_ms = message.get("deadline_ms")
        # Route on the envelope's kind tag alone; unpickling the job
        # payload waits for the lane/worker thread. The loop thread
        # stays at pure framing, so a long stacked engine pass never
        # has to share its GIL time with per-job deserialization.
        if (
            isinstance(job_dict, dict)
            and job_dict.get("kind") == "evaluate-job"
        ):
            self._collect(client, request_id, job_dict, fields)
        else:
            self._admit(client, request_id, job_dict, deadline_ms, fields)

    def _handle_op(self, client: _Client, request_id, op, message) -> None:
        if op == "ping":
            self._send(
                client,
                request_id,
                ok={"protocol": PROTOCOL_VERSION, "addresses": self.addresses},
            )
        elif op == "stats":
            self._send(client, request_id, ok=client.stats.to_dict())
        elif op == "server-stats":
            batches = self._evaluate_batches
            self._send(
                client,
                request_id,
                ok={
                    "evaluate_jobs": self._evaluate_jobs,
                    "evaluate_batches": batches,
                    "evaluate_batch_max": self._evaluate_batch_max,
                    "evaluate_batch_mean": (
                        self._evaluate_jobs / batches if batches else 0.0
                    ),
                    "engine_seconds": self._engine_seconds,
                    "clients": len(self._clients),
                    "search_jobs": self._search_jobs,
                    "search_objectives": dict(self._search_objectives),
                    "shard_jobs": self._shard_jobs,
                },
            )
        elif op == "witness-update":
            # Coordinator fan-in: an authoritative scan snapshot from a
            # shard on another daemon. Usually sent as a notification
            # (no ``id``) — fire-and-forget, nothing written back — so
            # a slow witness path can never block shard traffic.
            try:
                search = message.get("search")
                if not isinstance(search, str) or not search:
                    raise SpecError(
                        "witness-update needs a non-empty 'search' id"
                    )
                snapshot = WitnessSnapshot.from_dict(message.get("snapshot"))
            except SpecError as exc:
                if request_id is not None:
                    self._send(client, request_id, error=exc)
                return
            self._board_for(search).post(snapshot)
            if request_id is not None:
                self._send(client, request_id, ok={"applied": True})
        else:
            self._send(
                client,
                request_id,
                error=SpecError(
                    f"unknown op {op!r} (expected ping, stats, "
                    "server-stats, or witness-update)"
                ),
            )

    @staticmethod
    def _resolve_blob_refs(client: _Client, job_dict) -> None:
        """Intern and resolve payload references, loop-side.

        Clients may tag a packed payload with a content-digest ``ref``
        (stored here per connection) and send later copies as
        ``{"encoding": "ref"}`` stubs; this rewrites stubs back to the
        stored blob with dict lookups only — the expensive unpickling
        still happens off-loop. A ref this connection never carried in
        full is a :class:`SpecError` (the client's reconnect logic
        re-sends payloads in full on a fresh connection).
        """
        if not isinstance(job_dict, dict):
            return  # the lane's decoder reports the malformed envelope
        for field, value in job_dict.items():
            if not isinstance(value, dict):
                continue
            ref = value.get("ref")
            if ref is None:
                continue
            if value.get("encoding") == "ref":
                stored = client.blobs.get(ref)
                if stored is None:
                    raise SpecError(
                        f"unknown payload ref {ref!r} in field "
                        f"{field!r}; this connection never carried the "
                        "full payload — resend it inline"
                    )
                job_dict[field] = stored
            else:
                client.blobs[ref] = value

    # ------------------------------------------------------------------
    # Evaluate micro-batching

    def _collect(
        self, client: _Client, request_id, job_dict: dict, fields
    ) -> None:
        """Add one evaluate job (still a wire dict) to the collector.

        Batch formation adapts to engine-lane backpressure: an idle
        lane dispatches the very first arrival immediately (waiting
        out a window would only add latency), and while a batch is in
        flight, later arrivals accumulate — so batch sizes grow to
        match the offered load — bounded by ``batch_max`` jobs or the
        ``batch_window_ms`` window, whichever trips first. Completion
        of the in-flight batch flushes whatever has accumulated
        (:meth:`_batch_done`), keeping the lane saturated with zero
        idle gaps between passes.
        """
        self._batch.append((client, request_id, job_dict, fields))
        if len(self._batch) >= self.config.batch_max:
            self._flush_batch()
        elif self._batch_inflight == 0:
            self._flush_batch()
        elif self._batch_timer is None:
            self._batch_timer = self._loop.call_later(
                self.config.batch_window_ms / 1000.0, self._flush_batch
            )

    def _flush_batch(self) -> None:
        if self._batch_timer is not None:
            self._batch_timer.cancel()
            self._batch_timer = None
        if not self._batch:
            return
        batch, self._batch = self._batch, []
        self._batch_inflight += 1
        future = self._loop.run_in_executor(
            self._batch_executor, self._run_evaluate_batch, batch
        )
        future.add_done_callback(self._batch_done)

    def _batch_done(self, future) -> None:
        self._batch_inflight -= 1
        self._surface_worker_crash(future)
        if self._batch:
            self._flush_batch()

    def _run_evaluate_batch(self, batch) -> None:
        """Executor side: decode, one stacked Session pass, encode.

        The whole wire round-trip for the batch happens here on the
        lane thread — per-job decode failures and modeling failures
        resolve on their own handles, the stats checkpoints around the
        pass attribute its cache hits evenly across the batch's jobs,
        and the loop wakes once per batch to write the pre-encoded
        frames.
        """
        try:
            responses = []
            entries = []
            for client, request_id, job_dict, fields in batch:
                try:
                    job = job_from_dict(job_dict)
                except ReproError as exc:
                    responses.append((client, encode_line(
                        {"id": request_id, "error": error_to_envelope(exc)}
                    )))
                    continue
                entries.append((client, request_id, job, fields))
            if entries:
                started = time.perf_counter()
                with self._engine_lock:
                    before = self.session.cache_stats()
                    handles = [
                        self.session.submit(job)
                        for _c, _i, job, _f in entries
                    ]
                    self.session.run()
                    hits = _total_hits(
                        self.session.cache_stats(since=before)
                    )
                self._engine_seconds += time.perf_counter() - started
                self._evaluate_jobs += len(entries)
                self._evaluate_batches += 1
                self._evaluate_batch_max = max(
                    self._evaluate_batch_max, len(entries)
                )
                per_job_hits = hits / len(entries)
                for (client, request_id, _job, fields), handle in zip(
                    entries, handles
                ):
                    client.stats.cache_hits += per_job_hits
                    exc = handle.exception()
                    if exc is not None:
                        payload = {"id": request_id,
                                   "error": error_to_envelope(exc)}
                    else:
                        payload = {
                            "id": request_id,
                            "result": _result_dict(
                                handle.result(), fields
                            ),
                        }
                    responses.append((client, encode_line(payload)))
            self._loop.call_soon_threadsafe(
                self._write_encoded, responses
            )
        except BaseException as exc:  # noqa: BLE001 - reported per job
            for client, request_id, _job, _fields in batch:
                self._post(client, request_id, error=exc)

    # ------------------------------------------------------------------
    # Search/network admission + worker pool

    def _admit(
        self, client: _Client, request_id, job, deadline_ms, fields
    ) -> None:
        if len(self._queue) >= self.config.queue_depth:
            client.stats.overloaded += 1
            self._send(
                client,
                request_id,
                error=OverloadedError(
                    f"admission queue full ({self.config.queue_depth} jobs "
                    "queued); retry with backoff"
                ),
            )
            return
        if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
            deadline_ms = self.config.default_deadline_ms
        heapq.heappush(
            self._queue,
            _QueueEntry(
                deadline=self._loop.time() + deadline_ms / 1000.0,
                seq=next(self._queue_seq),
                client=client,
                request_id=request_id,
                job=job,
                fields=fields,
            ),
        )
        # Heartbeats cover the job from admission (queue wait included)
        # until its terminal response pops it in _send.
        self._running[(client.name, repr(request_id))] = (client, request_id)
        self._pump_queue()

    def _pump_queue(self) -> None:
        while self._queue and self._active_workers < self.config.workers:
            entry = heapq.heappop(self._queue)
            self._active_workers += 1
            future = self._loop.run_in_executor(
                self._pool, self._run_single, entry
            )
            future.add_done_callback(self._worker_done)

    def _worker_done(self, future) -> None:
        self._active_workers -= 1
        self._surface_worker_crash(future)
        self._pump_queue()

    def _run_single(self, entry: _QueueEntry) -> None:
        client, request_id = entry.client, entry.request_id
        try:
            job = job_from_dict(entry.job)
            if isinstance(job, SearchJob):
                # Attribute the search to the objective that will score
                # it, so server-stats can break search traffic down the
                # same way the results themselves are self-describing.
                objective_name = resolve_objective(job.objective).name
                self._search_jobs += 1
                self._search_objectives[objective_name] = (
                    self._search_objectives.get(objective_name, 0) + 1
                )
            if isinstance(job, (SearchJob, SearchShardJob)):
                # Stream incremental scan state back as progress frames
                # (and, for shards, wire up this search's witness board
                # so snapshots flow both ways).
                job.progress = functools.partial(
                    self._post_progress, client, request_id
                )
            if isinstance(job, SearchShardJob):
                self._shard_jobs += 1
                if job.search_id:
                    job.board = self._board_for(job.search_id)
            with self._engine_lock:
                before = self.session.cache_stats()
                handle = self.session.submit(job)
                self.session.run()
                client.stats.cache_hits += _total_hits(
                    self.session.cache_stats(since=before)
                )
            exc = handle.exception()
            if exc is not None:
                self._post(client, request_id, error=exc)
            else:
                self._post(
                    client,
                    request_id,
                    result=_result_dict(handle.result(), entry.fields),
                )
        except BaseException as exc:  # noqa: BLE001 - reported to client
            self._post(client, request_id, error=exc)

    def _board_for(self, search_id: str) -> WitnessBoard:
        """This search's witness board (created on first touch).

        Called from worker threads (shard jobs) and the loop thread
        (``witness-update``); bounded FIFO eviction — boards are pure
        accelerator state, so evicting one only slows replays down.
        """
        with self._boards_lock:
            board = self._shard_boards.get(search_id)
            if board is None:
                while len(self._shard_boards) >= 32:
                    self._shard_boards.pop(next(iter(self._shard_boards)))
                board = self._shard_boards[search_id] = WitnessBoard()
            return board

    @staticmethod
    def _surface_worker_crash(future) -> None:
        # _run_evaluate_batch/_run_single report everything to their
        # clients; retrieving the (always-None) result here keeps any
        # truly unexpected executor failure from vanishing silently.
        future.result()

    # ------------------------------------------------------------------
    # Responses

    def _post(self, client: _Client, request_id, **payload) -> None:
        """Thread-safe response: hop back onto the loop to write."""
        self._loop.call_soon_threadsafe(
            functools.partial(self._send, client, request_id, **payload)
        )

    def _post_progress(self, client: _Client, request_id, info: dict) -> None:
        """Thread-safe non-terminal progress frame for a running job."""
        self._loop.call_soon_threadsafe(
            functools.partial(self._send, client, request_id, progress=info)
        )

    def _heartbeat_tick(self) -> None:
        """Loop-side liveness pings: one ``{"heartbeat": true}``
        progress frame per queued/running pool job per period, so
        clients waiting on long searches can tell a busy daemon from a
        dead one (:class:`~repro.common.errors.WorkerLostError` is the
        client-side verdict when these stop arriving)."""
        self._heartbeat_timer = None
        if self._stopping.is_set():
            return
        for client, request_id in list(self._running.values()):
            self._send(client, request_id, progress={"heartbeat": True})
        self._heartbeat_timer = self._loop.call_later(
            self.config.heartbeat_s, self._heartbeat_tick
        )

    def _write_encoded(self, responses) -> None:
        """Loop side: write pre-encoded frames (one hop per batch),
        coalesced into one socket write per client."""
        grouped: dict[_Client, list[bytes]] = {}
        for client, data in responses:
            grouped.setdefault(client, []).append(data)
        for client, frames in grouped.items():
            if client.writer.is_closing():
                continue
            data = b"".join(frames)
            client.stats.bytes_out += len(data)
            client.writer.write(data)

    def _send(
        self,
        client: _Client,
        request_id,
        *,
        result=None,
        error=None,
        ok=None,
        progress=None,
    ) -> None:
        response: dict = {"id": request_id}
        if progress is not None:
            # Non-terminal: the job stays registered for heartbeats.
            response["progress"] = progress
        else:
            self._running.pop((client.name, repr(request_id)), None)
            if error is not None:
                response["error"] = error_to_envelope(error)
            elif ok is not None:
                response["ok"] = ok
            else:
                response["result"] = result
        if client.writer.is_closing():
            return
        data = encode_line(response)
        client.stats.bytes_out += len(data)
        client.writer.write(data)


def _total_hits(stats_delta: dict) -> float:
    return float(
        sum(stage.get("hits", 0) for stage in stats_delta.values())
    )


def _result_dict(result, fields) -> dict:
    """Serialize one result, honoring the request's ``fields``
    projection. Evaluate results project natively (their ``to_dict``
    skips building unrequested sections); other result kinds fall back
    to a post-filter over the full envelope — the schema/kind tags
    always survive so clients can still sanity-check what came back."""
    if fields is None:
        return result.to_dict()
    if isinstance(result, EvaluationResult):
        return result.to_dict(fields=fields)
    data = result.to_dict()
    keep = {"schema", "kind", *fields}
    return {key: value for key, value in data.items() if key in keep}
