"""Wire protocol for the serving daemon: newline-delimited JSON.

One message per line, every message a JSON object. Requests carry a
client-assigned ``id`` plus either a ``job`` (a job envelope from
:func:`repro.api.jobs.job_from_dict` — ``schema: 1``, kind-tagged) or
an ``op`` (control verbs: ``ping``, ``stats``). Responses echo the
``id`` with exactly one of:

* ``result`` — a ``schema: 1`` result dict (see
  :mod:`repro.model.result`), bit-identical to what an in-process
  :class:`~repro.api.Session` would have produced,
* ``error`` — a structured envelope ``{"kind": ..., "message": ...}``
  mapping the :class:`~repro.common.errors.ReproError` hierarchy; the
  daemon never writes a traceback to the wire,
* ``ok`` — the payload of a control ``op``.

Responses are written per job as each finishes, so they may interleave
across the ids in flight on one connection; clients match on ``id``.

Long-running jobs additionally stream *progress envelopes* — ``{"id",
"progress": {...}}`` — before their terminal response: heartbeats
(``{"heartbeat": true}``) every ``heartbeat_s`` seconds while the job
runs or queues, and incremental search state (evaluated count,
best-so-far score, frontier size, witness snapshots) for search and
shard jobs. Progress frames are non-terminal and may repeat; clients
treat any of them as a liveness signal, and a client that sees none
for a whole timeout window raises
:class:`~repro.common.errors.WorkerLostError` instead of hanging. A
request without an ``id`` is a *notification* (e.g. the coordinator's
``witness-update`` op): the daemon applies it and writes nothing
back.

Error kinds round-trip: the client rebuilds the *same exception type*
with the same message, so remote handles behave identically to
in-process ones (capacity-overflow reports included — a
``ValidationError`` carries its whole usage report in the message).
Unregistered :class:`ReproError` subclasses map to their nearest
registered base; non-Repro failures inside the daemon map to kind
``"internal"`` with a one-line message, never a traceback.
"""

from __future__ import annotations

import json

from repro.common.errors import (
    MappingError,
    OverloadedError,
    ReproError,
    SpecError,
    ValidationError,
    WorkerLostError,
)
from repro.model.result import (
    EvaluationResult,
    FusedResult,
    NetworkResult,
    SearchResult,
    SearchShardResult,
)

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "ERROR_KINDS",
    "encode_line",
    "decode_line",
    "error_to_envelope",
    "error_from_envelope",
    "result_from_dict",
]

PROTOCOL_VERSION = 1

#: Upper bound on one framed message; the reader rejects longer lines.
#: Network-job envelopes carry whole layer lists, hence the headroom.
MAX_LINE_BYTES = 32 * 1024 * 1024

#: Registered error kinds, stable on the wire. The client rebuilds the
#: mapped class; servers serialize unknown subclasses as their nearest
#: registered base (walking the MRO).
ERROR_KINDS: dict[str, type[ReproError]] = {
    "spec": SpecError,
    "mapping": MappingError,
    "validation": ValidationError,
    "overloaded": OverloadedError,
    "worker-lost": WorkerLostError,
    "error": ReproError,
}

_KIND_BY_TYPE = {cls: kind for kind, cls in ERROR_KINDS.items()}

_RESULT_KINDS = {
    "evaluation": EvaluationResult,
    "search": SearchResult,
    "search-shard": SearchShardResult,
    "network": NetworkResult,
    "fused": FusedResult,
}


def encode_line(payload: dict) -> bytes:
    """One wire frame: compact JSON plus the newline delimiter."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse one frame; malformed input raises :class:`SpecError`."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SpecError(f"malformed protocol line: {exc}") from exc
    if not isinstance(message, dict):
        raise SpecError(
            "protocol messages must be JSON objects, got "
            f"{type(message).__name__}"
        )
    return message


def error_to_envelope(exc: BaseException) -> dict:
    """Serialize an exception to a ``{"kind", "message"}`` envelope.

    :class:`ReproError` subclasses keep their identity (nearest
    registered base for unregistered subclasses); anything else —
    an unexpected server-side failure — becomes kind ``"internal"``
    with a single terse line, never a traceback.
    """
    if isinstance(exc, ReproError):
        for klass in type(exc).__mro__:
            kind = _KIND_BY_TYPE.get(klass)
            if kind is not None:
                return {"kind": kind, "message": str(exc)}
    return {"kind": "internal", "message": f"{type(exc).__name__}: {exc}"}


def error_from_envelope(data: dict) -> ReproError:
    """Rebuild the exception a daemon serialized.

    Unknown kinds (including ``"internal"``) come back as the
    :class:`ReproError` base — callers can always catch one type.
    """
    if not isinstance(data, dict):
        return ReproError(f"malformed error envelope: {data!r}")
    cls = ERROR_KINDS.get(data.get("kind"), ReproError)
    return cls(str(data.get("message", "")))


def result_from_dict(data: dict):
    """Rebuild any ``schema: 1`` result, dispatching on its kind."""
    if not isinstance(data, dict):
        raise SpecError(
            f"serialized result must be a dict, got {type(data).__name__}"
        )
    kind = data.get("kind")
    cls = _RESULT_KINDS.get(kind)
    if cls is None:
        raise SpecError(
            f"unknown result kind {kind!r}; expected one of "
            f"{sorted(_RESULT_KINDS)}"
        )
    return cls.from_dict(data)
