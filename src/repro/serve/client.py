"""The thin client: :func:`connect` and :class:`RemoteSession`.

A :class:`RemoteSession` mirrors the :class:`~repro.api.Session`
surface — ``submit`` / ``submit_many`` / ``evaluate`` / ``search`` /
``evaluate_network`` — over one daemon connection. Submissions return
:class:`RemoteHandle`\\ s that behave exactly like in-process
:class:`~repro.api.jobs.JobHandle`\\ s: ``result()`` returns the same
``schema: 1`` result objects (bit-identical payloads), ``exception()``
returns the same :class:`~repro.common.errors.ReproError` types with
the same messages, and both take ``timeout=``.

A dropped connection (daemon restart, socket error) is retried once
per wait: the client reconnects and resends every *resendable* request
still in flight. Most job kinds are pure functions of their payload
and replay safely; a mapspace :class:`SearchJob` is not — it consumes
the daemon's seeded candidate stream and search budget — so its handle
resolves with :class:`~repro.common.errors.WorkerLostError` instead of
being silently re-run (see :func:`repro.api.jobs.job_resendable`). The
daemon sheds load with :class:`~repro.common.errors.OverloadedError`
envelopes; those are surfaced, not retried, so the caller controls
backoff.

Long-running jobs stream non-terminal *progress* frames — incremental
search state plus periodic heartbeats. ``worker_timeout=`` turns those
heartbeats into a liveness watchdog: a session that hears nothing at
all for the whole window resolves its in-flight handles with
:class:`WorkerLostError` rather than hanging on a dead daemon.
"""

from __future__ import annotations

import hashlib
import itertools
import socket
import threading
import time
from dataclasses import replace
from pathlib import Path

from repro.api.jobs import (
    EvaluateJob,
    NetworkJob,
    SearchJob,
    SearchShardJob,
    _pack,
    job_resendable,
)
from repro.api.session import coerce_job
from repro.common.errors import ReproError, SpecError, WorkerLostError
from repro.io.yaml_spec import load_design
from repro.model.engine import Design
from repro.model.result import SearchResult
from repro.serve.protocol import (
    decode_line,
    encode_line,
    error_from_envelope,
    result_from_dict,
)

__all__ = ["connect", "RemoteSession", "RemoteHandle"]


def _require_workload(job) -> None:
    if (
        isinstance(job, (EvaluateJob, SearchJob, SearchShardJob))
        and job.workload is None
    ):
        raise SpecError(
            f"{type(job).__name__} needs a workload (a spec string/"
            "dict/path carries its own; Python-object jobs take it "
            "explicitly)"
        )


def connect(address, *, timeout: float | None = 10.0) -> "RemoteSession":
    """Open a :class:`RemoteSession` to a serving daemon.

    ``address`` accepts a ``(host, port)`` tuple, ``"host:port"``,
    ``"tcp://host:port"``, ``"unix:///path/to.sock"``, or a bare
    filesystem path (anything with a path separator, or no ``:port``
    suffix, is treated as a unix socket). ``timeout`` bounds the
    connection attempt, not job waits — those take per-call
    ``timeout=`` arguments.
    """
    return RemoteSession(address, connect_timeout=timeout)


def _parse_address(address) -> tuple[str, str, int | None]:
    if isinstance(address, tuple):
        if len(address) != 2:
            raise SpecError(
                f"tuple addresses must be (host, port), got {address!r}"
            )
        return ("tcp", str(address[0]), int(address[1]))
    if isinstance(address, Path):
        return ("unix", str(address), None)
    if isinstance(address, str):
        text = address
        if text.startswith("unix://"):
            return ("unix", text[len("unix://"):], None)
        if text.startswith("tcp://"):
            text = text[len("tcp://"):]
        if "/" not in text:
            host, sep, port = text.rpartition(":")
            if sep and host and port.isdigit():
                return ("tcp", host, int(port))
        return ("unix", text, None)
    raise SpecError(
        f"cannot parse address from {type(address).__name__}; expected "
        "a (host, port) tuple, 'host:port', 'tcp://...', 'unix://...', "
        "or a socket path"
    )


class RemoteHandle:
    """A :class:`~repro.api.jobs.JobHandle`-compatible ticket for one
    request in flight on a :class:`RemoteSession`."""

    __slots__ = (
        "job", "progress", "on_progress", "_session", "_id", "_done",
        "_result", "_raw_result", "_fields", "_exception",
    )

    def __init__(
        self, session: "RemoteSession", job, request_id: int, fields=None
    ):
        self.job = job
        #: Last substantive progress payload the daemon streamed
        #: (heartbeats excluded); ``None`` until one arrives.
        self.progress: dict | None = None
        #: Optional callback invoked (on the waiting thread) for each
        #: substantive progress frame. Exceptions are swallowed — an
        #: observer must not kill the read loop.
        self.on_progress = None
        self._session = session
        self._id = request_id
        self._done = False
        self._result = None
        self._raw_result = None
        self._fields = fields
        self._exception: BaseException | None = None

    def done(self) -> bool:
        """True once the daemon's response has been read."""
        return self._done

    def result(self, timeout: float | None = None):
        """The job's result (same types and bit-identical payloads as
        the in-process handle); re-raises the job's captured error.
        ``timeout`` bounds the wait in seconds
        (:class:`TimeoutError` on expiry; the handle stays pending).

        Jobs submitted with a ``fields=`` projection return the
        server's projected result *dict* — a partial envelope has no
        Result-object form."""
        if not self._done:
            self._session._wait(self, timeout=timeout)
        if self._exception is not None:
            raise self._exception
        if self._raw_result is not None:
            # Result objects are built lazily: the read loop stays a
            # pure demultiplexer, and callers that only poll
            # ``exception()`` never pay for payload reconstruction.
            with self._session._lock:
                if self._raw_result is not None:
                    raw = self._raw_result[0]
                    if self._fields is None:
                        self._result = result_from_dict(raw)
                    elif isinstance(raw, dict):
                        self._result = raw
                    else:
                        raise SpecError(
                            "projected response carried no result "
                            f"payload (got {type(raw).__name__})"
                        )
                    self._raw_result = None
        return self._result

    def exception(
        self, timeout: float | None = None
    ) -> BaseException | None:
        """The job's captured failure (``None`` on success)."""
        if not self._done:
            self._session._wait(self, timeout=timeout)
        return self._exception

    def _resolve(self, result=None, exception: BaseException | None = None):
        self._result = result
        self._exception = exception
        self._done = True

    def __repr__(self) -> str:
        state = "pending"
        if self._done:
            state = "failed" if self._exception is not None else "done"
        return f"RemoteHandle({type(self.job).__name__}, {state})"


class RemoteSession:
    """One connection to a serving daemon, speaking the Session API.

    Thread-safe: any thread may submit or wait; reads are serialized on
    one lock and responses resolve whichever handles they belong to,
    so concurrent waiters make progress for each other.
    """

    def __init__(
        self,
        address,
        *,
        connect_timeout: float | None = 10.0,
        worker_timeout: float | None = None,
    ):
        self._address = _parse_address(address)
        self._connect_timeout = connect_timeout
        #: Liveness window: with the daemon heartbeating every few
        #: seconds, *any* frame (heartbeats included) resets the clock;
        #: total silence past the window means the worker is gone, and
        #: every in-flight handle resolves with WorkerLostError instead
        #: of hanging. ``None`` disables the watchdog.
        self._worker_timeout = worker_timeout
        self._last_rx = time.monotonic()
        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        #: request id -> (handle, encoded request); kept until the
        #: response lands so a reconnect can resend everything pending.
        self._inflight: dict[int, tuple[RemoteHandle, bytes]] = {}
        #: payload interning: id(obj) -> (obj, digest, packed blob).
        #: Holding the object keeps its id stable; DSE clients reuse a
        #: handful of designs/workloads, so this stays small.
        self._blob_packs: dict[int, tuple[object, str, dict]] = {}
        #: digests the *current* connection has carried in full; the
        #: set resets on reconnect so refs never dangle server-side.
        self._sent_refs: set[str] = set()
        self._sock: socket.socket | None = None
        self._rfile = None
        self._closed = False
        self._connect()

    # ------------------------------------------------------------------
    # Connection management

    def _connect(self) -> None:
        kind, host, port = self._address
        if kind == "tcp":
            sock = socket.create_connection(
                (host, port), timeout=self._connect_timeout
            )
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._connect_timeout)
            sock.connect(host)
        sock.settimeout(None)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._last_rx = time.monotonic()

    def _teardown(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._rfile = None

    def _reconnect_and_resend(self) -> None:
        """Reconnect and replay every *resendable* request still
        awaiting a response. The fresh connection has an empty
        server-side blob store, so job requests are re-encoded from
        scratch — the first replay carries each interned payload in
        full again.

        Not every job replays safely: a mapspace SearchJob consumes
        the daemon's seeded candidate stream and search budget, and
        the first attempt's fate is unknown — it may still be running
        to completion server-side. Silently re-running it would spend
        the budget twice, so those handles resolve with
        :class:`WorkerLostError` instead (:func:`job_resendable`)."""
        self._teardown()
        self._connect()
        self._sent_refs.clear()
        frames: list[bytes] = []
        lost: WorkerLostError | None = None
        for request_id, (handle, payload) in list(self._inflight.items()):
            if not job_resendable(handle.job):
                if lost is None:
                    lost = WorkerLostError(
                        "connection lost with a non-resendable search "
                        "in flight; the first attempt's fate is unknown "
                        "(it consumes seeded candidate stream and "
                        "search budget server-side), so it was not "
                        "silently re-run — resubmit explicitly"
                    )
                del self._inflight[request_id]
                handle._resolve(exception=lost)
                continue
            if handle.job is not None:
                payload = self._job_frame(
                    request_id, handle.job, handle._fields
                )
                self._inflight[request_id] = (handle, payload)
            frames.append(payload)
        if frames:
            self._sock.sendall(b"".join(frames))

    def close(self) -> None:
        """Close the connection; pending handles resolve with a
        :class:`ReproError` rather than hanging."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            dropped = ReproError("connection closed with the job in flight")
            for handle, _payload in self._inflight.values():
                handle._resolve(exception=dropped)
            self._inflight.clear()
            self._teardown()

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Payload interning

    def _pack_interned(self, obj) -> dict:
        """Pack ``obj`` once per object, then send a digest reference.

        The first request on a connection carries the full tagged blob
        plus its content digest; the daemon stores it per connection,
        and every later request for the same object is a ~60-byte
        ``{"encoding": "ref"}`` stub. For DSE traffic — one design and
        workload, thousands of mappings — this removes the dominant
        per-job pickling and wire cost on both ends.
        """
        entry = self._blob_packs.get(id(obj))
        if entry is None or entry[0] is not obj:
            blob = _pack(obj)
            digest = hashlib.sha256(
                blob["data"].encode("ascii")
            ).hexdigest()[:24]
            entry = (obj, digest, blob)
            self._blob_packs[id(obj)] = entry
        _obj, digest, blob = entry
        if digest in self._sent_refs:
            return {"encoding": "ref", "ref": digest}
        self._sent_refs.add(digest)
        return {**blob, "ref": digest}

    def _job_wire(self, job) -> dict:
        """The wire dict for one job; evaluate jobs (the micro-batched
        hot path) intern their design/workload payloads."""
        if isinstance(job, EvaluateJob):
            return job.to_dict(pack=self._pack_interned)
        return job.to_dict()

    def _job_frame(self, request_id: int, job, fields) -> bytes:
        request: dict = {"id": request_id, "job": self._job_wire(job)}
        if fields is not None:
            request["fields"] = list(fields)
        return encode_line(request)

    # ------------------------------------------------------------------
    # Submission (the Session surface)

    def submit(
        self, spec, *, search: bool = False, fields=None, on_progress=None
    ) -> RemoteHandle:
        """Queue one job on the daemon; accepts every spec form
        :meth:`repro.api.Session.submit` accepts.

        ``fields`` asks the daemon to project the result to the named
        top-level keys (plus the virtual ``"summary"`` scalar block for
        evaluate results); the handle then resolves to the projected
        dict instead of a Result object. Throughput-bound sweeps that
        only need scalars should project — it removes most of the
        per-job response encode/decode cost.

        ``on_progress`` registers a callback for the job's streamed
        progress frames (search/shard jobs emit them per block;
        heartbeats are filtered out)."""
        job = coerce_job(spec, search=search)
        _require_workload(job)
        with self._lock:
            if self._closed:
                raise SpecError("cannot submit to a closed RemoteSession")
            request_id = next(self._ids)
            payload = self._job_frame(request_id, job, fields)
            handle = RemoteHandle(self, job, request_id, fields)
            handle.on_progress = on_progress
            self._inflight[request_id] = (handle, payload)
            try:
                self._sock.sendall(payload)
            except (ConnectionError, BrokenPipeError, OSError):
                self._reconnect_and_resend()
        return handle

    def submit_many(
        self, specs, *, search: bool = False, fields=None
    ) -> list[RemoteHandle]:
        """Queue a batch; jobs submitted together land in the daemon's
        same micro-batch window whenever the collector allows. The
        whole batch goes out as one socket write, so the daemon sees
        the jobs back to back rather than one syscall apart.
        ``fields`` projects every result in the batch (see
        :meth:`submit`)."""
        jobs = [coerce_job(spec, search=search) for spec in specs]
        for job in jobs:
            _require_workload(job)
        with self._lock:
            if self._closed:
                raise SpecError("cannot submit to a closed RemoteSession")
            handles: list[RemoteHandle] = []
            frames: list[bytes] = []
            for job in jobs:
                request_id = next(self._ids)
                payload = self._job_frame(request_id, job, fields)
                handle = RemoteHandle(self, job, request_id, fields)
                self._inflight[request_id] = (handle, payload)
                handles.append(handle)
                frames.append(payload)
            try:
                self._sock.sendall(b"".join(frames))
            except (ConnectionError, BrokenPipeError, OSError):
                self._reconnect_and_resend()
        return handles

    def evaluate(self, design, workload=None, mapping=None):
        """Mirror of :meth:`repro.api.Session.evaluate`."""
        if workload is None and not isinstance(design, Design):
            if mapping is None:
                handle = self.submit(design)
            elif isinstance(design, (dict, str, Path)):
                spec_design, spec_workload = load_design(design)
                handle = self.submit(
                    EvaluateJob(spec_design, spec_workload, mapping)
                )
            else:
                raise SpecError(
                    "a mapping override needs a Design + workload or a "
                    "dict / YAML string / YAML path spec"
                )
        else:
            handle = self.submit(EvaluateJob(design, workload, mapping))
        result = handle.result()
        if isinstance(result, SearchResult):
            return result.best_or_raise()
        return result

    def search(
        self,
        design,
        workload=None,
        objective=None,
        candidates=None,
        parallel=None,
        batch_size=None,
        strategy=None,
        budget=None,
        seed=None,
        shards=None,
        on_progress=None,
    ) -> SearchResult:
        """Mirror of :meth:`repro.api.Session.search`.

        Named/weighted/multi objectives travel as plain schema-v1 spec
        data — ``objective="energy"`` or ``objective=("energy",
        "cycles", "slack")`` puts no pickle on the wire, and the
        result's ``frontier`` section can be projected with
        ``submit(job, fields=["frontier"])``. A legacy callable
        objective is pickled (deprecation warning) and the daemon
        rejects it on TCP transports; use a unix socket or a named
        objective instead (docs/serving.md, "Trust model").

        ``budget``/``seed`` override the daemon's sampling knobs for
        this search; ``shards`` asks the daemon to shard the scan
        across its configured workers; ``on_progress`` streams
        incremental best-so-far state (see :meth:`submit`).
        """
        if isinstance(design, SearchJob):
            job = design
        elif isinstance(design, (EvaluateJob, NetworkJob)):
            raise SpecError(
                f"search() cannot run a {type(design).__name__}; pass a "
                "SearchJob, a Design + workload, or a design spec"
            )
        elif workload is None and not isinstance(design, Design):
            job = coerce_job(design, search=True)
        else:
            job = SearchJob(design, workload)
        overrides = {
            name: value
            for name, value in (
                ("objective", objective),
                ("candidates", candidates),
                ("parallel", parallel),
                ("batch_size", batch_size),
                ("strategy", strategy),
                ("budget", budget),
                ("seed", seed),
                ("shards", shards),
            )
            if value is not None
        }
        if overrides:
            job = replace(job, **overrides)
        return self.submit(job, on_progress=on_progress).result()

    def evaluate_network(
        self, design, layers, densities_for, parallel=None
    ):
        """Mirror of :meth:`repro.api.Session.evaluate_network`."""
        handle = self.submit(
            NetworkJob(design, list(layers), densities_for, parallel)
        )
        return handle.result()

    def evaluate_fused(
        self, design, graph, densities=None, fused=None, parallel=None
    ):
        """Mirror of :meth:`repro.api.Session.evaluate_fused`."""
        from repro.api.jobs import FusedJob

        handle = self.submit(
            FusedJob(design, graph, densities, fused, parallel)
        )
        return handle.result()

    # ------------------------------------------------------------------
    # Control ops

    def ping(self, timeout: float | None = None) -> dict:
        """Round-trip a ``ping``; returns the daemon's protocol info."""
        return self._op("ping", timeout=timeout)

    def stats(self, timeout: float | None = None) -> dict:
        """This connection's server-side stats (jobs, attributed cache
        hits, bytes in/out, overload rejections)."""
        return self._op("stats", timeout=timeout)

    def server_stats(self, timeout: float | None = None) -> dict:
        """Daemon-wide counters: evaluate jobs/batches, realized batch
        sizes (mean/max), cumulative engine seconds, client count."""
        return self._op("server-stats", timeout=timeout)

    def notify(self, op: str, **payload) -> None:
        """Fire-and-forget: send an ``op`` frame with no ``id``. The
        daemon applies it without replying (the coordinator's
        ``witness-update`` fan-out rides on this). Best-effort by
        design — send failures are swallowed; anything that must
        arrive should use a replied op instead."""
        frame = encode_line({"op": op, **payload})
        with self._lock:
            if self._closed or self._sock is None:
                return
            try:
                self._sock.sendall(frame)
            except (ConnectionError, BrokenPipeError, OSError):
                pass

    def _op(self, op: str, *, timeout: float | None) -> dict:
        with self._lock:
            if self._closed:
                raise SpecError("RemoteSession is closed")
            request_id = next(self._ids)
            payload = encode_line({"id": request_id, "op": op})
            handle = RemoteHandle(self, None, request_id)
            self._inflight[request_id] = (handle, payload)
            try:
                self._sock.sendall(payload)
            except (ConnectionError, BrokenPipeError, OSError):
                self._reconnect_and_resend()
        return handle.result(timeout=timeout)

    # ------------------------------------------------------------------
    # Response plumbing

    def _wait(self, handle: RemoteHandle, *, timeout: float | None) -> None:
        """Read responses until ``handle`` resolves. Responses for
        other handles resolve those as a side effect, so any one
        waiter drains the connection for all of them."""
        acquired = (
            self._lock.acquire()
            if timeout is None
            else self._lock.acquire(timeout=timeout)
        )
        if not acquired:
            raise TimeoutError(
                f"no response within {timeout:g}s (connection busy)"
            )
        try:
            if self._closed:
                # close() already resolved every in-flight handle.
                return
            retried = False
            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            try:
                while not handle._done:
                    now = time.monotonic()
                    if deadline is not None and now >= deadline:
                        raise TimeoutError(f"no response within {timeout:g}s")
                    # Read in slices bounded by both the caller's
                    # deadline and the liveness lease, so heartbeat
                    # silence is noticed even under an infinite wait.
                    slice_s = None if deadline is None else deadline - now
                    if self._worker_timeout is not None:
                        lease = self._last_rx + self._worker_timeout - now
                        if lease <= 0:
                            self._worker_lost()
                            continue
                        slice_s = (
                            lease if slice_s is None
                            else min(slice_s, lease)
                        )
                    self._sock.settimeout(slice_s)
                    try:
                        line = self._rfile.readline()
                    except socket.timeout:
                        continue
                    except (ConnectionError, OSError):
                        line = b""
                    if not line:
                        if retried:
                            raise ReproError(
                                "connection to the daemon lost (retried once)"
                            )
                        retried = True
                        self._reconnect_and_resend()
                        continue
                    self._last_rx = time.monotonic()
                    self._handle_response(decode_line(line))
            finally:
                if self._sock is not None:
                    self._sock.settimeout(None)
        finally:
            self._lock.release()

    def _worker_lost(self) -> None:
        """The liveness lease expired: no frame — not even a heartbeat
        — inside ``worker_timeout``. The daemon is presumed dead;
        every in-flight handle resolves with :class:`WorkerLostError`
        and the session closes (the coordinator reassigns the shard
        on a fresh connection to a live worker)."""
        kind, host, port = self._address
        where = host if port is None else f"{host}:{port}"
        exc = WorkerLostError(
            f"no frame from the daemon at {where} in "
            f"{self._worker_timeout:g}s (heartbeats included) — worker "
            "presumed dead"
        )
        for handle, _payload in self._inflight.values():
            handle._resolve(exception=exc)
        self._inflight.clear()
        self._closed = True
        self._teardown()

    def _handle_response(self, message: dict) -> None:
        request_id = message.get("id")
        if "progress" in message:
            entry = self._inflight.get(request_id)
            if entry is None:
                return
            handle, _payload = entry
            info = message["progress"]
            if isinstance(info, dict) and info.get("heartbeat"):
                return  # pure liveness; _last_rx already refreshed
            handle.progress = info
            callback = handle.on_progress
            if callback is not None:
                try:
                    callback(info)
                except Exception:
                    pass  # an observer must not kill the read loop
            return
        entry = self._inflight.pop(request_id, None)
        if entry is None:
            # Unknown id: a duplicate after a resend race, or a
            # server-initiated framing error notice (id null). Drop it.
            return
        handle, _payload = entry
        if "error" in message:
            handle._resolve(exception=error_from_envelope(message["error"]))
        elif "ok" in message:
            handle._resolve(result=message["ok"])
        else:
            # Deferred: ``result()`` rebuilds the Result object on
            # first access (see RemoteHandle.result). Tuple-wrapped so
            # a missing payload still hits result_from_dict's checks.
            handle._raw_result = (message.get("result"),)
            handle._resolve(result=None)
