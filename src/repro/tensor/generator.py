"""Synthetic sparse tensor generators.

Each generator mirrors one of the sparsity patterns in Table 4 of the
paper: uniform random (randomly pruned DNNs, activations), banded
(scientific matrices), and fixed-structured (N:M pruned weights).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.common.errors import SpecError


def uniform_random_tensor(
    shape: Sequence[int],
    density: float,
    seed: int | None = None,
    value_low: float = 0.5,
    value_high: float = 2.0,
) -> np.ndarray:
    """Tensor with exactly ``round(size * density)`` nonzeros, placed
    uniformly at random (sampling without replacement).

    Matching the paper's uniform density model, the *count* of nonzeros
    is fixed so tile occupancies follow a hypergeometric distribution.
    """
    if not 0.0 <= density <= 1.0:
        raise SpecError(f"density must be in [0, 1], got {density}")
    rng = np.random.default_rng(seed)
    size = int(np.prod(shape))
    nnz = int(round(size * density))
    flat = np.zeros(size)
    if nnz:
        positions = rng.choice(size, size=nnz, replace=False)
        flat[positions] = rng.uniform(value_low, value_high, size=nnz)
    return flat.reshape(tuple(shape))


def banded_matrix(
    rows: int,
    cols: int,
    band_width: int,
    fill_density: float = 1.0,
    seed: int | None = None,
) -> np.ndarray:
    """Matrix that is nonzero only within ``|i - j| <= band_width``.

    ``fill_density`` thins the band uniformly, modeling imperfectly
    filled bands seen in SuiteSparse matrices.
    """
    if band_width < 0:
        raise SpecError(f"band_width must be >= 0, got {band_width}")
    if not 0.0 <= fill_density <= 1.0:
        raise SpecError(f"fill_density must be in [0, 1], got {fill_density}")
    rng = np.random.default_rng(seed)
    i = np.arange(rows)[:, None]
    j = np.arange(cols)[None, :]
    in_band = np.abs(i - j) <= band_width
    values = rng.uniform(0.5, 2.0, size=(rows, cols))
    keep = rng.uniform(size=(rows, cols)) < fill_density
    return np.where(in_band & keep, values, 0.0)


def structured_sparse_matrix(
    rows: int,
    cols: int,
    nonzeros_per_block: int,
    block_size: int,
    seed: int | None = None,
) -> np.ndarray:
    """N:M structured-sparse matrix along the column (innermost) axis.

    Every aligned block of ``block_size`` consecutive elements in a row
    holds exactly ``nonzeros_per_block`` nonzeros (the 2:4 pattern of
    the Ampere sparse tensor core generalised to N:M). ``cols`` must be
    a multiple of ``block_size``.
    """
    if nonzeros_per_block > block_size:
        raise SpecError(
            f"{nonzeros_per_block}:{block_size} structure is infeasible"
        )
    if cols % block_size != 0:
        raise SpecError(
            f"cols={cols} must be a multiple of block_size={block_size}"
        )
    rng = np.random.default_rng(seed)
    out = np.zeros((rows, cols))
    for r in range(rows):
        for b in range(0, cols, block_size):
            picks = rng.choice(block_size, size=nonzeros_per_block, replace=False)
            out[r, b + picks] = rng.uniform(0.5, 2.0, size=nonzeros_per_block)
    return out
