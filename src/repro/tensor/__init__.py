"""Tensor substrate: fibertree abstraction and sparse tensor generators.

The fibertree (Sec 5.3.1 of the paper) is a format-agnostic description
of a sparse tensor: each dimension is a named *rank*, each rank holds
*fibers* (one per parent coordinate), and a fiber maps coordinates to
payloads (sub-fibers or leaf values). Empty payloads are omitted, so
the tree reflects the tensor's sparsity structure exactly.
"""

from repro.tensor.fibertree import Fiber, FiberTree
from repro.tensor.generator import (
    banded_matrix,
    structured_sparse_matrix,
    uniform_random_tensor,
)

__all__ = [
    "Fiber",
    "FiberTree",
    "uniform_random_tensor",
    "banded_matrix",
    "structured_sparse_matrix",
]
