"""Fibertree: format-agnostic representation of sparse tensors.

A tensor with ranks ``(R1, R0)`` is a tree: rank ``R1`` holds one root
fiber whose coordinates are the nonempty ``R1`` indices; each payload is
a rank-``R0`` fiber; leaf payloads are the nonzero values. Coordinates
with all-zero payloads are omitted, so emptiness of any sub-tensor is
directly visible (Fig. 7b of the paper).

This module is the ground truth used by the *actual data* density model
and by the cycle-level reference simulator; the analytical model only
works with statistical summaries of fibers.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import SpecError


@dataclass
class Fiber:
    """A single fiber: sorted coordinates with payloads.

    Payloads are either child :class:`Fiber` objects (intermediate
    ranks) or numeric leaf values (the lowest rank).
    """

    coords: list[int] = field(default_factory=list)
    payloads: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.coords) != len(self.payloads):
            raise SpecError(
                f"fiber has {len(self.coords)} coords but "
                f"{len(self.payloads)} payloads"
            )

    def __len__(self) -> int:
        return len(self.coords)

    @property
    def is_empty(self) -> bool:
        return not self.coords

    def payload_at(self, coord: int):
        """Payload stored at ``coord``, or None if the position is empty."""
        # Fibers are small; linear scan keeps the structure simple. The
        # reference simulator uses dense numpy views on hot paths.
        for c, p in zip(self.coords, self.payloads):
            if c == coord:
                return p
        return None

    def iter_nonempty(self) -> Iterator[tuple[int, object]]:
        yield from zip(self.coords, self.payloads)


class FiberTree:
    """A fibertree over a dense numpy array.

    The tree is built lazily from the dense array; rank names run from
    the outermost (``rank_names[0]``) to the innermost dimension.
    """

    def __init__(self, dense: np.ndarray, rank_names: Sequence[str]):
        dense = np.asarray(dense)
        if dense.ndim != len(rank_names):
            raise SpecError(
                f"tensor has {dense.ndim} dims but {len(rank_names)} rank names"
            )
        self.dense = dense
        self.rank_names = list(rank_names)
        self._root: Fiber | None = None

    @property
    def shape(self) -> tuple[int, ...]:
        return self.dense.shape

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.dense))

    @property
    def size(self) -> int:
        return int(self.dense.size)

    @property
    def density(self) -> float:
        return self.nnz / self.size if self.size else 0.0

    @property
    def root(self) -> Fiber:
        if self._root is None:
            self._root = _build_fiber(self.dense)
        return self._root

    def fibers_at_rank(self, rank: int) -> list[Fiber]:
        """All non-empty fibers at tree depth ``rank`` (0 = root rank)."""
        if not 0 <= rank < len(self.rank_names):
            raise SpecError(f"rank {rank} out of range for {self.rank_names}")
        level = [self.root]
        for _ in range(rank):
            level = [p for f in level for p in f.payloads if isinstance(p, Fiber)]
        return level

    def tile(self, origin: Sequence[int], shape: Sequence[int]) -> np.ndarray:
        """Dense view of the tile starting at ``origin`` with ``shape``.

        Tiles extending past the tensor edge are truncated, matching
        coordinate-space tiling of an exact-fit or ragged mapping.
        """
        if len(origin) != self.dense.ndim or len(shape) != self.dense.ndim:
            raise SpecError("origin/shape rank mismatch")
        slices = tuple(
            slice(o, min(o + s, d))
            for o, s, d in zip(origin, shape, self.dense.shape)
        )
        return self.dense[slices]

    def tile_occupancies(self, shape: Sequence[int]) -> list[int]:
        """Nonzero counts of every aligned tile of ``shape``.

        Enumerates the coordinate-space tiling of the whole tensor with
        the given tile shape (ragged edge tiles included). This is the
        exact statistic the *actual data* density model summarises.
        """
        counts: list[int] = []
        for origin in _tile_origins(self.dense.shape, shape):
            counts.append(int(np.count_nonzero(self.tile(origin, shape))))
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FiberTree(shape={self.shape}, ranks={self.rank_names}, "
            f"nnz={self.nnz})"
        )


def _build_fiber(dense: np.ndarray) -> Fiber:
    """Recursively build the fiber for a dense (sub-)tensor."""
    fiber = Fiber()
    if dense.ndim == 1:
        for coord, value in enumerate(dense):
            if value != 0:
                fiber.coords.append(coord)
                fiber.payloads.append(value.item() if hasattr(value, "item") else value)
        return fiber
    for coord in range(dense.shape[0]):
        sub = dense[coord]
        if np.any(sub != 0):
            fiber.coords.append(coord)
            fiber.payloads.append(_build_fiber(sub))
    return fiber


def _tile_origins(
    tensor_shape: Sequence[int], tile_shape: Sequence[int]
) -> Iterator[tuple[int, ...]]:
    """Origins of all aligned tiles covering ``tensor_shape``."""
    if any(t <= 0 for t in tile_shape):
        raise SpecError(f"tile shape must be positive, got {tile_shape}")
    ranges = [range(0, d, t) for d, t in zip(tensor_shape, tile_shape)]

    def rec(prefix: tuple[int, ...], rest: list[range]) -> Iterator[tuple[int, ...]]:
        if not rest:
            yield prefix
            return
        for v in rest[0]:
            yield from rec(prefix + (v,), rest[1:])

    yield from rec((), ranges)
