"""Architecture specification (Sec 5.1).

An :class:`Architecture` is an ordered list of storage levels from the
outermost (typically DRAM) to the innermost (registers), plus a compute
level. Each level carries the hardware attributes the micro-architecture
step needs: capacity, word width, bandwidth, instance count, and the
energy-model component it is built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SpecError


@dataclass
class StorageLevel:
    """One storage level of the hierarchy.

    Attributes:
        name: Unique level name (referenced by mappings and SAFs).
        capacity_words: Data capacity in words; ``None`` = unbounded
            (DRAM). Metadata shares this capacity, converted by bits.
        word_bits: Data word width in bits.
        read_bandwidth: Words/cycle per instance the level can source;
            ``None`` = never a bottleneck.
        write_bandwidth: Words/cycle per instance it can sink.
        instances: Number of physical instances at this level.
        component: Energy-model component class (see
            :mod:`repro.accelergy.library`), e.g. ``"sram"``, ``"dram"``,
            ``"regfile"``.
        component_attrs: Extra attributes forwarded to the energy model.
        metadata_word_bits: Width of one metadata word for bandwidth
            and energy accounting.
        metadata_on_data_port: Whether metadata traffic shares the data
            port (counts against read/write bandwidth). Designs with
            dedicated metadata storage (e.g. Eyeriss V2's PE) set this
            False; designs streaming metadata in-band (e.g. STC's SMEM)
            keep the default True.
        multicast: Whether reads can be multicast to several children
            (saves parent reads for spatially-reused tensors).
        spatial_reduction: Whether drains from children over spatially
            partitioned reduction dims merge in a reduction tree.
    """

    name: str
    capacity_words: float | None = None
    word_bits: int = 16
    read_bandwidth: float | None = None
    write_bandwidth: float | None = None
    instances: int = 1
    component: str = "sram"
    component_attrs: dict = field(default_factory=dict)
    metadata_word_bits: int = 8
    metadata_on_data_port: bool = True
    multicast: bool = True
    spatial_reduction: bool = True

    def __post_init__(self) -> None:
        if self.instances <= 0:
            raise SpecError(f"level {self.name!r}: instances must be positive")
        if self.word_bits <= 0 or self.metadata_word_bits <= 0:
            raise SpecError(f"level {self.name!r}: word widths must be positive")
        if self.capacity_words is not None and self.capacity_words <= 0:
            raise SpecError(f"level {self.name!r}: capacity must be positive")


@dataclass
class ComputeLevel:
    """The compute array at the bottom of the hierarchy."""

    name: str = "MAC"
    instances: int = 1
    component: str = "mac"
    component_attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.instances <= 0:
            raise SpecError("compute instances must be positive")


@dataclass
class Architecture:
    """The full hardware organisation, outermost storage first."""

    name: str
    levels: list[StorageLevel]
    compute: ComputeLevel

    def __post_init__(self) -> None:
        if not self.levels:
            raise SpecError(f"architecture {self.name!r} has no storage levels")
        names = [level.name for level in self.levels]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate storage level names: {names}")
        if self.compute.name in names:
            raise SpecError(
                f"compute level name {self.compute.name!r} collides with a "
                "storage level"
            )

    @property
    def level_names(self) -> list[str]:
        return [level.name for level in self.levels]

    def cache_key(self) -> tuple:
        """Canonical hashable content key over every model-relevant
        attribute; architectures with equal keys evaluate identically.
        Used by the engine's dense-analysis cache. Memoised on first
        use — like every keyed spec, an architecture is frozen by
        contract once it has been through the engine."""
        memo = getattr(self, "_cache_key", None)
        if memo is not None:
            return memo

        def attrs_key(attrs: dict) -> tuple:
            return tuple(sorted((k, repr(v)) for k, v in attrs.items()))

        levels = tuple(
            (
                lvl.name,
                lvl.capacity_words,
                lvl.word_bits,
                lvl.read_bandwidth,
                lvl.write_bandwidth,
                lvl.instances,
                lvl.component,
                attrs_key(lvl.component_attrs),
                lvl.metadata_word_bits,
                lvl.metadata_on_data_port,
                lvl.multicast,
                lvl.spatial_reduction,
            )
            for lvl in self.levels
        )
        compute = (
            self.compute.name,
            self.compute.instances,
            self.compute.component,
            attrs_key(self.compute.component_attrs),
        )
        self._cache_key = (levels, compute)
        return self._cache_key

    def level(self, name: str) -> StorageLevel:
        for lvl in self.levels:
            if lvl.name == name:
                return lvl
        raise SpecError(
            f"unknown storage level {name!r}; architecture {self.name!r} has "
            f"{self.level_names}"
        )

    def level_index(self, name: str) -> int:
        """Index counted from the *innermost* level (0) outward.

        The dataflow analysis numbers levels inner-to-outer, matching
        the convention that level 0 feeds the compute units.
        """
        names = self.level_names
        if name not in names:
            raise SpecError(f"unknown storage level {name!r}")
        return len(names) - 1 - names.index(name)

    def inner_to_outer(self) -> list[StorageLevel]:
        """Storage levels ordered innermost first."""
        return list(reversed(self.levels))

    def describe(self) -> str:
        lines = [f"architecture {self.name}"]
        for level in self.levels:
            cap = (
                "unbounded"
                if level.capacity_words is None
                else f"{level.capacity_words:g} words"
            )
            lines.append(
                f"  {level.name}: {cap}, {level.word_bits}b words, "
                f"x{level.instances}"
            )
        lines.append(
            f"  {self.compute.name}: x{self.compute.instances} compute units"
        )
        return "\n".join(lines)
