"""Architecture specification: storage hierarchy and compute array."""

from repro.arch.spec import Architecture, ComputeLevel, StorageLevel

__all__ = ["Architecture", "StorageLevel", "ComputeLevel"]
