"""Deterministic mapspace sharding for distributed search.

One search scans one *candidate stream*: the unpruned, deterministic
sequence of mappings the single-host batched strategy draws. For
exhaustive scans that is the full factorization enumeration (in
subtree order); for sampled scans it is the seeded sample stream —
both pure functions of (einsum, arch, constraints, budget, seed), so
every participant can rebuild the identical stream independently
(see :mod:`repro.distributed.store` for the shared-store shortcut).

A shard is a contiguous position range ``[start, stop)`` of that
stream. Contiguity is what makes the merge exact: the single-host
scan assigns tie-breaking indices in stream order, so shard ``k``'s
frontier points carry exactly the global indices the single-host scan
would have given them, and folding per-shard frontiers in shard order
is the same computation as the single-host frontier fold.

:class:`WitnessSnapshot` and :class:`WitnessBoard` carry the
overflow-witness exchange. A snapshot is an authoritative state of
the (single, shared) scan timeline at one stream position: the index
counter reached and the minimal witness set held. Every shard's scan
passes through bit-identical states at every position — that is the
replay invariant — so any shard may adopt any snapshot whose position
lies in its not-yet-replayed prefix, skipping straight past the work
an upstream shard already did. Witnesses can only *withhold*
candidates from indexing and prefilter only *rejects* what full
validation would reject, so the exchange accelerates replay without
ever changing which candidates are evaluated.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.common.errors import SpecError

__all__ = [
    "ShardSpec",
    "WitnessBoard",
    "WitnessSnapshot",
    "plan_shards",
]


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous slice ``[start, stop)`` of the candidate stream."""

    shard_id: int
    start: int
    stop: int

    @property
    def width(self) -> int:
        return self.stop - self.start


def plan_shards(total: int, shards: int) -> list[ShardSpec]:
    """Split ``total`` stream positions into ``shards`` contiguous,
    balanced ranges (widths differ by at most one, longer ones first).

    Deterministic and complete: the ranges partition ``[0, total)``
    exactly, so the union of shard scans is the single-host scan.
    Degenerate inputs shrink the plan rather than emitting empty
    shards: ``total < shards`` yields ``total`` one-wide shards.
    """
    if shards < 1:
        raise SpecError(f"shard count must be >= 1, got {shards}")
    if total < 0:
        raise SpecError(f"stream length must be >= 0, got {total}")
    if total == 0:
        return [ShardSpec(shard_id=0, start=0, stop=0)]
    shards = min(shards, total)
    base, extra = divmod(total, shards)
    plan: list[ShardSpec] = []
    start = 0
    for shard_id in range(shards):
        width = base + (1 if shard_id < extra else 0)
        plan.append(
            ShardSpec(shard_id=shard_id, start=start, stop=start + width)
        )
        start += width
    return plan


@dataclass(frozen=True)
class WitnessSnapshot:
    """Authoritative scan state at one stream position.

    ``position`` counts raw stream draws consumed so far (including
    withheld and prefilter-rejected candidates). ``index`` is the
    stream-index counter at that point: the index assigned to the last
    non-withheld candidate seen, or ``-1`` before any (the next
    non-withheld candidate gets ``index + 1``). ``witnesses`` is the
    mapper's minimal overflow-witness set at that point
    (:meth:`Mapper.export_witnesses` form).
    """

    position: int
    index: int
    witnesses: dict

    def to_dict(self) -> dict:
        return {
            "position": self.position,
            "index": self.index,
            "witnesses": {
                level: [dict(w) for w in entries]
                for level, entries in self.witnesses.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WitnessSnapshot":
        if not isinstance(data, dict):
            raise SpecError(
                f"witness snapshot must be a dict, got {type(data).__name__}"
            )
        try:
            witnesses = data["witnesses"]
            return cls(
                position=int(data["position"]),
                index=int(data["index"]),
                witnesses={
                    str(level): [
                        {str(d): int(e) for d, e in entry.items()}
                        for entry in entries
                    ]
                    for level, entries in witnesses.items()
                },
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise SpecError(f"malformed witness snapshot: {exc!r}") from exc


class WitnessBoard:
    """Thread-safe exchange of :class:`WitnessSnapshot`s for one search.

    Workers post snapshots as their scans advance; a shard mid-replay
    polls for the furthest snapshot not past its own start and jumps
    to it. All snapshots describe one shared timeline, so the board
    only needs to keep a bounded set of positions — it retains the
    highest ones (the most fast-forwarding power) and drops the rest.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise SpecError(f"board capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._snapshots: dict[int, WitnessSnapshot] = {}

    def post(self, snapshot: WitnessSnapshot) -> None:
        """Record a snapshot; duplicates (same position) collapse.

        Two snapshots at one position are bit-identical by the replay
        invariant, so first-write-wins, last-write-wins, and
        out-of-order delivery all store the same state.
        """
        with self._lock:
            if snapshot.position in self._snapshots:
                return
            self._snapshots[snapshot.position] = snapshot
            if len(self._snapshots) > self._capacity:
                del self._snapshots[min(self._snapshots)]

    def best_before(
        self, limit: int, after: int = -1
    ) -> WitnessSnapshot | None:
        """The snapshot with the highest ``position <= limit`` strictly
        beyond ``after``, or ``None``."""
        with self._lock:
            best: WitnessSnapshot | None = None
            for position, snapshot in self._snapshots.items():
                if position <= after or position > limit:
                    continue
                if best is None or position > best.position:
                    best = snapshot
            return best

    def __len__(self) -> int:
        with self._lock:
            return len(self._snapshots)
