"""Local worker fleets: ``repro serve --worker`` subprocesses.

A :class:`LocalWorkerFleet` boots N worker daemons on unix sockets
under a private temp directory and hands their addresses to the
coordinator. Workers are ordinary serve daemons (same protocol, same
engine); ``--worker`` marks the role on the command line and trims the
daemon to shard duty (single handler thread — the coordinator gives
each worker exactly one shard at a time, so extra threads would only
fight over the engine lock).

The fleet is how ``Session(workers=N)`` and ``repro search --shards``
get their workers without any external infrastructure; point several
fleets (or remote daemons) at one ``--cache-dir`` and they additionally
share the content-addressed analysis and candidate-stream stores.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.common.errors import SpecError, WorkerLostError

__all__ = ["LocalWorkerFleet"]

#: Seconds a booting worker gets to print ``ready``.
_STARTUP_TIMEOUT = 60.0


class LocalWorkerFleet:
    """N local worker daemons on unix sockets; a context manager.

    ``cache_dir`` (when given) points every worker — and, typically,
    the coordinating Session — at one shared persistent store root;
    ``cold=True`` disables the persistent tier instead. ``extra_args``
    append verbatim to each worker's command line (tests use it to
    pin budgets or tweak heartbeats).
    """

    def __init__(
        self,
        count: int,
        *,
        cache_dir: str | os.PathLike | None = None,
        cold: bool = False,
        check_capacity: bool = True,
        extra_args: tuple[str, ...] = (),
    ):
        if count < 1:
            raise SpecError(f"fleet size must be >= 1, got {count}")
        self._tmp = tempfile.TemporaryDirectory(prefix="repro-fleet-")
        self._procs: list[subprocess.Popen] = []
        self.addresses: list[str] = []
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        try:
            for rank in range(count):
                sock = os.path.join(self._tmp.name, f"worker-{rank}.sock")
                cmd = [
                    sys.executable, "-m", "repro", "serve",
                    "--worker", "--unix", sock,
                ]
                if cold:
                    cmd.append("--cold")
                if cache_dir is not None:
                    cmd += ["--cache-dir", str(cache_dir)]
                if not check_capacity:
                    cmd.append("--no-capacity-check")
                cmd += list(extra_args)
                proc = subprocess.Popen(
                    cmd,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT,
                    text=True,
                    env=env,
                )
                self._procs.append(proc)
                self.addresses.append(sock)
            for proc in self._procs:
                self._await_ready(proc)
        except BaseException:
            self.close()
            raise

    @staticmethod
    def _await_ready(proc: subprocess.Popen) -> None:
        banner: list[str] = []
        for line in proc.stdout:
            banner.append(line)
            if line.strip() == "ready":
                return
        raise WorkerLostError(
            f"worker exited (code {proc.wait()}) before 'ready':\n"
            + "".join(banner)
        )

    def __len__(self) -> int:
        return len(self._procs)

    def kill(self, rank: int) -> None:
        """SIGKILL one worker — the fault-injection hook the
        reassignment tests and the sharded benchmark use."""
        self._procs[rank].kill()
        self._procs[rank].wait(timeout=30)

    def suspend(self, rank: int) -> None:
        """SIGSTOP one worker: its sockets stay open but go silent,
        which is exactly the failure the heartbeat watchdog exists
        for (a killed worker fails fast with a reset instead)."""
        self._procs[rank].send_signal(signal.SIGSTOP)

    def resume(self, rank: int) -> None:
        """SIGCONT a suspended worker."""
        self._procs[rank].send_signal(signal.SIGCONT)

    def close(self) -> None:
        """Terminate every worker and remove the socket directory."""
        for proc in self._procs:
            if proc.poll() is None:
                try:  # un-suspend first: SIGTERM is deferred while stopped
                    proc.send_signal(signal.SIGCONT)
                except (ProcessLookupError, OSError):
                    pass
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait(timeout=30)
            if proc.stdout is not None:
                proc.stdout.close()
        self._procs = []
        self.addresses = []
        self._tmp.cleanup()

    def __enter__(self) -> "LocalWorkerFleet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"LocalWorkerFleet({len(self._procs)} workers)"
