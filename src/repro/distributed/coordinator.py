"""Coordinator for distributed sharded search.

:func:`sharded_search` splits one :class:`~repro.api.jobs.SearchJob`
into contiguous stream shards (:func:`repro.distributed.plan.
plan_shards`), fans them out over worker daemons speaking the serve
protocol, exchanges overflow-witness snapshots between shards
mid-flight, survives worker deaths by reassigning their shards, and
merges the per-shard Pareto frontiers into a result provably
bit-identical to the single-host batched scan.

Exactness rests on three facts, each carried by a neighbouring module:

* every shard scans the same deterministic candidate stream at the
  same positions (:mod:`repro.distributed.worker`'s replay proof);
* shard frontiers fold back losslessly — shards are contiguous in
  stream order, so merging them in shard order replays the
  single-host frontier's ``add`` sequence restricted to shard
  survivors, and any point a shard discarded is dominated by a point
  it kept (dominance is transitive, equal vectors keep the earlier
  index), so the merged frontier and its minimum ``(score, index)``
  winner equal the single-host ones exactly;
* witness snapshots are authoritative states of the one shared scan
  timeline, so forwarding them (or re-seeding a reassigned shard from
  the board) accelerates replay without changing any shard's output.

Fault tolerance: each worker runs on its own thread with its own job
connection (heartbeat-monitored; see ``worker_timeout`` on
:class:`repro.serve.client.RemoteSession`). A worker loss requeues the
shard — re-seeded from the board's latest usable snapshot — for the
surviving workers, up to ``max_attempts`` attempts per shard. Shard
jobs are pure functions of their payload, so re-running one is always
safe; deterministic job failures (:class:`SpecError` and kin) abort
the search instead of retrying, since every worker would fail the
same way.
"""

from __future__ import annotations

import threading
import uuid
from collections import deque
from collections.abc import Callable

from repro.api.jobs import SearchJob, SearchShardJob
from repro.common.errors import (
    MappingError,
    ReproError,
    SpecError,
    ValidationError,
    WorkerLostError,
)
from repro.mapping.mapspace import Mapper, sampled_candidates_key
from repro.model.engine import SearchOutcome
from repro.search.frontier import ParetoFrontier
from repro.search.objective import resolve_objective

from .plan import ShardSpec, WitnessBoard, WitnessSnapshot, plan_shards
from .store import StreamStore, stream_store_for
from .worker import run_shard

__all__ = [
    "SearchPlan",
    "merge_shards",
    "plan_search",
    "run_shards_local",
    "sharded_search",
]


class SearchPlan:
    """The coordinator's view of one search's candidate stream."""

    __slots__ = ("stream", "total", "mode", "budget", "seed")

    def __init__(self, stream: list, mode: str, budget: int, seed: int):
        self.stream = stream
        self.total = len(stream)
        self.mode = mode
        self.budget = budget
        self.seed = seed


def plan_search(evaluator, job: SearchJob) -> SearchPlan:
    """Materialise the search's full unpruned candidate stream.

    Exactly the single-host planning rules: explicit candidates pass
    through; an exhaustively enumerable mapspace (``size <= budget *
    4``) scans the full factorization enumeration; anything else scans
    the seeded sample stream (via the ``"candidates"`` memo stage when
    caching is on, so a warm coordinator plans without re-sampling).
    The evaluator's ``search_budget`` / ``search_seed`` are taken as
    already effective — the Session folds per-job overrides in before
    calling.

    The sharded scan *is* the batched scan, so ``strategy="serial"``
    (bit-identical to batched by the engine's own equivalence) is
    accepted and scanned batched; non-degenerate
    ``strategy="evolutionary"`` is rejected — breeding is a sequential
    feedback loop with no deterministic stream to shard (exhaustive
    spaces are fine: evolution degenerates to the batched scan there,
    matching the engine).
    """
    strategy = job.strategy or evaluator.search_strategy
    if strategy not in ("serial", "batched", "evolutionary"):
        raise SpecError(
            f"unknown search strategy {strategy!r}; "
            "expected 'serial', 'batched', or 'evolutionary'"
        )
    budget = evaluator.search_budget
    seed = evaluator.search_seed
    if job.candidates is not None:
        if strategy == "evolutionary":
            raise SpecError(
                "strategy='evolutionary' breeds candidates from the "
                "design's mapspace constraints; explicit candidates fix "
                "the population — scan them with 'serial' or 'batched'"
            )
        return SearchPlan(list(job.candidates), "explicit", budget, seed)
    mapper = Mapper(
        job.workload.einsum, job.design.arch, job.design.constraints
    )
    space = mapper.mapspace_size_estimate()
    if space <= budget * 4:
        # A fresh mapper holds no witnesses, so this enumeration is the
        # unpruned stream every shard replays.
        return SearchPlan(
            list(mapper.enumerate_mappings()), "exhaustive", budget, seed
        )
    if strategy == "evolutionary":
        raise SpecError(
            "strategy='evolutionary' cannot shard: breeding is a "
            "sequential feedback loop over generations, not a "
            "deterministic candidate stream — run it single-host, or "
            "shard the 'batched' scan"
        )
    stream = evaluator._sampled_candidates(job.design, job.workload, mapper)
    if stream is None:
        stream = list(mapper.sample_mappings(budget, seed=seed))
    return SearchPlan(list(stream), "sampled", budget, seed)


def _stream_key(job: SearchJob, plan: SearchPlan) -> str:
    identity = sampled_candidates_key(
        job.workload.einsum,
        job.design.arch,
        job.design.constraints,
        plan.seed,
        plan.budget,
    )
    return StreamStore.key(plan.mode, identity, plan.budget, plan.seed)


def _shard_job(
    evaluator,
    job: SearchJob,
    plan: SearchPlan,
    spec: ShardSpec,
    search_id: str,
    snapshot: WitnessSnapshot | None,
) -> SearchShardJob:
    return SearchShardJob(
        design=job.design,
        workload=job.workload,
        objective=job.objective,
        search_id=search_id,
        shard_id=spec.shard_id,
        start=spec.start,
        stop=spec.stop,
        total=plan.total,
        mode=plan.mode,
        budget=plan.budget,
        seed=plan.seed,
        batch_size=job.batch_size,
        check_capacity=evaluator.check_capacity,
        prefilter=evaluator.prefilter_capacity,
        candidates=plan.stream if plan.mode == "explicit" else None,
        snapshot=None if snapshot is None else snapshot.to_dict(),
    )


def merge_shards(objective, shard_results) -> SearchOutcome:
    """Fold per-shard results into the single-host outcome.

    Shards are contiguous, so folding frontiers in shard order adds
    points in global stream-index order — the exact ``add`` sequence
    of the single-host scan restricted to shard survivors (which is
    lossless; see the module docstring). Always records the
    ``"batched"`` strategy: that is the scan every shard ran.
    """
    objective = resolve_objective(objective)
    frontier = ParetoFrontier(axes=objective.axes)
    for shard in sorted(shard_results, key=lambda r: r.shard_id):
        frontier.merge(shard.frontier)
    winner = frontier.best()
    best = (
        None
        if winner is None
        else (winner.score, winner.index, winner.result)
    )
    return SearchOutcome(
        objective=objective,
        strategy="batched",
        frontier=frontier,
        best=best,
    )


def run_shards_local(
    evaluator,
    job: SearchJob,
    shards: int,
    progress: Callable[[dict], None] | None = None,
) -> tuple[SearchOutcome, dict]:
    """Run a sharded scan in-process, one shard at a time.

    The zero-dependency reference execution: same planning, same shard
    jobs, same witness board, same merge as the distributed path —
    used when a Session has no worker fleet, and by the equivalence
    tests as the bridge between ``run_shard`` and the coordinator.
    """
    plan = plan_search(evaluator, job)
    specs = plan_shards(plan.total, shards)
    board = WitnessBoard()
    search_id = uuid.uuid4().hex
    store = stream_store_for(evaluator.persistent)
    if store is not None and plan.mode != "explicit":
        store.publish(_stream_key(job, plan), plan.stream)
    results = []
    for spec in specs:
        shard_job = _shard_job(
            evaluator, job, plan, spec, search_id,
            board.best_before(spec.start),
        )
        results.append(
            run_shard(
                evaluator, shard_job, board=board, progress=progress,
                store=store,
            )
        )
    outcome = merge_shards(job.objective, results)
    stats = {
        "search": search_id,
        "mode": plan.mode,
        "total": plan.total,
        "shards": len(specs),
        "workers": 0,
        "reassigned": 0,
        "evaluated": sum(r.evaluated for r in results),
        "withheld": sum(r.withheld for r in results),
        "rejected": sum(r.rejected for r in results),
    }
    return outcome, stats


class _Controls:
    """Registry of per-worker control connections for witness fan-out."""

    def __init__(self):
        self._lock = threading.Lock()
        self._sessions: list = []

    def add(self, session) -> None:
        with self._lock:
            self._sessions.append(session)

    def remove(self, session) -> None:
        with self._lock:
            if session in self._sessions:
                self._sessions.remove(session)

    def broadcast(self, search_id: str, snapshot: dict, skip=None) -> None:
        with self._lock:
            sessions = list(self._sessions)
        for session in sessions:
            if session is skip:
                continue
            # Fire-and-forget: a lost update only slows a replay down.
            session.notify(
                "witness-update", search=search_id, snapshot=snapshot
            )


def sharded_search(
    evaluator,
    job: SearchJob,
    addresses,
    shards: int | None = None,
    progress: Callable[[dict], None] | None = None,
    max_attempts: int = 3,
    worker_timeout: float | None = 30.0,
) -> tuple[SearchOutcome, dict]:
    """Shard ``job`` over the worker daemons at ``addresses``.

    One coordinator thread per worker: each holds a heartbeat-monitored
    job connection plus a control connection for fire-and-forget
    ``witness-update`` frames (a separate socket, because the job
    connection is busy streaming the in-flight shard's progress). Shard
    jobs are drawn from a shared queue; a worker loss — heartbeat
    silence (:class:`WorkerLostError`), a dropped connection, an
    overloaded daemon — requeues the shard for the survivors, re-seeded
    from the witness board's latest usable snapshot, up to
    ``max_attempts`` attempts. Deterministic job failures abort the
    search. Raises :class:`WorkerLostError` when shards remain and no
    workers do.

    Returns the merged :class:`SearchOutcome` (bit-identical to the
    single-host batched scan) plus a stats dict.
    """
    addresses = list(addresses)
    if not addresses:
        raise SpecError("sharded_search needs at least one worker address")
    if max_attempts < 1:
        raise SpecError(f"max_attempts must be >= 1, got {max_attempts}")
    from repro.serve.client import RemoteSession

    plan = plan_search(evaluator, job)
    if shards is None:
        shards = len(addresses)
    specs = plan_shards(plan.total, shards)
    store = stream_store_for(evaluator.persistent)
    if store is not None and plan.mode != "explicit":
        store.publish(_stream_key(job, plan), plan.stream)

    search_id = uuid.uuid4().hex
    board = WitnessBoard()
    controls = _Controls()
    cv = threading.Condition()
    queue: deque[ShardSpec] = deque(specs)
    attempts: dict[int, int] = {spec.shard_id: 0 for spec in specs}
    results: dict[int, object] = {}
    errors: list[BaseException] = []
    live = [0]
    reassigned = [0]

    def _emit(info: dict) -> None:
        if progress is not None:
            try:
                progress(info)
            except Exception:
                pass

    def _finished() -> bool:
        return bool(errors) or len(results) == len(specs)

    def _on_progress(control, info: dict) -> None:
        snapshot = info.get("snapshot") if isinstance(info, dict) else None
        if isinstance(snapshot, dict):
            try:
                board.post(WitnessSnapshot.from_dict(snapshot))
            except SpecError:
                snapshot = None
            else:
                controls.broadcast(search_id, snapshot, skip=control)
        _emit(info)

    def _run_worker(address: str) -> None:
        try:
            session = RemoteSession(address, worker_timeout=worker_timeout)
            control = RemoteSession(address)
        except (OSError, ReproError) as exc:
            _emit(
                {
                    "search": search_id,
                    "event": "worker-lost",
                    "worker": address,
                    "error": str(exc),
                }
            )
            with cv:
                live[0] -= 1
                cv.notify_all()
            return
        controls.add(control)
        try:
            while True:
                with cv:
                    while not queue and not _finished():
                        cv.wait()
                    if _finished():
                        return
                    spec = queue.popleft()
                    attempts[spec.shard_id] += 1
                shard_job = _shard_job(
                    evaluator, job, plan, spec, search_id,
                    board.best_before(spec.start),
                )
                try:
                    handle = session.submit(
                        shard_job,
                        on_progress=lambda info: _on_progress(control, info),
                    )
                    result = handle.result()
                except (SpecError, MappingError, ValidationError) as exc:
                    # Deterministic: every worker fails identically.
                    with cv:
                        errors.append(exc)
                        cv.notify_all()
                    return
                except (
                    WorkerLostError,
                    ReproError,
                    ConnectionError,
                    TimeoutError,
                    OSError,
                ) as exc:
                    with cv:
                        if attempts[spec.shard_id] >= max_attempts:
                            errors.append(
                                WorkerLostError(
                                    f"shard {spec.shard_id} of search "
                                    f"{search_id} failed "
                                    f"{attempts[spec.shard_id]} times, "
                                    f"last on {address}: {exc}"
                                )
                            )
                        else:
                            queue.appendleft(spec)
                            reassigned[0] += 1
                        cv.notify_all()
                    _emit(
                        {
                            "search": search_id,
                            "event": "worker-lost",
                            "shard": spec.shard_id,
                            "worker": address,
                            "error": str(exc),
                        }
                    )
                    return  # this worker's connections are gone
                with cv:
                    results.setdefault(spec.shard_id, result)
                    cv.notify_all()
                _emit(
                    {
                        "search": search_id,
                        "event": "shard-done",
                        "shard": spec.shard_id,
                        "worker": address,
                        "evaluated": result.evaluated,
                    }
                )
        finally:
            controls.remove(control)
            for conn in (session, control):
                try:
                    conn.close()
                except Exception:
                    pass
            with cv:
                live[0] -= 1
                cv.notify_all()

    threads = []
    with cv:
        live[0] = len(addresses)
    for address in addresses:
        thread = threading.Thread(
            target=_run_worker,
            args=(address,),
            name=f"repro-shard-{address}",
            daemon=True,
        )
        threads.append(thread)
        thread.start()
    with cv:
        cv.wait_for(lambda: _finished() or live[0] == 0)
        cv.notify_all()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    if len(results) < len(specs):
        missing = sorted(set(attempts) - set(results))
        raise WorkerLostError(
            f"search {search_id} lost every worker with shards "
            f"{missing} unfinished"
        )
    outcome = merge_shards(job.objective, list(results.values()))
    stats = {
        "search": search_id,
        "mode": plan.mode,
        "total": plan.total,
        "shards": len(specs),
        "workers": len(addresses),
        "reassigned": reassigned[0],
        "evaluated": sum(r.evaluated for r in results.values()),
        "withheld": sum(r.withheld for r in results.values()),
        "rejected": sum(r.rejected for r in results.values()),
    }
    return outcome, stats
