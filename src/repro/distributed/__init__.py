"""Distributed sharded search: coordinator/worker over a shared store.

One search's candidate stream is split into contiguous shards
(:mod:`.plan`), each scanned by a worker replaying the single-host
batched scan's bookkeeping (:mod:`.worker`), with overflow-witness
snapshots exchanged mid-flight and per-shard Pareto frontiers merged
back into a result provably bit-identical to the single-host scan
(:mod:`.coordinator`). Candidate streams are shared through a
content-addressed sibling of the persistent cache (:mod:`.store`);
worker fleets are spawned locally by :mod:`.fleet` or addressed as
remote ``repro serve --worker`` daemons. ``docs/distributed.md`` has
the full semantics: sharding rules, merge determinism proof, failure
model, and the shared-store layout.
"""

from .coordinator import (
    SearchPlan,
    merge_shards,
    plan_search,
    run_shards_local,
    sharded_search,
)
from .fleet import LocalWorkerFleet
from .plan import ShardSpec, WitnessBoard, WitnessSnapshot, plan_shards
from .store import StreamStore, stream_store_for
from .worker import resolve_stream, run_shard, shard_stream_key

__all__ = [
    "LocalWorkerFleet",
    "SearchPlan",
    "ShardSpec",
    "StreamStore",
    "WitnessBoard",
    "WitnessSnapshot",
    "merge_shards",
    "plan_search",
    "plan_shards",
    "resolve_stream",
    "run_shard",
    "run_shards_local",
    "shard_stream_key",
    "sharded_search",
    "stream_store_for",
]
