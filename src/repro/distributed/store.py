"""Shared candidate-stream store for distributed search.

Candidate streams are pure functions of (einsum, arch, constraints,
mode, budget, seed), so they are perfect content-addressed objects: a
coordinator publishes the stream once and every worker on the same
store root fetches it instead of re-enumerating or re-sampling —
two writers racing on one key write identical bytes, which is what
makes the unsynchronised sharing safe. Regeneration is always a
correct fallback (workers without a store, or with a cold one,
rebuild the exact same stream), so the store is purely an
accelerator; bit-identity never depends on it.

Streams live in an :class:`~repro.common.cache.ObjectStore` that is a
``sibling`` of the session's :class:`PersistentCache` (same root and
schema version, namespace suffixed ``-streams``), so a worker fleet
pointed at one ``--cache-dir`` shares a warm analysis tier *and* a
stream tier without the two payload shapes ever meeting on a key.
"""

from __future__ import annotations

import hashlib

from repro.common.cache import ObjectStore

__all__ = ["StreamStore", "stream_store_for"]

#: Namespace suffix distinguishing stream blobs from analysis snapshots.
STREAM_NAMESPACE_SUFFIX = "streams"


def stream_store_for(persistent) -> "StreamStore | None":
    """The stream store sharing ``persistent``'s root, or ``None`` when
    the session runs without a persistent tier."""
    if persistent is None:
        return None
    sibling = persistent.sibling(STREAM_NAMESPACE_SUFFIX)
    return StreamStore(sibling)


class StreamStore:
    """Candidate streams keyed by their generating parameters."""

    def __init__(self, store: ObjectStore):
        self.store = store

    @staticmethod
    def key(mode: str, identity: tuple, budget: int, seed: int) -> str:
        """Content key of one stream. ``identity`` is the mapspace
        identity tuple (:func:`sampled_candidates_key` output or an
        equivalent for exhaustive streams); ``mode`` / ``budget`` /
        ``seed`` pin the draw discipline."""
        digest = hashlib.blake2b(
            repr((mode, identity, budget, seed)).encode(), digest_size=16
        ).hexdigest()
        return f"stream-{mode}-{digest}"

    def fetch(self, key: str, total: int | None = None):
        """The stream stored under ``key``, or ``None``. ``total``
        (when given) cross-checks the stream length — a mismatch is
        treated as corruption and discarded."""
        stream = self.store.get(key)
        if stream is None:
            return None
        if not isinstance(stream, list):
            self.store.invalidate(key)
            return None
        if total is not None and len(stream) != total:
            self.store.invalidate(key)
            return None
        return stream

    def publish(self, key: str, stream: list) -> None:
        """Best-effort spill: a full disk or unwritable root must not
        fail the search, only un-warm it."""
        try:
            self.store.put(key, list(stream))
        except OSError:
            pass
