"""Worker-side shard scan for distributed search.

:func:`run_shard` executes one :class:`~repro.api.jobs.SearchShardJob`:
it rebuilds the search's deterministic unpruned candidate stream,
*replays* the prefix ``[0, start)`` through the exact bookkeeping of
the single-host batched scan — witness-withheld candidates consume no
stream index, prefilter-rejected candidates do, monotone overflows
register witnesses — without evaluating anything, then scans ``[start,
stop)`` with the same bookkeeping plus block evaluation of prefilter
survivors through the engine's stacked pipeline.

Why this is bit-identical to the single-host scan (the proof the
tests enforce):

* The unpruned stream is a pure function of the job payload
  (:func:`sampled_candidates_key`'s contract for sampled streams; the
  factorization enumeration order for exhaustive ones), so every
  shard sees the same candidates at the same positions.
* The scan state at position ``p`` — (index counter, witness set) —
  is a deterministic fold over positions ``0..p``: withholding
  depends only on the witness set, indexing only on withholding, and
  witness registration only on the candidate and the prefilter
  (which is itself stateless per candidate). Replay therefore
  reproduces the single-host state at ``start`` exactly, and the
  shard's survivors get exactly the global indices the single-host
  scan assigns them.
* Evaluation never feeds back into the stream, so deferring it (or
  skipping it for the prefix) cannot change any state the scan
  depends on; and no prefilter *survivor* is ever witness-dominated —
  a candidate dominating a witness at level L has a monotone bound at
  L at least the witness's, which overflowed — so prefix replay
  skipping evaluations can never skip an evaluation the single-host
  scan performed.
* A :class:`WitnessSnapshot` posted by any shard is that shared
  fold's state at its position (every shard passes through identical
  states), so adopting one mid-replay — *replacing* the witness set
  and index counter, then continuing from its position — lands the
  replay in exactly the state it would have computed itself.

Witness exchange is therefore purely an accelerator: it lets shard
``k`` skip replaying work shards ``< k`` already did, and lets a
reassigned shard resume from the dead worker's last reported state,
with the merged result provably unchanged either way.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.api.jobs import SearchShardJob
from repro.common.errors import SpecError
from repro.mapping.mapspace import (
    CANDIDATES_STAGE,
    Mapper,
    sampled_candidates_key,
)
from repro.model.result import SearchShardResult
from repro.search.frontier import ParetoFrontier
from repro.search.objective import resolve_objective

from .plan import WitnessBoard, WitnessSnapshot
from .store import StreamStore, stream_store_for

__all__ = ["resolve_stream", "run_shard", "shard_stream_key"]


def shard_stream_key(job: SearchShardJob) -> str:
    """The shared-store key of ``job``'s candidate stream."""
    identity = sampled_candidates_key(
        job.workload.einsum,
        job.design.arch,
        job.design.constraints,
        job.seed,
        job.budget,
    )
    return StreamStore.key(job.mode, identity, job.budget, job.seed)


def resolve_stream(
    evaluator, job: SearchShardJob, store: StreamStore | None = None
) -> tuple[list, Mapper | None]:
    """The job's full unpruned candidate stream plus a fresh witness
    mapper (``None`` for explicit-candidates jobs).

    Resolution order: explicit candidates from the payload, the
    evaluator's ``"candidates"`` memo stage, the shared stream store,
    deterministic regeneration — all provably identical, so the
    cheapest available source wins. The regenerated/loaded stream is
    cross-checked against ``job.total`` (and the mode against the
    mapspace size rule); a mismatch means the coordinator and worker
    disagree about what the stream *is* — config or version skew — and
    scanning anyway would corrupt the merge, so it raises
    :class:`SpecError` instead.
    """
    if job.candidates is not None:
        if len(job.candidates) != job.total:
            raise SpecError(
                f"shard job carries {len(job.candidates)} explicit "
                f"candidates but declares total={job.total}"
            )
        return list(job.candidates), None

    design, workload = job.design, job.workload
    mapper = Mapper(workload.einsum, design.arch, design.constraints)
    space = mapper.mapspace_size_estimate()
    exhaustive = space <= job.budget * 4
    if exhaustive != (job.mode == "exhaustive"):
        raise SpecError(
            f"shard job declares mode={job.mode!r} but this worker's "
            f"mapspace estimate ({space}) vs budget ({job.budget}) "
            "implies the opposite — coordinator/worker config or "
            "version skew"
        )

    stream = None
    stage = key = None
    if not exhaustive and evaluator.cache is not None:
        key = sampled_candidates_key(
            workload.einsum, design.arch, mapper.constraints,
            job.seed, job.budget,
        )
        stage = evaluator.cache.stage(CANDIDATES_STAGE)
        stream = stage.get(key)
    memoised = stream is not None
    if stream is None and store is not None:
        stream = store.fetch(shard_stream_key(job), total=job.total)
    if stream is None:
        if exhaustive:
            stream = list(mapper.enumerate_mappings())
        else:
            stream = list(mapper.sample_mappings(job.budget, seed=job.seed))
    if len(stream) != job.total:
        raise SpecError(
            f"shard job declares a stream of {job.total} candidates but "
            f"this worker reconstructs {len(stream)} — "
            "coordinator/worker config or version skew"
        )
    if stage is not None and not memoised:
        stage.put(key, stream)
    return list(stream), mapper


def run_shard(
    evaluator,
    job: SearchShardJob,
    board: WitnessBoard | None = None,
    progress: Callable[[dict], None] | None = None,
    store: StreamStore | None = None,
) -> SearchShardResult:
    """Scan one shard; returns its :class:`SearchShardResult`.

    ``board`` (when given) supplies mid-flight witness snapshots from
    other shards — polled between chunks while still replaying — and
    receives this shard's own snapshots. ``progress`` is called with
    incremental state dicts (position, snapshot, best-so-far) after
    every chunk; the serve daemon turns these into progress envelopes
    and the coordinator forwards the embedded snapshots to the other
    workers. ``store`` defaults to the evaluator's persistent tier's
    stream sibling.
    """
    if not 0 <= job.start <= job.stop <= job.total:
        raise SpecError(
            f"malformed shard range [{job.start}, {job.stop}) of "
            f"total {job.total}"
        )
    if store is None:
        store = stream_store_for(evaluator.persistent)
    objective = resolve_objective(job.objective)
    stream, mapper = resolve_stream(evaluator, job, store=store)
    batch_size = max(1, job.batch_size or evaluator.search_batch_size)
    prefilter = job.prefilter and job.check_capacity
    blocked = prefilter and evaluator.prefilter_vectorized and mapper is not None

    frontier = ParetoFrontier(axes=objective.axes)
    memo: dict | None = {} if evaluator.dense_vectorized else None
    best = None
    position = 0
    index = -1
    if mapper is None:
        # Explicit candidate streams have no witness bookkeeping: every
        # drawn candidate takes an index whether or not the prefilter
        # rejects it, so the prefix state is closed-form — jump to it.
        position = job.start
        index = job.start - 1
    evaluated = withheld = rejected = 0
    fast_forwards = 0
    block: list = []

    def _apply(snapshot: WitnessSnapshot) -> None:
        nonlocal position, index, fast_forwards
        position = snapshot.position
        index = snapshot.index
        mapper.import_witnesses(snapshot.witnesses)
        fast_forwards += 1

    if (
        mapper is not None
        and job.snapshot is not None
    ):
        seed_snap = WitnessSnapshot.from_dict(job.snapshot)
        if 0 < seed_snap.position <= job.start:
            _apply(seed_snap)

    def _state() -> WitnessSnapshot:
        return WitnessSnapshot(
            position=position,
            index=index,
            witnesses=mapper.export_witnesses() if mapper else {},
        )

    def _report() -> None:
        snapshot = _state()
        if board is not None:
            board.post(snapshot)
        if progress is not None:
            progress(
                {
                    "search": job.search_id,
                    "shard": job.shard_id,
                    "snapshot": snapshot.to_dict(),
                    "evaluated": evaluated,
                    "withheld": withheld,
                    "rejected": rejected,
                    "best_score": None if best is None else best[0],
                    "best_index": None if best is None else best[1],
                    "frontier_size": len(frontier),
                }
            )

    design, workload = job.design, job.workload
    stop = job.stop
    while position < stop:
        if board is not None and mapper is not None and position < job.start:
            jump = board.best_before(job.start, after=position)
            if jump is not None:
                _apply(jump)
                continue
        chunk_end = min(position + batch_size, stop)
        drawn = stream[position:chunk_end]
        rejects = (
            evaluator._prefilter_block(design, workload, drawn)
            if blocked
            else None
        )
        for offset, mapping in enumerate(drawn):
            if mapper is not None and mapper.mapping_dominated(mapping):
                mapper.pruned_candidates += 1
                withheld += 1
                continue
            index += 1
            if prefilter:
                if rejects is not None:
                    reject = rejects[offset]
                    if reject is not None:
                        rejected += 1
                        if mapper is not None and reject.monotone:
                            mapper.register_overflow(
                                reject.level, reject.witness_extents()
                            )
                        continue
                else:
                    overflow = evaluator._capacity_overflow(
                        design, workload, mapping
                    )
                    if overflow is not None:
                        rejected += 1
                        if mapper is not None and overflow.monotone:
                            mapper.register_overflow(
                                overflow.level, overflow.dim_extents
                            )
                        continue
            if position + offset >= job.start:
                block.append((index, mapping))
        position = chunk_end
        if len(block) >= batch_size or (block and position >= stop):
            best = evaluator._evaluate_block(
                design, workload, block, objective, best,
                memo=memo, frontier=frontier,
            )
            evaluated += len(block)
            block = []
        _report()

    if block:  # pragma: no cover - flushed above when position >= stop
        best = evaluator._evaluate_block(
            design, workload, block, objective, best,
            memo=memo, frontier=frontier,
        )
        evaluated += len(block)
        _report()

    return SearchShardResult(
        shard_id=job.shard_id,
        start=job.start,
        stop=job.stop,
        position_end=position,
        index_end=index,
        evaluated=evaluated,
        withheld=withheld,
        rejected=rejected,
        frontier=frontier,
        witnesses=mapper.export_witnesses() if mapper is not None else {},
        results={
            point.index: point.result
            for point in frontier
            if point.result is not None
        },
    )
