"""Job wire-format round-trips: ``to_dict`` / ``from_dict`` /
:func:`job_from_dict`.

Envelopes must be pure JSON (the daemon frames them as JSON lines),
version-checked like result envelopes, and round-trip to jobs that
evaluate bit-identically to the originals.
"""

from __future__ import annotations

import json

import pytest
import yaml

from repro.api import (
    EvaluateJob,
    NetworkJob,
    SearchJob,
    Session,
    job_from_dict,
)
from repro.api.jobs import JOB_SCHEMA_VERSION
from repro.common.errors import SpecError
from repro.io.yaml_spec import load_design
from repro.workload.nets import alexnet
from tests.io.test_yaml_spec import FULL_SPEC


def _wire(job_dict: dict) -> dict:
    """Simulate the wire: envelopes must survive JSON framing."""
    return json.loads(json.dumps(job_dict))


def edp_objective(result) -> float:
    return result.edp


def uniform_densities(layer) -> dict:
    return {"I": 0.5}


class TestEvaluateJobRoundTrip:
    def test_envelope_shape(self):
        design, workload = load_design(FULL_SPEC)
        data = EvaluateJob(design, workload).to_dict()
        assert data["schema"] == JOB_SCHEMA_VERSION
        assert data["kind"] == "evaluate-job"
        assert data["design"]["encoding"] == "pickle"
        assert data["mapping"] is None

    def test_round_trip_evaluates_bit_identically(self):
        design, workload = load_design(FULL_SPEC)
        original = EvaluateJob(design, workload)
        rebuilt = EvaluateJob.from_dict(_wire(original.to_dict()))
        with Session() as session:
            expected = session.submit(original).result().to_dict()
        with Session() as session:
            actual = session.submit(rebuilt).result().to_dict()
        assert actual == expected

    def test_explicit_mapping_round_trips_structurally(self):
        design, workload = load_design(FULL_SPEC)
        job = EvaluateJob(design, workload, design.mapping)
        data = _wire(job.to_dict())
        assert isinstance(data["mapping"], list), "mappings use to_spec()"
        rebuilt = EvaluateJob.from_dict(data)
        assert rebuilt.mapping.to_spec() == design.mapping.to_spec()


class TestSearchJobRoundTrip:
    def test_round_trip_with_objective_and_knobs(self):
        design, workload = load_design(FULL_SPEC)
        job = SearchJob(
            design,
            workload,
            objective=edp_objective,
            parallel=2,
            batch_size=16,
            strategy="serial",
        )
        rebuilt = SearchJob.from_dict(_wire(job.to_dict()))
        assert rebuilt.objective is edp_objective
        assert (rebuilt.parallel, rebuilt.batch_size, rebuilt.strategy) == (
            2,
            16,
            "serial",
        )

    def test_candidates_serialize_structurally(self):
        design, workload = load_design(FULL_SPEC)
        job = SearchJob(design, workload, candidates=[design.mapping])
        data = _wire(job.to_dict())
        assert isinstance(data["candidates"][0], list)
        rebuilt = SearchJob.from_dict(data)
        assert rebuilt.candidates[0].to_spec() == design.mapping.to_spec()

    def test_search_results_identical_after_round_trip(self):
        design, workload = load_design(FULL_SPEC)
        design = load_design(FULL_SPEC)[0]
        job = SearchJob(design, workload, candidates=[design.mapping])
        rebuilt = job_from_dict(_wire(job.to_dict()))
        with Session() as session:
            expected = session.submit(job).result().to_dict()
        with Session() as session:
            actual = session.submit(rebuilt).result().to_dict()
        assert actual == expected


class TestNetworkJobRoundTrip:
    def test_round_trip_evaluates_bit_identically(self):
        design, _ = load_design(FULL_SPEC)
        spec = yaml.safe_load(FULL_SPEC)
        layers = alexnet()[:2]
        job = NetworkJob(design, layers, uniform_densities)
        rebuilt = job_from_dict(_wire(job.to_dict()))
        assert [l.name for l in rebuilt.layers] == [l.name for l in layers]
        assert rebuilt.densities_for is uniform_densities
        assert rebuilt.design.name == design.name


class TestEnvelopeValidation:
    def test_job_from_dict_dispatches_every_kind(self):
        design, workload = load_design(FULL_SPEC)
        jobs = [
            EvaluateJob(design, workload),
            SearchJob(design, workload),
            NetworkJob(design, alexnet()[:1], uniform_densities),
        ]
        for job in jobs:
            assert type(job_from_dict(_wire(job.to_dict()))) is type(job)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError, match="unknown job kind"):
            job_from_dict({"schema": JOB_SCHEMA_VERSION, "kind": "teleport"})

    def test_wrong_schema_version_rejected(self):
        design, workload = load_design(FULL_SPEC)
        data = EvaluateJob(design, workload).to_dict()
        data["schema"] = 99
        with pytest.raises(SpecError, match="unsupported job schema"):
            EvaluateJob.from_dict(data)

    def test_wrong_kind_rejected(self):
        design, workload = load_design(FULL_SPEC)
        data = SearchJob(design, workload).to_dict()
        with pytest.raises(SpecError, match="expected a 'evaluate-job'"):
            EvaluateJob.from_dict(data)

    def test_non_dict_rejected(self):
        with pytest.raises(SpecError, match="must be a dict"):
            job_from_dict("a string")

    def test_tampered_payload_normalised_to_spec_error(self):
        design, workload = load_design(FULL_SPEC)
        data = EvaluateJob(design, workload).to_dict()
        data["design"] = {"encoding": "pickle", "data": "!!!not-base64!!!"}
        with pytest.raises(SpecError, match="cannot decode job payload"):
            EvaluateJob.from_dict(data)

    def test_untagged_payload_rejected(self):
        design, workload = load_design(FULL_SPEC)
        data = EvaluateJob(design, workload).to_dict()
        data["workload"] = "raw-string"
        with pytest.raises(SpecError, match="tagged pickle"):
            EvaluateJob.from_dict(data)
