"""The Session/Job façade: one front door for every evaluation path.

Covers the acceptance bar of the API redesign: the same design
expressed as a YAML path, a YAML string, a dict, and Python objects
produces bit-identical results through ``Session.submit``; handles
behave like futures (lazy, batched, error-capturing); the Session owns
the persistent tier (auto warm-start on first use, spill on close);
and search/network jobs reproduce the engine exactly.
"""

from __future__ import annotations

import warnings

import pytest
import yaml

from repro import (
    Design,
    EvaluateJob,
    Evaluator,
    MapspaceConstraints,
    NetworkJob,
    Session,
    load_design,
)
from repro.api import evaluate_network
from repro.common.cache import AnalysisCache, PersistentCache
from repro.common.errors import (
    MappingError,
    ReproError,
    SpecError,
    ValidationError,
)
from repro.model.result import NetworkResult, SearchResult
from repro.workload.nets import alexnet
from tests.io.test_yaml_spec import FULL_SPEC


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.yaml"
    path.write_text(FULL_SPEC)
    return str(path)


def _overflow_spec() -> dict:
    """The full spec with a Buffer too small for its tiles."""
    spec = yaml.safe_load(FULL_SPEC)
    spec["arch"]["storage"][1]["capacity_words"] = 4
    return spec


class TestSubmitForms:
    def test_four_spec_forms_bit_identical(self, spec_file):
        design, workload = load_design(FULL_SPEC)
        with Session() as session:
            results = [
                session.evaluate(spec_file),               # YAML path
                session.evaluate(FULL_SPEC),               # YAML string
                session.evaluate(yaml.safe_load(FULL_SPEC)),  # dict
                session.evaluate(design, workload),        # Python objects
            ]
        dicts = [r.to_dict() for r in results]
        assert dicts[0] == dicts[1] == dicts[2] == dicts[3]

    def test_tuple_job_form(self):
        design, workload = load_design(FULL_SPEC)
        with Session() as session:
            via_tuple = session.submit((design, workload)).result()
            via_job = session.submit(EvaluateJob(design, workload)).result()
        assert via_tuple.to_dict() == via_job.to_dict()

    def test_constraints_only_spec_searches(self):
        spec = yaml.safe_load(FULL_SPEC)
        del spec["mapping"]
        spec["constraints"] = {"spatial_dims": {"Buffer": ["n"]}}
        with Session(search_budget=8) as session:
            outcome = session.submit(spec).result()
        assert isinstance(outcome, SearchResult)
        assert outcome.found

    def test_search_flag_overrides_mapping(self):
        with Session(search_budget=8) as session:
            outcome = session.submit(FULL_SPEC, search=True).result()
        assert isinstance(outcome, SearchResult)
        assert outcome.best is not None

    def test_rejects_unsubmittable_objects(self):
        with Session() as session:
            with pytest.raises(SpecError):
                session.submit(42)
            with pytest.raises(SpecError):
                session.submit((1,))
            handle = session.submit(FULL_SPEC)
            with pytest.raises(SpecError):
                session.submit(handle)

    def test_malformed_spec_raises_spec_error(self):
        with Session() as session:
            with pytest.raises(SpecError):
                session.submit("- not\n- a\n- design\n")


class TestJobHandles:
    def test_handles_resolve_lazily_and_in_bulk(self):
        design, workload = load_design(FULL_SPEC)
        with Session() as session:
            handles = session.submit_many(
                [EvaluateJob(design, workload) for _ in range(3)]
            )
            assert not any(h.done() for h in handles)
            first = handles[0].result()
            # One result() drains the whole batch.
            assert all(h.done() for h in handles)
            assert handles[2].result().to_dict() == first.to_dict()

    def test_capacity_error_captured_per_job(self):
        bad = _overflow_spec()
        with Session() as session:
            ok = session.submit(FULL_SPEC)
            failing = session.submit(bad)
            assert isinstance(failing.exception(), ValidationError)
            with pytest.raises(ValidationError):
                failing.result()
            # The healthy job in the same batch still succeeded.
            assert ok.exception() is None
            assert ok.result().cycles > 0

    def test_run_resolves_without_result_reads(self):
        with Session() as session:
            handle = session.submit(FULL_SPEC)
            session.run()
            assert handle.done()

    def test_parallel_batch_matches_serial(self):
        design, workload = load_design(FULL_SPEC)
        jobs = [EvaluateJob(design, workload) for _ in range(4)]
        with Session() as serial:
            expected = [h.result().to_dict() for h in serial.submit_many(jobs)]
        with Session(parallel=2) as pooled:
            got = [h.result().to_dict() for h in pooled.submit_many(jobs)]
        assert got == expected

    def test_missing_workload_rejected_at_submit(self):
        design, workload = load_design(FULL_SPEC)
        with Session() as session:
            with pytest.raises(SpecError):
                session.submit(EvaluateJob(design, None))
            with pytest.raises(SpecError):
                session.evaluate(design)  # forgot the workload

    def test_unexpected_error_resolves_all_handles(self, monkeypatch):
        # A non-ReproError aborts the batch, but every orphaned handle
        # must still resolve with that error — never a silent None.
        design, workload = load_design(FULL_SPEC)
        boom = RuntimeError("engine exploded")

        def explode(*args, **kwargs):
            raise boom

        with Session() as session:
            # Patch both serial and stacked-batch entry points: the
            # Session picks one based on batch size.
            monkeypatch.setattr(session.evaluator, "_evaluate", explode)
            monkeypatch.setattr(session.evaluator, "_evaluate_batch", explode)
            bad = session.submit(EvaluateJob(design, workload))
            orphan = session.submit(EvaluateJob(design, workload))
            with pytest.raises(RuntimeError):
                bad.result()
            assert bad.done() and bad.exception() is boom
            assert orphan.done(), "handles must never be orphaned"
            assert orphan.exception() is boom

    def test_parallel_batch_with_failures_attributes_them(self):
        # A pooled batch containing a capacity-overflow job falls back
        # to serial execution, attributing the failure to the one job
        # that caused it.
        with Session(parallel=2) as session:
            ok = session.submit(FULL_SPEC)
            bad = session.submit(_overflow_spec())
            assert ok.exception() is None
            assert isinstance(bad.exception(), ValidationError)


class TestSessionLifecycle:
    def test_context_manager_closes(self):
        with Session() as session:
            pass
        assert session.closed
        with pytest.raises(SpecError):
            session.submit(FULL_SPEC)

    def test_close_runs_pending_jobs(self):
        session = Session()
        handle = session.submit(FULL_SPEC)
        session.close()
        assert handle.done()
        assert handle.result().cycles > 0
        session.close()  # idempotent

    def test_exception_exit_cancels_pending_jobs(self):
        # Ctrl-C (or any exception) mid-sweep must not run the rest of
        # the sweep during unwind; pending handles resolve as cancelled.
        design, workload = load_design(FULL_SPEC)
        with pytest.raises(KeyboardInterrupt):
            with Session() as session:
                pending = session.submit(EvaluateJob(design, workload))
                raise KeyboardInterrupt
        assert session.closed
        assert pending.done()
        assert isinstance(pending.exception(), ReproError)
        assert "cancelled" in str(pending.exception())

    def test_cache_stats_through_session(self):
        with Session() as session:
            session.evaluate(FULL_SPEC)
            session.evaluate(FULL_SPEC)
            stats = session.cache_stats()
        assert stats["sparse"]["hits"] >= 1
        assert Session(cache=None).cache_stats() == {}

    def test_shared_cache_pools_hits(self):
        shared = AnalysisCache()
        with Session(cache=shared) as first:
            first.evaluate(FULL_SPEC)
        with Session(cache=shared) as second:
            second.evaluate(FULL_SPEC)
            assert second.cache_stats()["sparse"]["hits"] >= 1

    def test_rejects_bad_parallel(self):
        with pytest.raises(SpecError):
            Session(parallel=0)


class TestPersistentTier:
    def test_warm_start_on_first_use_and_spill_on_close(self, tmp_path):
        store = PersistentCache(root=tmp_path)
        with Session(persistent=store) as first:
            cold = first.evaluate(FULL_SPEC)
            assert first.warm_loaded == 0
        snapshots = list(tmp_path.rglob("*.pkl"))
        assert snapshots, "close() must spill a snapshot"

        with Session(persistent=PersistentCache(root=tmp_path)) as second:
            warm = second.evaluate(FULL_SPEC)
            assert second.warm_loaded > 0, "first use must warm-start"
            # The warm evaluation is a pure cache replay.
            assert second.cache_stats()["sparse"]["misses"] == 0
        assert warm.to_dict() == cold.to_dict()

    def test_multi_key_spill_keeps_every_snapshot_fresh(self, tmp_path):
        from repro.model.engine import persistent_state_key

        def variant(density):
            spec = yaml.safe_load(FULL_SPEC)
            spec["workload"]["densities"]["A"] = density
            return load_design(spec)

        points = [variant(d) for d in (0.25, 0.3, 0.35)]
        keys = [persistent_state_key(d, [w]) for d, w in points]
        assert len(set(keys)) == 3

        with Session(persistent=PersistentCache(root=tmp_path)) as first:
            for design, workload in points[:2]:
                first.evaluate(design, workload)
        with Session(persistent=PersistentCache(root=tmp_path)) as second:
            for design, workload in points:
                second.evaluate(design, workload)
        # Every touched key's snapshot must include the new (third
        # variant's) entries — a spill under an earlier key marking the
        # cache clean must not leave later keys' snapshots stale.
        store = PersistentCache(root=tmp_path)
        for key in keys:
            snapshot = store.load(key)
            assert snapshot is not None, key
            assert len(snapshot["sparse"]) == 3, key

    def test_no_persistent_tier_no_files(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        with Session() as session:
            session.evaluate(FULL_SPEC)
        assert not list(tmp_path.rglob("*.pkl"))


def _edp(result):
    return result.edp


class TestSearchJobs:
    def test_search_matches_legacy_entry_point(self):
        spec = yaml.safe_load(FULL_SPEC)
        del spec["mapping"]
        spec["constraints"] = {"spatial_dims": {"Buffer": ["n"]}}
        design, workload = load_design(spec)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = Evaluator(search_budget=12).search_mappings(
                design, workload
            )
        with Session(search_budget=12) as session:
            outcome = session.search(design, workload)
        assert outcome.best.to_dict() == legacy.to_dict()
        assert outcome.budget == 12 and outcome.seed == 0

    def test_search_with_objective_and_candidates(self):
        design, workload = load_design(FULL_SPEC)
        candidates = [design.mapping]
        with Session() as session:
            outcome = session.search(
                design, workload, objective=_edp, candidates=candidates
            )
        assert outcome.found
        assert outcome.best.dense.mapping.cache_key() == (
            design.mapping.cache_key()
        )
        # Explicit candidates bypass sampling: no budget/seed recorded.
        assert outcome.budget is None and outcome.seed is None

    def test_search_spec_form_honours_objective_and_candidates(self):
        design, workload = load_design(FULL_SPEC)
        candidates = [design.mapping]
        with Session() as session:
            via_spec = session.search(
                FULL_SPEC, objective=_edp, candidates=candidates
            )
            via_objects = session.search(
                design, workload, objective=_edp, candidates=candidates
            )
        assert via_spec.best.to_dict() == via_objects.best.to_dict()

    def test_search_honours_search_job_fields(self):
        from repro import SearchJob

        design, workload = load_design(FULL_SPEC)
        job = SearchJob(
            design, workload, objective=_edp, candidates=[design.mapping]
        )
        with Session() as session:
            outcome = session.search(job)
        # The job's own fields must survive (not be reset to defaults).
        assert job.objective is _edp
        assert job.candidates == [design.mapping]
        assert outcome.found and outcome.budget is None

    def test_search_rejects_non_search_jobs(self):
        design, workload = load_design(FULL_SPEC)
        with Session() as session:
            with pytest.raises(SpecError):
                session.search(EvaluateJob(design, workload))
            with pytest.raises(SpecError):
                session.submit(EvaluateJob(design, workload), search=True)

    def test_search_tuple_with_mapping_rejected(self):
        design, workload = load_design(FULL_SPEC)
        with Session() as session:
            with pytest.raises(SpecError):
                session.submit(
                    (design, workload, design.mapping), search=True
                )

    def test_unsatisfiable_search_returns_empty_result(self):
        spec = _overflow_spec()
        del spec["mapping"]
        spec["constraints"] = {}
        with Session(search_budget=4) as session:
            outcome = session.submit(spec).result()
            assert isinstance(outcome, SearchResult)
            assert not outcome.found
            # evaluate() unwraps searches; an empty one is an error.
            with pytest.raises(MappingError):
                session.evaluate(spec)


def _densities_for(layer):
    return {"I": 0.5, "W": 0.4}


class TestNetworkJobs:
    def test_network_job_matches_legacy_pairs(self):
        from repro.designs import eyeriss

        design = eyeriss.eyeriss_design()
        layers = alexnet()[:3]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = Evaluator(check_capacity=False).evaluate_network(
                design, layers, _densities_for
            )
        with Session(check_capacity=False) as session:
            net = session.evaluate_network(design, layers, _densities_for)
        assert isinstance(net, NetworkResult)
        assert [l.layer_name for l in net.layers] == [
            layer.name for layer, _ in legacy
        ]
        for entry, (layer, result) in zip(net.layers, legacy):
            assert entry.repeat == layer.repeat
            assert entry.result.to_dict() == result.to_dict()
        assert net.total_cycles == sum(
            layer.repeat * result.cycles for layer, result in legacy
        )

    def test_module_level_convenience(self):
        from repro.designs import eyeriss

        design = eyeriss.eyeriss_design()
        layers = alexnet()[:2]
        net = evaluate_network(
            design, layers, _densities_for, check_capacity=False
        )
        assert isinstance(net, NetworkResult)
        assert len(net.layers) == 2

    def test_network_job_requires_densities(self):
        design = Design(
            "d",
            load_design(FULL_SPEC)[0].arch,
        )
        with Session() as session:
            handle = session.submit(NetworkJob(design, alexnet()[:1], None))
            assert isinstance(handle.exception(), SpecError)


class TestDesignWithFactoryAndConstraints:
    def test_python_object_job_with_explicit_mapping(self):
        design, workload = load_design(FULL_SPEC)
        mapping = design.mapping
        bare = Design(design.name, design.arch, design.safs)
        with Session() as session:
            overridden = session.evaluate(bare, workload, mapping)
            direct = session.evaluate(design, workload)
        assert overridden.to_dict() == direct.to_dict()

    def test_spec_form_honours_mapping_override(self):
        design, workload = load_design(FULL_SPEC)
        # Reorder the spec mapping's Buffer loops: a different schedule
        # with the same factors.
        alt = yaml.safe_load(FULL_SPEC)["mapping"]
        alt[1]["temporal"] = list(reversed(alt[1]["temporal"]))
        from repro import Mapping

        alt_mapping = Mapping.from_spec(alt)
        assert alt_mapping.cache_key() != design.mapping.cache_key()
        with Session() as session:
            via_spec = session.evaluate(FULL_SPEC, mapping=alt_mapping)
            via_objects = session.evaluate(design, workload, alt_mapping)
        assert via_spec.to_dict() == via_objects.to_dict()
        assert (
            via_spec.dense.mapping.cache_key() == alt_mapping.cache_key()
        )

    def test_search_override_does_not_mutate_callers_job(self):
        from repro import SearchJob

        design, workload = load_design(FULL_SPEC)
        job = SearchJob(design, workload)
        with Session() as session:
            outcome = session.search(job, candidates=[design.mapping])
        assert job.candidates is None, "caller's job must not be mutated"
        assert outcome.found and outcome.budget is None

    def test_constraints_only_design_evaluate_unwraps_search(self):
        design, workload = load_design(FULL_SPEC)
        searched = Design(
            design.name,
            design.arch,
            design.safs,
            constraints=MapspaceConstraints(spatial_dims={"Buffer": ["n"]}),
        )
        with Session(search_budget=8) as session:
            result = session.evaluate(searched, workload)
        assert result.cycles > 0
