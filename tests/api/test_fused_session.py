"""FusedJob through the Session: submission, caching, wire format."""

from dataclasses import replace

import pytest

from repro.api import (
    EinsumGraph,
    FusedJob,
    FusedMapping,
    FusedResult,
    Session,
    job_from_dict,
    job_resendable,
)
from repro.api.session import coerce_job
from repro.common.errors import SpecError
from repro.designs import toy
from repro.designs.common import generic_einsum_mapping
from repro.workload.nets import attention
from tests.workload.test_graph import chain_graph

DENSITIES = {"A": 0.5, "B": 0.6, "H": 0.7, "C": 0.4}


def fused_ready_design():
    return replace(
        toy.dense_design(),
        mapping=None,
        constraints=None,
        mapping_factory=generic_einsum_mapping,
    )


class TestSessionPath:
    def test_evaluate_fused_returns_fused_result(self):
        with Session(check_capacity=False) as session:
            result = session.evaluate_fused(
                fused_ready_design(), chain_graph(), dict(DENSITIES)
            )
        assert isinstance(result, FusedResult)
        assert [e.einsum_name for e in result.einsums] == ["fc1", "fc2"]

    def test_submit_accepts_fused_job(self):
        job = FusedJob(fused_ready_design(), chain_graph(), dict(DENSITIES))
        assert coerce_job(job) is job
        with Session(check_capacity=False) as session:
            result = session.submit(job).result()
        assert isinstance(result, FusedResult)

    def test_search_rejects_fused_job(self):
        job = FusedJob(fused_ready_design(), chain_graph())
        with pytest.raises(SpecError):
            coerce_job(job, search=True)
        with Session(check_capacity=False) as session:
            with pytest.raises(SpecError):
                session.search(job)

    def test_unknown_density_tensor_rejected(self):
        with Session(check_capacity=False) as session:
            handle = session.submit(
                FusedJob(
                    fused_ready_design(), chain_graph(), {"NOPE": 0.5}
                )
            )
            with pytest.raises(SpecError, match="NOPE"):
                handle.result()

    def test_fused_attention_eliminates_backing_traffic(self):
        graph = attention(seq=32, d_model=64, heads=2)
        design = fused_ready_design()
        with Session(check_capacity=False) as session:
            unfused = session.evaluate_fused(design, graph)
            fused = session.evaluate_fused(
                design, graph, fused=FusedMapping(fuse_at="Buffer")
            )
        assert unfused.intermediate_backing_words > 0
        assert fused.intermediate_backing_words == 0
        record = fused.shared_tensor("S")
        assert record["level"] == "Buffer"
        assert sum(record["fusion_words"].values()) > 0


class TestCaching:
    def test_fused_stage_reported_and_hit_on_repeat(self):
        with Session(check_capacity=False) as session:
            baseline = session.cache_stats()
            assert set(baseline) >= {"dense", "candidates", "fused"}
            assert baseline["fused"]["misses"] == 0
            first = session.evaluate_fused(
                fused_ready_design(), chain_graph(), dict(DENSITIES)
            )
            mid = session.cache_stats()
            assert mid["fused"]["misses"] == 1
            assert mid["fused"]["entries"] == 1
            second = session.evaluate_fused(
                fused_ready_design(), chain_graph(), dict(DENSITIES)
            )
            after = session.cache_stats()
            assert after["fused"]["hits"] == 1
        assert second.to_dict() == first.to_dict()

    def test_fused_stage_survives_the_persistent_tier(self, tmp_path):
        from repro.common.cache import PersistentCache

        design = fused_ready_design()
        graph = chain_graph()
        with Session(
            check_capacity=False, persistent=PersistentCache(root=tmp_path)
        ) as first:
            cold = first.evaluate_fused(design, graph, dict(DENSITIES))
        # A fresh Session on the same store serves the whole result
        # from one fused-stage probe — no per-einsum stage traffic.
        with Session(
            check_capacity=False, persistent=PersistentCache(root=tmp_path)
        ) as second:
            warm = second.evaluate_fused(design, graph, dict(DENSITIES))
            stats = second.cache_stats()
        assert stats["fused"]["hits"] == 1
        assert stats["fused"]["misses"] == 0
        assert stats["dense"]["misses"] == 0
        assert warm.to_dict() == cold.to_dict()

    def test_distinct_fusions_key_separately(self):
        graph = attention(seq=32, d_model=64, heads=2)
        design = fused_ready_design()
        with Session(check_capacity=False) as session:
            unfused = session.evaluate_fused(design, graph)
            fused = session.evaluate_fused(
                design, graph, fused=FusedMapping(fuse_at="Buffer")
            )
            stats = session.cache_stats()
        assert stats["fused"]["entries"] == 2
        assert unfused.to_dict() != fused.to_dict()


class TestWire:
    def test_job_round_trip(self):
        job = FusedJob(
            fused_ready_design(),
            chain_graph(),
            dict(DENSITIES),
            FusedMapping(fuse_at="Buffer"),
            parallel=2,
        )
        data = job.to_dict()
        assert data["kind"] == "fused-job"
        rebuilt = job_from_dict(data)
        assert isinstance(rebuilt, FusedJob)
        assert rebuilt.graph.cache_key() == job.graph.cache_key()
        assert rebuilt.fused.cache_key() == job.fused.cache_key()
        assert rebuilt.densities == job.densities
        assert rebuilt.parallel == 2

    def test_job_is_resendable(self):
        job = FusedJob(fused_ready_design(), chain_graph())
        assert job_resendable(job)

    def test_minimal_envelope_decodes_leniently(self):
        job = FusedJob(fused_ready_design(), chain_graph())
        data = job.to_dict()
        for optional in ("densities", "fused", "parallel"):
            data.pop(optional, None)
        rebuilt = job_from_dict(data)
        assert rebuilt.densities is None
        assert rebuilt.fused is None
        assert rebuilt.parallel is None

    def test_rebuilt_job_evaluates_identically(self):
        job = FusedJob(fused_ready_design(), chain_graph(), dict(DENSITIES))
        rebuilt = job_from_dict(job.to_dict())
        with Session(check_capacity=False) as session:
            direct = session.submit(job).result()
            resent = session.submit(rebuilt).result()
        assert resent.to_dict() == direct.to_dict()

    def test_graph_export_is_public(self):
        graph = chain_graph()
        rebuilt = EinsumGraph.from_dict(graph.to_dict())
        assert rebuilt.cache_key() == graph.cache_key()
