"""Thread-safety of JobHandle resolution and ``result(timeout=...)``.

The serving daemon resolves handles from many threads at once; these
tests pin the two contracts that makes safe:

* the lazy bulk-resolve is serialized on the Session lock — concurrent
  ``result()`` calls across threads never interleave a drain, and a
  handle that reports ``done()`` always has its payload published
  (the regression: ``_resolve`` used to set the done flag *before*
  the payload, so a racing reader could see ``done()`` with a stale
  ``None`` result),
* ``result(timeout=...)`` bounds the wait for a busy Session and
  leaves the handle pending on expiry.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import EvaluateJob, Session
from repro.io.yaml_spec import load_design
from tests.io.test_yaml_spec import FULL_SPEC


class TestConcurrentResolution:
    def test_concurrent_result_calls_race(self):
        # Many threads hammer result() on distinct pending handles of
        # one Session; every observation must be a fully-published
        # result, never None, and all must be bit-identical.
        design, workload = load_design(FULL_SPEC)
        with Session() as session:
            expected = session.evaluate(design, workload).to_dict()
        for _ in range(5):
            with Session() as session:
                handles = [
                    session.submit(EvaluateJob(design, workload))
                    for _ in range(8)
                ]
                seen = [None] * len(handles)
                errors = []
                barrier = threading.Barrier(len(handles))

                def read(i, handle):
                    barrier.wait()
                    try:
                        seen[i] = handle.result().to_dict()
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)

                threads = [
                    threading.Thread(target=read, args=(i, h))
                    for i, h in enumerate(handles)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=30)
                assert not errors, errors
                assert all(s == expected for s in seen)

    def test_done_implies_payload_published(self):
        # Direct pin of the _resolve ordering: a reader polling done()
        # from another thread must find the payload the instant the
        # flag flips.
        design, workload = load_design(FULL_SPEC)
        with Session() as session:
            handle = session.submit(EvaluateJob(design, workload))
            observed = {}

            def poll():
                while not handle.done():
                    pass
                # No lock taken: this is exactly the racy fast path.
                observed["result"] = handle._result

            poller = threading.Thread(target=poll)
            poller.start()
            handle.result()
            poller.join(timeout=30)
        assert observed["result"] is not None

    def test_concurrent_submit_and_drain(self):
        design, workload = load_design(FULL_SPEC)
        results = []
        errors = []

        with Session() as session:

            def worker():
                try:
                    h = session.submit(EvaluateJob(design, workload))
                    results.append(h.result().to_dict())
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert not errors, errors
        assert len(results) == 8
        assert all(r == results[0] for r in results)


class TestResultTimeout:
    def test_timeout_expires_while_session_busy(self):
        design, workload = load_design(FULL_SPEC)
        with Session() as session:
            handle = session.submit(EvaluateJob(design, workload))
            locked = threading.Event()
            release = threading.Event()

            def hold_lock():
                with session._lock:
                    locked.set()
                    release.wait(timeout=30)

            holder = threading.Thread(target=hold_lock)
            holder.start()
            locked.wait(timeout=10)
            try:
                with pytest.raises(TimeoutError, match="did not resolve"):
                    handle.result(timeout=0.05)
                assert not handle.done(), "expiry must leave it pending"
                with pytest.raises(TimeoutError):
                    handle.exception(timeout=0.05)
            finally:
                release.set()
                holder.join(timeout=10)
            # An untimed call afterwards still resolves normally.
            assert handle.result() is not None

    def test_timeout_on_idle_session_resolves_immediately(self):
        design, workload = load_design(FULL_SPEC)
        with Session() as session:
            handle = session.submit(EvaluateJob(design, workload))
            assert handle.result(timeout=30).to_dict()
            # Resolved handles never consult the lock again.
            assert handle.result(timeout=0) is not None
