"""Unit tests for the sharding plan, witness board, and stream store."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.jobs import (
    EvaluateJob,
    NetworkJob,
    SearchJob,
    SearchShardJob,
    job_resendable,
)
from repro.common.cache import ObjectStore
from repro.common.errors import SpecError
from repro.distributed import (
    StreamStore,
    WitnessBoard,
    WitnessSnapshot,
    plan_shards,
    stream_store_for,
)


class TestPlanShards:
    def test_partitions_exactly(self):
        specs = plan_shards(100, 7)
        assert specs[0].start == 0
        assert specs[-1].stop == 100
        for prev, nxt in zip(specs, specs[1:]):
            assert prev.stop == nxt.start

    def test_balanced_longer_first(self):
        widths = [s.width for s in plan_shards(10, 3)]
        assert widths == [4, 3, 3]

    def test_total_smaller_than_shards(self):
        specs = plan_shards(2, 5)
        assert [(s.start, s.stop) for s in specs] == [(0, 1), (1, 2)]

    def test_empty_stream_single_empty_shard(self):
        specs = plan_shards(0, 4)
        assert [(s.start, s.stop) for s in specs] == [(0, 0)]

    def test_rejects_bad_counts(self):
        with pytest.raises(SpecError):
            plan_shards(10, 0)
        with pytest.raises(SpecError):
            plan_shards(-1, 2)

    @settings(max_examples=100, deadline=None)
    @given(
        total=st.integers(min_value=0, max_value=10_000),
        shards=st.integers(min_value=1, max_value=64),
    )
    def test_partition_property(self, total, shards):
        specs = plan_shards(total, shards)
        ids = [s.shard_id for s in specs]
        assert ids == sorted(ids) == list(range(len(specs)))
        covered = 0
        for spec in specs:
            assert spec.start == covered
            assert spec.stop >= spec.start
            covered = spec.stop
        assert covered == max(total, 0)
        widths = [s.width for s in specs]
        if total > 0:
            assert max(widths) - min(widths) <= 1
            assert widths == sorted(widths, reverse=True)


class TestWitnessSnapshot:
    def test_round_trip(self):
        snap = WitnessSnapshot(
            position=7, index=4,
            witnesses={"Buffer": [{"m": 8, "n": 4}]},
        )
        assert WitnessSnapshot.from_dict(snap.to_dict()) == snap

    def test_malformed_raises_spec_error(self):
        with pytest.raises(SpecError):
            WitnessSnapshot.from_dict("nope")
        with pytest.raises(SpecError):
            WitnessSnapshot.from_dict({"position": 1})
        with pytest.raises(SpecError):
            WitnessSnapshot.from_dict(
                {"position": 1, "index": 0, "witnesses": 3}
            )


class TestWitnessBoard:
    @staticmethod
    def _snap(position: int) -> WitnessSnapshot:
        return WitnessSnapshot(position=position, index=position, witnesses={})

    def test_best_before_picks_furthest_usable(self):
        board = WitnessBoard()
        for position in (3, 9, 6):
            board.post(self._snap(position))
        assert board.best_before(10).position == 9
        assert board.best_before(7).position == 6
        assert board.best_before(2) is None

    def test_after_excludes_already_passed(self):
        board = WitnessBoard()
        board.post(self._snap(5))
        assert board.best_before(10, after=5) is None
        assert board.best_before(10, after=4).position == 5

    def test_duplicates_collapse(self):
        board = WitnessBoard()
        board.post(self._snap(5))
        board.post(self._snap(5))
        assert len(board) == 1

    @settings(max_examples=100, deadline=None)
    @given(
        positions=st.lists(
            st.integers(min_value=0, max_value=500),
            min_size=0, max_size=30,
        ),
        limit=st.integers(min_value=0, max_value=500),
        after=st.integers(min_value=-1, max_value=500),
    )
    def test_delivery_order_duplicates_and_drops_are_harmless(
        self, positions, limit, after
    ):
        """Whatever subset of snapshots arrived, in whatever order,
        with whatever duplication, ``best_before`` returns exactly the
        furthest usable one — fast-forwarding is best-effort but never
        wrong."""
        board = WitnessBoard()
        for position in positions + positions[:3]:  # re-delivery
            board.post(self._snap(position))
        usable = [p for p in set(positions) if after < p <= limit]
        best = board.best_before(limit, after=after)
        if usable:
            assert best is not None
            assert best.position == max(usable)
        else:
            assert best is None

    def test_eviction_keeps_highest_positions(self):
        board = WitnessBoard(capacity=3)
        for position in (1, 2, 3, 4):
            board.post(self._snap(position))
        assert len(board) == 3
        assert board.best_before(100).position == 4
        assert board.best_before(1) is None  # evicted


class TestStreamStore:
    def test_key_is_deterministic_and_parameter_sensitive(self):
        identity = ("einsum", "arch", "constraints")
        a = StreamStore.key("sampled", identity, 64, 0)
        assert a == StreamStore.key("sampled", identity, 64, 0)
        assert a != StreamStore.key("sampled", identity, 64, 1)
        assert a != StreamStore.key("sampled", identity, 128, 0)
        assert a != StreamStore.key("exhaustive", identity, 64, 0)

    def test_round_trip_and_length_check(self, tmp_path):
        store = StreamStore(ObjectStore(root=tmp_path))
        store.publish("k", [1, 2, 3])
        assert store.fetch("k") == [1, 2, 3]
        assert store.fetch("k", total=3) == [1, 2, 3]
        # A length mismatch is treated as corruption and dropped.
        assert store.fetch("k", total=5) is None
        assert store.fetch("k") is None

    def test_none_persistent_means_no_store(self):
        assert stream_store_for(None) is None


class TestJobResendable:
    def test_mapspace_search_is_not_resendable(self, witness_design,
                                               witness_workload):
        job = SearchJob(witness_design, witness_workload)
        assert not job_resendable(job)

    def test_explicit_candidates_search_is_resendable(
        self, witness_design, witness_workload
    ):
        job = SearchJob(witness_design, witness_workload, candidates=[])
        assert job_resendable(job)

    def test_other_jobs_are_resendable(self, witness_design,
                                       witness_workload):
        assert job_resendable(EvaluateJob(witness_design, witness_workload))
        assert job_resendable(
            SearchShardJob(witness_design, witness_workload)
        )
        assert job_resendable(
            NetworkJob(witness_design, [], lambda layer: {})
        )
        assert job_resendable(None)  # protocol ops
