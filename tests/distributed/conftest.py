"""Shared fixtures for the distributed-search tests.

The designs here are chosen to exercise the scan's bookkeeping, not to
be realistic: the tight buffer plus spatial constraints makes the
capacity prefilter reject candidates and register overflow witnesses
(so prefix replay has real state to reproduce), and the tiny exhaustive
design flips the planner into enumeration mode.
"""

from __future__ import annotations

import pytest

from repro import Workload, matmul
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.mapping.mapspace import MapspaceConstraints
from repro.model.engine import Design, Evaluator

BUDGET = 24


def _arch(name: str, buffer_words: int, macs: int) -> Architecture:
    return Architecture(
        name,
        [
            StorageLevel(
                "DRAM", None, component="dram",
                read_bandwidth=8, write_bandwidth=8,
            ),
            StorageLevel(
                "Buffer", buffer_words, component="sram",
                read_bandwidth=16, write_bandwidth=16,
            ),
        ],
        ComputeLevel("MAC", instances=macs),
    )


@pytest.fixture
def witness_design() -> Design:
    """Sampled scan with heavy witness traffic: the 2048-word buffer
    overflows many tilings, so withheld/rejected counts are nonzero and
    prefix replay must reproduce real witness state."""
    return Design(
        "witnessy",
        _arch("witnessy", 2048, 16),
        constraints=MapspaceConstraints(spatial_dims={"Buffer": ["n", "m"]}),
    )


@pytest.fixture
def witness_workload() -> Workload:
    return Workload.uniform(matmul(128, 128, 128), {"A": 0.2, "B": 0.2})


@pytest.fixture
def exhaustive_design() -> Design:
    return Design(
        "tiny-exhaustive",
        _arch("tiny-exhaustive", 1024, 1),
        constraints=MapspaceConstraints(),
    )


@pytest.fixture
def exhaustive_workload() -> Workload:
    return Workload.uniform(matmul(64, 64, 64), {"A": 0.9, "B": 0.9})


def make_evaluator(budget: int = BUDGET, seed: int = 0, **kwargs) -> Evaluator:
    return Evaluator(search_budget=budget, search_seed=seed, **kwargs)


def frontier_key(frontier) -> list:
    """A comparable, exact rendering of a frontier's points."""
    return [
        (point.index, point.score, point.objectives)
        for point in frontier.ordered()
    ]
