"""Bit-identity of the sharded scan against the single-host scan.

The contract under test is the tentpole guarantee: splitting one
search's candidate stream into contiguous shards, scanning them
independently (with prefix replay and witness exchange), and merging
the per-shard frontiers produces *exactly* the single-host batched
outcome — same winning score, same winning index, same frontier —
for sampled, exhaustive, and explicit-candidate streams, at any shard
count, regardless of how witness snapshots were delivered.
"""

from __future__ import annotations

import random

import pytest

from repro.api import Session
from repro.api.jobs import SearchJob, SearchShardJob
from repro.common.errors import SpecError
from repro.distributed import (
    WitnessBoard,
    WitnessSnapshot,
    merge_shards,
    plan_search,
    plan_shards,
    run_shard,
    run_shards_local,
)
from repro.mapping.mapspace import Mapper
from repro.model.result import SearchShardResult

from .conftest import BUDGET, frontier_key, make_evaluator

SHARD_COUNTS = [1, 2, 3, 5, 9]


def _reference(evaluator, job: SearchJob):
    return evaluator._search_full(
        job.design,
        job.workload,
        objective=job.objective,
        candidates=job.candidates,
        strategy="batched",
    )


def _assert_outcomes_identical(ref, sharded):
    assert sharded.best_score == ref.best_score
    assert sharded.best_index == ref.best_index
    assert sharded.strategy == "batched"
    assert frontier_key(sharded.frontier) == frontier_key(ref.frontier)


def _exhaustive_budget(design, workload) -> int:
    space = Mapper(
        workload.einsum, design.arch, design.constraints
    ).mapspace_size_estimate()
    return (space + 3) // 4 + 8


class TestShardedEqualsSingleHost:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_sampled_with_witness_traffic(
        self, witness_design, witness_workload, shards
    ):
        job = SearchJob(witness_design, witness_workload)
        ref = _reference(make_evaluator(), job)
        outcome, stats = run_shards_local(make_evaluator(), job, shards)
        _assert_outcomes_identical(ref, outcome)
        assert stats["mode"] == "sampled"
        # The fixture is chosen to make witness bookkeeping real: a
        # zero here means the test silently stopped testing replay.
        assert stats["withheld"] > 0
        assert stats["rejected"] > 0

    @pytest.mark.parametrize("shards", [2, 4, 7])
    def test_exhaustive(self, exhaustive_design, exhaustive_workload, shards):
        budget = _exhaustive_budget(exhaustive_design, exhaustive_workload)
        job = SearchJob(exhaustive_design, exhaustive_workload)
        ref = _reference(make_evaluator(budget=budget), job)
        outcome, stats = run_shards_local(
            make_evaluator(budget=budget), job, shards
        )
        _assert_outcomes_identical(ref, outcome)
        assert stats["mode"] == "exhaustive"

    @pytest.mark.parametrize("shards", [2, 5])
    def test_explicit_candidates(
        self, witness_design, witness_workload, shards
    ):
        mapper = Mapper(
            witness_workload.einsum,
            witness_design.arch,
            witness_design.constraints,
        )
        candidates = list(mapper.sample_mappings(BUDGET, seed=11))
        job = SearchJob(
            witness_design, witness_workload, candidates=candidates
        )
        ref = _reference(make_evaluator(), job)
        outcome, stats = run_shards_local(make_evaluator(), job, shards)
        _assert_outcomes_identical(ref, outcome)
        assert stats["mode"] == "explicit"

    def test_more_shards_than_candidates(
        self, witness_design, witness_workload
    ):
        job = SearchJob(witness_design, witness_workload)
        ref = _reference(make_evaluator(budget=3), job)
        outcome, stats = run_shards_local(make_evaluator(budget=3), job, 16)
        _assert_outcomes_identical(ref, outcome)
        assert stats["shards"] <= stats["total"]


class TestWitnessExchangeDelivery:
    """Out-of-order, duplicated, and dropped snapshot delivery never
    changes the merged outcome — it only changes how much replay the
    shards get to skip."""

    def _collect_snapshots(self, job: SearchJob, shards: int) -> list[dict]:
        snaps: list[dict] = []

        def _grab(info) -> None:
            if isinstance(info, dict) and isinstance(
                info.get("snapshot"), dict
            ):
                snaps.append(info["snapshot"])

        run_shards_local(make_evaluator(), job, shards, progress=_grab)
        assert snaps, "fixture produced no snapshots to deliver"
        return snaps

    @pytest.mark.parametrize("trial", range(4))
    def test_scrambled_delivery_is_bit_identical(
        self, witness_design, witness_workload, trial
    ):
        shards = 3
        job = SearchJob(witness_design, witness_workload)
        ref = _reference(make_evaluator(), job)
        snaps = self._collect_snapshots(job, shards)

        rng = random.Random(trial)
        delivered = [s for s in snaps if rng.random() < 0.7]  # dropped
        if delivered:
            delivered += rng.sample(
                delivered, min(3, len(delivered))
            )  # duplicated
        rng.shuffle(delivered)  # out of order

        board = WitnessBoard()
        for snap in delivered:
            board.post(WitnessSnapshot.from_dict(snap))

        evaluator = make_evaluator()
        plan = plan_search(evaluator, job)
        results = []
        for spec in plan_shards(plan.total, shards):
            shard_job = SearchShardJob(
                design=job.design,
                workload=job.workload,
                objective=job.objective,
                search_id="delivery-test",
                shard_id=spec.shard_id,
                start=spec.start,
                stop=spec.stop,
                total=plan.total,
                mode=plan.mode,
                budget=plan.budget,
                seed=plan.seed,
                check_capacity=evaluator.check_capacity,
                prefilter=evaluator.prefilter_capacity,
            )
            results.append(run_shard(evaluator, shard_job, board=board))
        outcome = merge_shards(job.objective, results)
        _assert_outcomes_identical(ref, outcome)


class TestShardResultWire:
    def test_round_trip_preserves_frontier_and_results(
        self, witness_design, witness_workload
    ):
        evaluator = make_evaluator()
        job = SearchJob(witness_design, witness_workload)
        plan = plan_search(evaluator, job)
        spec = plan_shards(plan.total, 2)[0]
        shard_job = SearchShardJob(
            design=job.design,
            workload=job.workload,
            search_id="wire-test",
            shard_id=spec.shard_id,
            start=spec.start,
            stop=spec.stop,
            total=plan.total,
            mode=plan.mode,
            budget=plan.budget,
            seed=plan.seed,
        )
        result = run_shard(evaluator, shard_job)
        clone = SearchShardResult.from_dict(result.to_dict())
        assert clone.shard_id == result.shard_id
        assert (clone.start, clone.stop) == (result.start, result.stop)
        assert (clone.position_end, clone.index_end) == (
            result.position_end, result.index_end,
        )
        assert (clone.evaluated, clone.withheld, clone.rejected) == (
            result.evaluated, result.withheld, result.rejected,
        )
        assert clone.witnesses == result.witnesses
        assert frontier_key(clone.frontier) == frontier_key(result.frontier)
        # Full evaluation payloads reattach to their frontier points.
        for point in clone.frontier:
            original = next(
                p for p in result.frontier if p.index == point.index
            )
            assert (point.result is None) == (original.result is None)


class TestSessionShardedSurface:
    def test_session_shards_match_batched(
        self, witness_design, witness_workload
    ):
        with Session(search_budget=BUDGET) as session:
            ref = session.search(
                witness_design, witness_workload, strategy="batched"
            )
        with Session(search_budget=BUDGET) as session:
            sharded = session.search(
                witness_design, witness_workload, shards=3
            )
        assert sharded.best_score == ref.best_score
        assert sharded.best_index == ref.best_index
        assert sharded.strategy == ref.strategy == "batched"
        assert frontier_key(sharded.frontier) == frontier_key(ref.frontier)

    def test_budget_and_seed_overrides_apply(
        self, witness_design, witness_workload
    ):
        with Session(search_budget=BUDGET) as session:
            ref = session.search(witness_design, witness_workload)
            other = session.search(
                witness_design, witness_workload, budget=BUDGET + 8, seed=5
            )
            again = session.search(
                witness_design, witness_workload,
                budget=BUDGET + 8, seed=5, shards=2,
            )
        assert (ref.budget, ref.seed) == (BUDGET, 0)
        assert (other.budget, other.seed) == (BUDGET + 8, 5)
        assert (again.best_score, again.best_index) == (
            other.best_score, other.best_index,
        )

    def test_serial_strategy_shards_and_records_batched(
        self, witness_design, witness_workload
    ):
        with Session(search_budget=BUDGET) as session:
            result = session.search(
                witness_design, witness_workload,
                strategy="serial", shards=2,
            )
        assert result.strategy == "batched"

    def test_evolutionary_cannot_shard(
        self, witness_design, witness_workload
    ):
        with Session(search_budget=BUDGET) as session:
            with pytest.raises(SpecError, match="evolutionary"):
                session.search(
                    witness_design, witness_workload,
                    strategy="evolutionary", shards=2,
                )

    def test_progress_streams_incremental_state(
        self, witness_design, witness_workload
    ):
        frames: list[dict] = []
        with Session(search_budget=BUDGET) as session:
            result = session.search(
                witness_design, witness_workload,
                shards=2, on_progress=frames.append,
            )
        shard_frames = [
            f for f in frames
            if isinstance(f, dict) and "shard" in f and "event" not in f
        ]
        assert shard_frames
        assert {f["shard"] for f in shard_frames} == {0, 1}
        final_best = [
            f["best_score"] for f in shard_frames
            if f["best_score"] is not None
        ]
        assert result.best_score in final_best
