"""Daemon-backed distributed search: real ``repro serve --worker``
subprocesses, real sockets, injected faults.

These tests boot tiny local fleets (1-2 workers), so they are the
slowest in the distributed suite — but they are the only place the
whole stack runs together: CLI worker flag, serve protocol progress
and heartbeats, client liveness watchdog, coordinator reassignment,
and the non-resendable reconnect rule.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro import Session, Workload, matmul
from repro.api.jobs import EvaluateJob, SearchJob
from repro.common.errors import ReproError, WorkerLostError
from repro.distributed import LocalWorkerFleet, sharded_search
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.model.engine import Design, Evaluator
from repro.serve.client import RemoteSession

from .conftest import BUDGET, frontier_key, make_evaluator

pytestmark = pytest.mark.perf  # daemon-booting tests: slow but cheap


@pytest.fixture(scope="module")
def fleet():
    with LocalWorkerFleet(
        2, cold=True, extra_args=("--heartbeat-s", "0.2")
    ) as workers:
        yield workers


def _slow_job(budget: int = 20_000) -> tuple[Evaluator, SearchJob]:
    """A search long enough for mid-flight fault injection."""
    from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
    from repro.mapping.mapspace import MapspaceConstraints

    arch = Architecture(
        "fleet-slow",
        [
            StorageLevel(
                "DRAM", None, component="dram",
                read_bandwidth=8, write_bandwidth=8,
            ),
            StorageLevel(
                "Buffer", 4096, component="sram",
                read_bandwidth=16, write_bandwidth=16,
            ),
        ],
        ComputeLevel("MAC", instances=16),
    )
    design = Design(
        "fleet-slow", arch,
        constraints=MapspaceConstraints(spatial_dims={"Buffer": ["n", "m"]}),
    )
    workload = Workload.uniform(
        matmul(256, 256, 256), {"A": 0.3, "B": 0.3}
    )
    return (
        Evaluator(search_budget=budget, search_seed=7),
        SearchJob(design, workload, batch_size=64),
    )


class TestFleetIdentity:
    def test_two_workers_bit_identical(
        self, witness_design, witness_workload
    ):
        with Session(search_budget=BUDGET) as session:
            ref = session.search(
                witness_design, witness_workload, strategy="batched"
            )
        with Session(search_budget=BUDGET, workers=2) as session:
            sharded = session.search(
                witness_design, witness_workload, shards=2
            )
        assert sharded.best_score == ref.best_score
        assert sharded.best_index == ref.best_index
        assert frontier_key(sharded.frontier) == frontier_key(ref.frontier)

    def test_existing_fleet_addresses(
        self, fleet, witness_design, witness_workload
    ):
        job = SearchJob(witness_design, witness_workload)
        evaluator = make_evaluator()
        ref = evaluator._search_full(
            job.design, job.workload, strategy="batched"
        )
        outcome, stats = sharded_search(
            make_evaluator(), job, fleet.addresses, shards=2,
            worker_timeout=15.0,
        )
        assert outcome.best_score == ref.best_score
        assert outcome.best_index == ref.best_index
        assert frontier_key(outcome.frontier) == frontier_key(ref.frontier)
        assert stats["shards"] == 2


class TestFaultTolerance:
    def test_killed_worker_reassigns_and_stays_identical(self):
        evaluator, job = _slow_job()
        ref = evaluator._search_full(
            job.design, job.workload,
            batch_size=job.batch_size, strategy="batched",
        )
        with LocalWorkerFleet(2, cold=True) as fleet:
            killed = threading.Event()

            def _on_progress(info):
                if not isinstance(info, dict) or "event" in info:
                    return
                if info.get("shard") == 0 and not killed.is_set():
                    killed.set()
                    threading.Thread(target=fleet.kill, args=(0,)).start()

            outcome, stats = sharded_search(
                Evaluator(search_budget=20_000, search_seed=7),
                job, fleet.addresses, shards=2,
                progress=_on_progress, worker_timeout=15.0,
            )
        assert killed.is_set()
        assert outcome.best_score == ref.best_score
        assert outcome.best_index == ref.best_index
        assert frontier_key(outcome.frontier) == frontier_key(ref.frontier)

    def test_all_workers_dead_raises_worker_lost(
        self, witness_design, witness_workload
    ):
        with LocalWorkerFleet(1, cold=True) as fleet:
            addresses = list(fleet.addresses)
        # Fleet closed: the socket is gone before the search starts.
        job = SearchJob(witness_design, witness_workload)
        with pytest.raises(WorkerLostError):
            sharded_search(
                make_evaluator(), job, addresses, shards=2,
                worker_timeout=5.0,
            )


class TestHeartbeatLiveness:
    def test_silent_worker_raises_worker_lost_not_hang(self):
        evaluator, job = _slow_job(budget=40_000)
        with LocalWorkerFleet(
            1, cold=True, extra_args=("--heartbeat-s", "0.2")
        ) as fleet:
            session = RemoteSession(
                fleet.addresses[0], worker_timeout=2.0
            )
            handle = session.submit(job)
            fleet.suspend(0)
            with pytest.raises(WorkerLostError, match="presumed dead"):
                handle.result(timeout=30)
            fleet.resume(0)

    def test_heartbeats_keep_a_slow_quiet_job_alive(self, fleet):
        # One huge block => no substantive progress until the end; the
        # 0.2s heartbeats alone must carry liveness past the 2s window.
        evaluator, job = _slow_job()
        job = SearchJob(
            job.design, job.workload, batch_size=1_000_000,
            budget=20_000, seed=7,
        )
        ref = evaluator._search_full(
            job.design, job.workload, strategy="batched"
        )
        session = RemoteSession(fleet.addresses[0], worker_timeout=2.0)
        try:
            result = session.submit(job).result(timeout=120)
        finally:
            session.close()
        assert result.best_score == ref.best_score
        assert result.best_index == ref.best_index


class TestReconnectResendRules:
    def test_evaluate_jobs_resend_after_connection_drop(self, fleet):
        design, workload = _toy_point()
        session = RemoteSession(fleet.addresses[1])
        try:
            handle = session.submit(EvaluateJob(design, workload))
            # Sever the transport under the client; the daemon is
            # still alive, so the retried-once path must resend and
            # complete transparently.
            session._sock.shutdown(socket.SHUT_RDWR)
            result = handle.result(timeout=60)
        finally:
            session.close()
        assert result.cycles > 0

    def test_mapspace_search_is_not_silently_rerun(
        self, fleet, witness_design, witness_workload
    ):
        session = RemoteSession(fleet.addresses[1])
        try:
            handle = session.submit(
                SearchJob(witness_design, witness_workload)
            )
            session._sock.shutdown(socket.SHUT_RDWR)
            with pytest.raises(WorkerLostError, match="not silently re-run"):
                handle.result(timeout=60)
            # The session survives for explicit resubmission.
            retry = session.submit(
                SearchJob(witness_design, witness_workload)
            )
            assert retry.result(timeout=120).best_score is not None
        finally:
            session.close()

    def test_connection_loss_with_dead_daemon_still_raises(
        self, witness_design, witness_workload
    ):
        with LocalWorkerFleet(1, cold=True) as fleet:
            session = RemoteSession(fleet.addresses[0])
            handle = session.submit(
                SearchJob(witness_design, witness_workload)
            )
            fleet.kill(0)
            with pytest.raises((WorkerLostError, ReproError, OSError)):
                handle.result(timeout=60)
            session.close()


def _toy_point():
    from repro.arch.spec import Architecture, ComputeLevel, StorageLevel

    arch = Architecture(
        "fleet-toy",
        [
            StorageLevel("DRAM", None, component="dram"),
            StorageLevel("Buffer", 65536, component="sram"),
        ],
        ComputeLevel("MAC", instances=1),
    )
    mapping = Mapping(
        [
            LevelMapping("DRAM", []),
            LevelMapping(
                "Buffer", [Loop("m", 8), Loop("k", 8), Loop("n", 8)]
            ),
        ]
    )
    design = Design("fleet-toy", arch, mapping=mapping)
    workload = Workload.uniform(matmul(8, 8, 8), {"A": 0.5, "B": 0.5})
    return design, workload
