"""Tests for the micro-architecture step: validity, latency, energy."""

import math

import pytest

from repro import Workload, matmul
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.common.errors import ValidationError
from repro.dataflow import analyze_dataflow
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.micro.energy import compute_energy
from repro.micro.latency import compute_latency
from repro.micro.validity import check_validity
from repro.sparse.postprocess import analyze_sparse
from repro.sparse.saf import SAFSpec, gate_compute, skip_compute


def _pipeline(arch, densities, safs=SAFSpec(), loops=None):
    wl = Workload.uniform(matmul(8, 8, 8), densities)
    mapping = Mapping(
        [
            LevelMapping("DRAM", []),
            LevelMapping(
                "Buffer",
                loops or [Loop("m", 8), Loop("n", 8), Loop("k", 8)],
            ),
        ]
    )
    dense = analyze_dataflow(wl, arch, mapping)
    sparse = analyze_sparse(dense, safs)
    return dense, sparse


def _arch(buffer_words=65536, read_bw=None, write_bw=None, macs=1):
    return Architecture(
        "a",
        [
            StorageLevel("DRAM", None, component="dram"),
            StorageLevel(
                "Buffer",
                buffer_words,
                component="sram",
                read_bandwidth=read_bw,
                write_bandwidth=write_bw,
            ),
        ],
        ComputeLevel("MAC", instances=macs),
    )


class TestValidity:
    def test_fits(self):
        arch = _arch()
        dense, sparse = _pipeline(arch, {})
        usage = check_validity(arch, sparse)
        assert usage["Buffer"].fits
        # Buffer holds A, B, Z dense: 64 * 3.
        assert usage["Buffer"].used_words == pytest.approx(192)

    def test_overflow_raises(self):
        arch = _arch(buffer_words=100)
        dense, sparse = _pipeline(arch, {})
        with pytest.raises(ValidationError):
            check_validity(arch, sparse)

    def test_overflow_reported_when_not_raising(self):
        arch = _arch(buffer_words=100)
        dense, sparse = _pipeline(arch, {})
        usage = check_validity(arch, sparse, raise_on_invalid=False)
        assert not usage["Buffer"].fits
        assert usage["Buffer"].utilization > 1.0

    def test_unbounded_level_always_fits(self):
        arch = _arch()
        dense, sparse = _pipeline(arch, {})
        assert check_validity(arch, sparse)["DRAM"].fits


class TestLatency:
    def test_compute_bound(self):
        arch = _arch(macs=1)
        dense, sparse = _pipeline(arch, {})
        latency = compute_latency(arch, dense, sparse)
        assert latency.bottleneck == "MAC"
        assert latency.cycles == 512

    def test_parallelism_scales_compute(self):
        arch4 = Architecture(
            "a4",
            [StorageLevel("DRAM", None), StorageLevel("Buffer", 65536)],
            ComputeLevel("MAC", instances=4),
        )
        wl = Workload.uniform(matmul(8, 8, 8), {})
        mapping = Mapping(
            [
                LevelMapping("DRAM", []),
                LevelMapping(
                    "Buffer",
                    [Loop("m", 8), Loop("n", 2), Loop("k", 8)],
                    [Loop("n", 4)],
                ),
            ]
        )
        dense = analyze_dataflow(wl, arch4, mapping)
        sparse = analyze_sparse(dense, SAFSpec())
        latency = compute_latency(arch4, dense, sparse)
        assert latency.compute_cycles == 128

    def test_bandwidth_throttling(self):
        # Buffer must source 2 operand words per compute but has bw 1.
        arch = _arch(read_bw=1.0)
        dense, sparse = _pipeline(arch, {})
        latency = compute_latency(arch, dense, sparse)
        assert latency.bottleneck == "Buffer"
        assert latency.cycles > 512

    def test_skipping_reduces_cycles(self):
        arch = _arch()
        _d, dense_sparse = _pipeline(arch, {})
        _d, skip_sparse = _pipeline(
            arch, {"A": 0.25}, SAFSpec(compute_safs=[skip_compute(["A"])])
        )
        base = compute_latency(arch, _d, dense_sparse)
        skipped = compute_latency(arch, _d, skip_sparse)
        assert skipped.cycles < base.cycles

    def test_gating_does_not_reduce_cycles(self):
        arch = _arch()
        d1, dense_sparse = _pipeline(arch, {})
        d2, gated_sparse = _pipeline(
            arch, {"A": 0.25}, SAFSpec(compute_safs=[gate_compute()])
        )
        assert (
            compute_latency(arch, d2, gated_sparse).cycles
            == compute_latency(arch, d1, dense_sparse).cycles
        )

    def test_bandwidth_demand_reported(self):
        arch = _arch(read_bw=100.0)
        dense, sparse = _pipeline(arch, {})
        latency = compute_latency(arch, dense, sparse)
        assert latency.bandwidth_demand["Buffer"] > 0

    def test_utilization(self):
        arch = _arch(read_bw=1.0)
        dense, sparse = _pipeline(arch, {})
        latency = compute_latency(arch, dense, sparse)
        assert 0 < latency.utilization < 1


class TestEnergy:
    def test_gating_saves_energy(self):
        arch = _arch()
        d1, dense_sparse = _pipeline(arch, {})
        d2, gated_sparse = _pipeline(
            arch, {"A": 0.25}, SAFSpec(compute_safs=[gate_compute()])
        )
        dense_e = compute_energy(arch, dense_sparse)
        gated_e = compute_energy(arch, gated_sparse)
        assert gated_e.total_pj < dense_e.total_pj

    def test_per_component_sums_to_total(self):
        arch = _arch()
        _d, sparse = _pipeline(arch, {"A": 0.5})
        energy = compute_energy(arch, sparse)
        assert math.isclose(
            energy.total_pj, sum(energy.per_component.values())
        )

    def test_dram_dominates_for_streaming(self):
        arch = _arch()
        _d, sparse = _pipeline(arch, {})
        energy = compute_energy(arch, sparse)
        assert energy.component("DRAM") > energy.component("Buffer") * 0.01

    def test_compute_energy_counts_macs(self):
        arch = _arch()
        _d, sparse = _pipeline(arch, {})
        energy = compute_energy(arch, sparse)
        # 512 MACs at 2.2 pJ.
        assert energy.component("MAC") == pytest.approx(512 * 2.2)
