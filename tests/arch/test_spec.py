"""Unit tests for architecture specifications."""

import pytest

from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.common.errors import SpecError


def _arch():
    return Architecture(
        "a",
        [
            StorageLevel("DRAM", None),
            StorageLevel("GLB", 1024),
            StorageLevel("RF", 64, instances=16),
        ],
        ComputeLevel("MAC", instances=16),
    )


class TestStorageLevel:
    def test_defaults(self):
        level = StorageLevel("L")
        assert level.word_bits == 16
        assert level.multicast

    def test_rejects_bad_instances(self):
        with pytest.raises(SpecError):
            StorageLevel("L", instances=0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(SpecError):
            StorageLevel("L", capacity_words=-1)

    def test_rejects_bad_word_bits(self):
        with pytest.raises(SpecError):
            StorageLevel("L", word_bits=0)


class TestArchitecture:
    def test_level_lookup(self):
        assert _arch().level("GLB").capacity_words == 1024

    def test_unknown_level(self):
        with pytest.raises(SpecError):
            _arch().level("L2")

    def test_level_index_counts_from_inner(self):
        arch = _arch()
        assert arch.level_index("RF") == 0
        assert arch.level_index("GLB") == 1
        assert arch.level_index("DRAM") == 2

    def test_inner_to_outer(self):
        names = [l.name for l in _arch().inner_to_outer()]
        assert names == ["RF", "GLB", "DRAM"]

    def test_rejects_duplicate_names(self):
        with pytest.raises(SpecError):
            Architecture(
                "a",
                [StorageLevel("L"), StorageLevel("L")],
                ComputeLevel(),
            )

    def test_rejects_compute_name_collision(self):
        with pytest.raises(SpecError):
            Architecture(
                "a", [StorageLevel("MAC")], ComputeLevel("MAC")
            )

    def test_rejects_empty_levels(self):
        with pytest.raises(SpecError):
            Architecture("a", [], ComputeLevel())

    def test_describe(self):
        text = _arch().describe()
        assert "DRAM" in text and "x16" in text
