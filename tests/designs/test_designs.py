"""Qualitative invariants of the prebuilt designs.

Each test pins one of the paper's headline behaviours: gating saves
energy but not time (Eyeriss, bitmask), skipping saves both (SCNN,
coordinate list), STC gets exactly 2x at 2:4, naive STC extensions hit
the SMEM bandwidth wall, and the co-design combinations cross over with
density.
"""

import pytest

from repro import Evaluator, Workload, matmul
from repro.designs import codesign, dstc, eyeriss, eyeriss_v2, scnn, stc, toy
from repro.designs.common import conv_as_gemm, split_factor
from repro.sparse.density import FixedStructuredDensity, UniformDensity
from repro.workload.nets import alexnet, mobilenet_v1, resnet50

ev = Evaluator()


def _mm(density_a, density_b, shape=(256, 256, 256)):
    return Workload.uniform(
        matmul(*shape), {"A": density_a, "B": density_b}
    )


class TestCommonHelpers:
    def test_split_factor_divides(self):
        for bound in (1, 7, 12, 784, 1024):
            outer, inner = split_factor(bound, 16)
            assert outer * inner == bound
            assert inner <= 16

    def test_conv_as_gemm_preserves_macs(self):
        layer = alexnet()[2]
        gemm = conv_as_gemm(layer)
        assert gemm.total_operations == layer.spec.total_operations

    def test_conv_as_gemm_passthrough(self):
        from repro.workload.nets import NetLayer

        layer = NetLayer("fc", matmul(4, 4, 4))
        assert conv_as_gemm(layer) is layer.spec


class TestToyDesigns:
    def test_bitmask_saves_energy_not_time(self):
        wl = _mm(0.2, 0.2)
        dense = ev.evaluate(toy.dense_design(), wl)
        bm = ev.evaluate(toy.bitmask_design(), wl)
        assert bm.cycles == dense.cycles
        assert bm.energy_pj < dense.energy_pj

    def test_coordlist_saves_energy_and_time(self):
        wl = _mm(0.2, 0.2)
        dense = ev.evaluate(toy.dense_design(), wl)
        cl = ev.evaluate(toy.coordinate_list_design(), wl)
        assert cl.cycles < dense.cycles
        assert cl.energy_pj < dense.energy_pj

    def test_fig1_crossover(self):
        """Coordinate list loses its edge as density rises."""
        sparse_wl = _mm(0.1, 0.1)
        dense_wl = _mm(1.0, 1.0)
        cl, bm = toy.coordinate_list_design(), toy.bitmask_design()
        sparse_ratio = (
            ev.evaluate(cl, sparse_wl).energy_pj
            / ev.evaluate(bm, sparse_wl).energy_pj
        )
        dense_ratio = (
            ev.evaluate(cl, dense_wl).energy_pj
            / ev.evaluate(bm, dense_wl).energy_pj
        )
        assert sparse_ratio < 1.0 < dense_ratio


class TestEyeriss:
    def test_gating_keeps_cycles(self):
        layer = alexnet()[2]
        wl = Workload.uniform(layer.spec, {"I": 0.5})
        gated = ev.evaluate(eyeriss.eyeriss_design(), wl)
        dense = ev.evaluate(eyeriss.dense_eyeriss_design(), wl)
        assert gated.cycles == pytest.approx(dense.cycles, rel=0.05)
        assert gated.energy_pj < dense.energy_pj

    def test_rle_compression_rate_reasonable(self):
        layer = alexnet()[0]
        wl = Workload.uniform(layer.spec, {"I": 0.65})
        result = ev.evaluate(eyeriss.eyeriss_design(), wl)
        rate = result.compression_rate("DRAM", "I")
        assert 1.0 < rate < 3.0

    def test_all_alexnet_layers_evaluate(self):
        design = eyeriss.eyeriss_design()
        for layer in alexnet()[:5]:
            wl = Workload.uniform(layer.spec, {"I": 0.6}, name=layer.name)
            result = ev.evaluate(design, wl)
            assert result.cycles > 0


class TestEyerissV2:
    def test_skipping_speeds_up_pe(self):
        layer = mobilenet_v1()[3]
        wl = Workload.uniform(layer.spec, {"I": 0.55, "W": 0.4})
        sparse = ev.evaluate(eyeriss_v2.eyeriss_v2_pe_design(), wl)
        dense = ev.evaluate(eyeriss_v2.dense_pe_design(), wl)
        assert sparse.cycles < dense.cycles

    def test_depthwise_layers_supported(self):
        design = eyeriss_v2.eyeriss_v2_pe_design()
        dw = next(l for l in mobilenet_v1() if l.name.startswith("dw"))
        wl = Workload.uniform(dw.spec, {"I": 0.5, "W": 0.5})
        assert ev.evaluate(design, wl).cycles > 0


class TestSCNN:
    def test_cartesian_product_skips_both_sides(self):
        layer = alexnet()[2]
        wl = Workload.uniform(layer.spec, {"I": 0.4, "W": 0.3})
        result = ev.evaluate(scnn.scnn_design(), wl)
        assert result.actual_computes == pytest.approx(
            layer.spec.total_operations * 0.4 * 0.3, rel=1e-6
        )

    def test_sparse_beats_dense_design(self):
        layer = alexnet()[2]
        wl = Workload.uniform(layer.spec, {"I": 0.4, "W": 0.3})
        sparse = ev.evaluate(scnn.scnn_design(), wl)
        dense = ev.evaluate(scnn.dense_scnn_design(), wl)
        assert sparse.cycles < dense.cycles
        assert sparse.energy_pj < dense.energy_pj


def _tc_workload(weight_model, input_density=0.65):
    layer = resnet50()[10]
    gemm = conv_as_gemm(layer)
    return Workload(
        gemm,
        {
            "A": weight_model,
            "B": UniformDensity(input_density, gemm.tensor_size("B")),
        },
        name=layer.name,
    )


class TestSTC:
    def test_exact_2x_at_2to4(self):
        """Sec 6.3.5: structured sparsity gives a deterministic 2x."""
        wl = _tc_workload(FixedStructuredDensity(2, 4))
        dense_wl = _tc_workload(UniformDensity(1.0, 1))
        stc_r = ev.evaluate(stc.stc_design(), wl)
        dense_r = ev.evaluate(dstc.dense_tensor_core_design(), dense_wl)
        assert dense_r.cycles / stc_r.cycles == pytest.approx(2.0, rel=1e-6)

    def test_flexible_hits_bandwidth_wall(self):
        """Sec 7.1.3: 2:8 should be 4x but SMEM throttles it."""
        wl = _tc_workload(FixedStructuredDensity(2, 8))
        result = ev.evaluate(stc.stc_flexible_design(8), wl)
        assert result.latency.bottleneck == "SMEM"
        dense_r = ev.evaluate(
            dstc.dense_tensor_core_design(), _tc_workload(UniformDensity(1.0, 1))
        )
        speedup = dense_r.cycles / result.cycles
        assert speedup < 3.0  # well short of the theoretical 4x

    def test_dual_compression_recovers_speed(self):
        """Sec 7.1.4: compressing inputs restores most of the speedup."""
        wl = _tc_workload(FixedStructuredDensity(2, 8))
        flexible = ev.evaluate(stc.stc_flexible_design(8), wl)
        dual = ev.evaluate(stc.stc_flexible_rle_dualcompress_design(), wl)
        assert dual.cycles < flexible.cycles
        assert dual.energy_pj < flexible.energy_pj


class TestDSTC:
    def test_exploits_both_sides(self):
        wl = _tc_workload(UniformDensity(0.5, resnet50()[10].spec.total_operations))
        r = ev.evaluate(dstc.dstc_design(), wl)
        dense_r = ev.evaluate(
            dstc.dense_tensor_core_design(), _tc_workload(UniformDensity(1.0, 1))
        )
        # Dual-side skipping: fewer cycles than weight-only 2x.
        assert dense_r.cycles / r.cycles > 2.0

    def test_higher_energy_than_stc_when_dense(self):
        """Fig. 15: DSTC's streaming dataflow costs energy at density 1."""
        dense_wl = _tc_workload(UniformDensity(1.0, 1))
        dstc_r = ev.evaluate(dstc.dstc_design(), dense_wl)
        stc_r = ev.evaluate(stc.stc_design(), dense_wl)
        assert dstc_r.energy_pj > stc_r.energy_pj


class TestCodesign:
    def test_all_combinations_evaluate(self):
        wl = Workload.uniform(matmul(512, 512, 512), {"A": 0.01, "B": 0.01})
        for df, saf in codesign.ALL_COMBINATIONS:
            r = ev.evaluate(codesign.build_design(df, saf), wl)
            assert r.cycles > 0

    def test_hierarchical_helps_streamed_b_when_sparse(self):
        wl = Workload.uniform(matmul(512, 512, 512), {"A": 0.01, "B": 0.01})
        inner = ev.evaluate(
            codesign.build_design("ReuseAZ", "InnermostSkip"), wl
        )
        hier = ev.evaluate(
            codesign.build_design("ReuseAZ", "HierarchicalSkip"), wl
        )
        assert hier.edp < inner.edp

    def test_best_design_depends_on_density(self):
        """The paper's headline: no single best design."""
        def best(density):
            results = {}
            wl = Workload.uniform(
                matmul(1024, 1024, 1024), {"A": density, "B": density}
            )
            for df, saf in codesign.ALL_COMBINATIONS:
                r = ev.evaluate(codesign.build_design(df, saf), wl)
                results[f"{df}.{saf}"] = r.edp
            return min(results, key=results.get)

        assert best(0.3) != best(0.001)

    def test_reuse_abz_hierarchical_never_best(self):
        for density in (1e-4, 1e-2, 0.3):
            wl = Workload.uniform(
                matmul(512, 512, 512), {"A": density, "B": density}
            )
            edps = {}
            for df, saf in codesign.ALL_COMBINATIONS:
                r = ev.evaluate(codesign.build_design(df, saf), wl)
                edps[(df, saf)] = r.edp
            best = min(edps, key=edps.get)
            assert best != ("ReuseABZ", "HierarchicalSkip")
