"""Fast-path engine cross-checks.

The optimizations must be behaviour-preserving: every test here runs
the same evaluation through two configurations (cached vs uncached,
prefilter on vs off, parallel vs serial) and requires *identical*
numbers — the fast path may only change how fast answers arrive, never
the answers.
"""

from __future__ import annotations

import pytest

from repro import Design, Evaluator, SAFSpec, Workload, matmul
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.common.cache import AnalysisCache
from repro.common.errors import ValidationError
from repro.dataflow.nest_analysis import dense_analysis_key
from repro.designs import codesign
from repro.mapping.mapspace import Mapper, MapspaceConstraints
from repro.model.engine import DenseAnalysisCache
from repro.sparse.formats import CoordinatePayload, FormatRank, FormatSpec
from repro.sparse.saf import SAFKind, double_sided, gate_compute, skip_compute


def dse_arch() -> Architecture:
    return Architecture(
        "dse",
        [
            StorageLevel("DRAM", None, component="dram",
                         read_bandwidth=8, write_bandwidth=8),
            StorageLevel("Buffer", 16 * 1024, component="sram",
                         read_bandwidth=8, write_bandwidth=8),
        ],
        ComputeLevel("MAC", instances=16),
    )


def dse_saf_variants() -> list[SAFSpec]:
    cp2 = FormatSpec(
        [FormatRank(CoordinatePayload()), FormatRank(CoordinatePayload())]
    )
    return [
        SAFSpec(),
        SAFSpec(
            formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2},
            compute_safs=[gate_compute()],
        ),
        SAFSpec(
            formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2},
            storage_safs=double_sided(SAFKind.SKIP, "A", "B", "Buffer"),
            compute_safs=[skip_compute()],
        ),
    ]


def dse_workload() -> Workload:
    return Workload.uniform(matmul(64, 64, 64), {"A": 0.2, "B": 0.2})


CONSTRAINTS = MapspaceConstraints(spatial_dims={"Buffer": ["n", "m"]})


def assert_results_equal(a, b) -> None:
    assert a.cycles == b.cycles
    assert a.energy_pj == b.energy_pj
    assert a.edp == b.edp
    assert a.sparse.compute.actual == b.sparse.compute.actual
    assert a.dense.mapping.cache_key() == b.dense.mapping.cache_key()
    for key, record in a.dense.traffic.items():
        other = b.dense.traffic[key]
        assert record.reads == other.reads
        assert record.writes == other.writes


class TestDenseAnalysisCache:
    def test_hit_reuses_analysis_across_saf_variants(self):
        evaluator = Evaluator(search_budget=12)
        cache = evaluator.dense_cache
        workload = dse_workload()
        arch = dse_arch()
        mapping = None
        for index, safs in enumerate(dse_saf_variants()):
            design = Design(f"d{index}", arch, safs, constraints=CONSTRAINTS)
            result = evaluator.search_mappings(design, workload)
            assert result is not None
            mapping = result.dense.mapping
        # Variants 2 and 3 re-walk the exact candidate list of variant 1.
        assert cache.hits > 0
        assert cache.hit_rate > 0.5
        key = dense_analysis_key(workload, arch, mapping)
        assert isinstance(hash(key), int)

    def test_cached_equals_uncached(self):
        workload = dse_workload()
        arch = dse_arch()
        for index, safs in enumerate(dse_saf_variants()):
            design = Design(f"d{index}", arch, safs, constraints=CONSTRAINTS)
            cold = Evaluator(cache=None, search_budget=12)
            warm = Evaluator(search_budget=12)
            # Evaluate twice with the warm evaluator so the second pass
            # is served from the cache, then compare all three.
            uncached = cold.search_mappings(design, workload)
            first = warm.search_mappings(design, workload)
            second = warm.search_mappings(design, Workload.uniform(
                matmul(64, 64, 64), {"A": 0.2, "B": 0.2}
            ))
            assert warm.dense_cache.hits > 0
            assert_results_equal(uncached, first)
            assert_results_equal(uncached, second)

    def test_hit_rebinds_new_workload(self):
        """A cache hit for a different workload object (same einsum,
        different densities) must use the *new* densities."""
        design = codesign.build_design("ReuseAZ", "InnermostSkip")
        evaluator = Evaluator()
        sparse_wl = Workload.uniform(
            matmul(128, 128, 128), {"A": 0.01, "B": 0.01}
        )
        dense_wl = Workload.uniform(
            matmul(128, 128, 128), {"A": 0.3, "B": 0.3}
        )
        first = evaluator.evaluate(design, sparse_wl)
        second = evaluator.evaluate(design, dense_wl)
        assert evaluator.dense_cache.hits >= 1
        cold = Evaluator(cache=None)
        assert_results_equal(second, cold.evaluate(design, dense_wl))
        # Sparser workload must do strictly less effectual compute.
        assert first.sparse.compute.actual < second.sparse.compute.actual

    def test_eviction_respects_maxsize(self):
        analysis_cache = AnalysisCache(stage_sizes={"dense": 2})
        evaluator = Evaluator(cache=analysis_cache)
        cache = analysis_cache.dense
        design = codesign.build_design("ReuseABZ", "InnermostSkip")
        for m in (64, 128, 256):
            wl = Workload.uniform(matmul(m, 64, 64), {"A": 0.1, "B": 0.1})
            evaluator.evaluate(design, wl)
        assert len(cache) == 2
        assert cache.misses == 3

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            DenseAnalysisCache(maxsize=0)


class TestCapacityPrefilter:
    def test_prefilter_never_changes_search_result(self):
        workload = dse_workload()
        design = Design(
            "d", dse_arch(), dse_saf_variants()[2], constraints=CONSTRAINTS
        )
        fast = Evaluator(search_budget=12, prefilter_capacity=True)
        slow = Evaluator(search_budget=12, prefilter_capacity=False)
        assert_results_equal(
            fast.search_mappings(design, workload),
            slow.search_mappings(design, workload),
        )

    def test_rejected_candidates_would_fail_validity(self):
        """The prefilter is conservative: anything it rejects must also
        be rejected by the full validity check."""
        # 128^3 tensors are 16K words each — three of them cannot fit
        # the 16K-word buffer, so unbalanced tilings must be rejected.
        workload = Workload.uniform(
            matmul(128, 128, 128), {"A": 0.2, "B": 0.2}
        )
        design = Design("d", dse_arch(), SAFSpec(), constraints=CONSTRAINTS)
        evaluator = Evaluator()
        mapper = Mapper(workload.einsum, design.arch, CONSTRAINTS)
        rejected = 0
        for mapping in mapper.sample_mappings(40, seed=7):
            if evaluator._passes_capacity_prefilter(design, workload, mapping):
                continue
            rejected += 1
            with pytest.raises(ValidationError):
                evaluator._evaluate_mapping(design, workload, mapping)
        # The sample must contain rejections for this test to mean
        # anything.
        assert rejected > 0


class TestParallelSearch:
    def test_parallel_matches_serial(self):
        workload = dse_workload()
        design = Design(
            "d", dse_arch(), dse_saf_variants()[1], constraints=CONSTRAINTS
        )
        serial = Evaluator(search_budget=16).search_mappings(design, workload)
        parallel = Evaluator(search_budget=16).search_mappings(
            design, workload, parallel=2
        )
        assert_results_equal(serial, parallel)

    def test_parallel_single_candidate_falls_back(self):
        workload = dse_workload()
        design = Design("d", dse_arch(), SAFSpec(), constraints=CONSTRAINTS)
        mapper = Mapper(workload.einsum, design.arch, CONSTRAINTS)
        candidates = list(mapper.sample_mappings(1, seed=3))
        result = Evaluator().search_mappings(
            design, workload, candidates=candidates, parallel=4
        )
        expected = Evaluator().search_mappings(
            design, workload, candidates=candidates
        )
        if expected is None:
            assert result is None
        else:
            assert_results_equal(result, expected)


class TestEvaluateMany:
    def jobs(self):
        jobs = []
        for density in (0.01, 0.3):
            wl = Workload.uniform(
                matmul(128, 128, 128), {"A": density, "B": density}
            )
            for dataflow, saf in codesign.ALL_COMBINATIONS:
                jobs.append((codesign.build_design(dataflow, saf), wl))
        return jobs

    def test_matches_individual_evaluate(self):
        jobs = self.jobs()
        batch = Evaluator().evaluate_many(jobs)
        reference = Evaluator(cache=None)
        for job, result in zip(jobs, batch):
            assert_results_equal(result, reference.evaluate(*job))

    def test_parallel_matches_serial_in_order(self):
        jobs = self.jobs()
        serial = Evaluator().evaluate_many(jobs)
        parallel = Evaluator().evaluate_many(jobs, parallel=3)
        assert len(serial) == len(parallel) == len(jobs)
        for a, b in zip(serial, parallel):
            assert a.design_name == b.design_name
            assert_results_equal(a, b)

    def test_empty_batch(self):
        assert Evaluator().evaluate_many([]) == []


class TestCacheKeys:
    def test_mapping_key_reflects_content(self):
        arch = dse_arch()
        workload = dse_workload()
        mapper = Mapper(workload.einsum, arch, CONSTRAINTS)
        maps = list(mapper.sample_mappings(6, seed=0))
        keys = {m.cache_key() for m in maps}
        # Distinct schedules map to distinct keys...
        assert len(keys) == len(maps)
        # ...and re-deriving the same schedule reproduces its key.
        again = list(
            Mapper(workload.einsum, arch, CONSTRAINTS).sample_mappings(
                6, seed=0
            )
        )
        assert [m.cache_key() for m in again] == [m.cache_key() for m in maps]

    def test_arch_key_changes_with_capacity(self):
        a = dse_arch()
        b = dse_arch()
        # Mutation happens *before* first keying: architectures are
        # frozen by contract once keyed (the key is memoised, like
        # SAFSpec's), so content changes must be fresh objects.
        b.levels[1].capacity_words = 999
        assert a.cache_key() == dse_arch().cache_key()
        assert a.cache_key() != b.cache_key()
        # The memo returns the identical tuple on repeat calls.
        assert a.cache_key() is a.cache_key()

    def test_einsum_key_changes_with_bounds(self):
        assert (
            matmul(8, 8, 8).cache_key() == matmul(8, 8, 8).cache_key()
        )
        assert matmul(8, 8, 8).cache_key() != matmul(8, 8, 16).cache_key()
