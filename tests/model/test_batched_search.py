"""Cross-candidate batched mapspace search: equivalence and feedback.

The batched strategy must return a **bit-identical** winner — same
objective score, same candidate-stream index, same result — as the
serial per-candidate oracle scan, across sampled and exhaustive paths,
with warm and cold caches, because it is the default search path. The
suite also covers the ``"candidates"`` memo stage (sampled streams
replayed across searches) and overflow-witness bookkeeping across
search blocks.
"""

from __future__ import annotations

import pytest

from repro import Design, SAFSpec, Session, Workload, matmul
from repro.api.jobs import SearchJob
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.common.cache import AnalysisCache
from repro.common.errors import SpecError
from repro.mapping.mapspace import (
    CANDIDATES_STAGE,
    Mapper,
    MapspaceConstraints,
    sampled_candidates_key,
)
from repro.model.engine import Evaluator
from repro.sparse.formats import CoordinatePayload, FormatRank, FormatSpec
from repro.sparse.saf import SAFKind, double_sided, gate_compute, skip_compute

BUDGET = 24


def _arch(buffer_words=16 * 1024, macs=16) -> Architecture:
    return Architecture(
        "batched-search",
        [
            StorageLevel("DRAM", None, component="dram",
                         read_bandwidth=8, write_bandwidth=8),
            StorageLevel("Buffer", buffer_words, component="sram",
                         read_bandwidth=8, write_bandwidth=8),
        ],
        ComputeLevel("MAC", instances=macs),
    )


def _saf_variants() -> list[SAFSpec]:
    cp2 = FormatSpec(
        [FormatRank(CoordinatePayload()), FormatRank(CoordinatePayload())]
    )
    return [
        SAFSpec(),
        SAFSpec(
            formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2},
            compute_safs=[gate_compute()],
        ),
        SAFSpec(
            formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2},
            storage_safs=double_sided(SAFKind.SKIP, "A", "B", "Buffer"),
            compute_safs=[skip_compute()],
        ),
    ]


def _sampled_cases():
    """Constraint-driven designs whose mapspace forces the sampled
    path (size estimate far above ``4 * budget``)."""
    arch = _arch()
    constraints = MapspaceConstraints(spatial_dims={"Buffer": ["n", "m"]})
    workload = Workload.uniform(matmul(128, 128, 128), {"A": 0.2, "B": 0.2})
    return [
        (Design(f"s{i}", arch, safs, constraints=constraints), workload)
        for i, safs in enumerate(_saf_variants())
    ]


def _exhaustive_case():
    """A tiny, overflow-heavy mapspace that takes the exhaustive path
    and exercises witness subtree pruning (4096-word tensors against a
    1024-word buffer)."""
    arch = _arch(buffer_words=1024, macs=1)
    workload = Workload.uniform(matmul(64, 64, 64), {"A": 0.9, "B": 0.9})
    design = Design(
        "exhaustive", arch, SAFSpec(), constraints=MapspaceConstraints()
    )
    return design, workload


def _winner_tuple(evaluator, design, workload, strategy, **kwargs):
    result = evaluator._search_mappings(
        design, workload, strategy=strategy, **kwargs
    )
    assert result is not None
    return (
        result.cycles,
        result.energy_pj,
        result.edp,
        result.dense.mapping.cache_key(),
    )


class TestBatchedEqualsSerial:
    @pytest.mark.parametrize("case_index", range(3))
    def test_sampled_path_cold_cache(self, case_index):
        design, workload = _sampled_cases()[case_index]
        serial = _winner_tuple(
            Evaluator(search_budget=BUDGET), design, workload, "serial"
        )
        batched = _winner_tuple(
            Evaluator(search_budget=BUDGET), design, workload, "batched"
        )
        assert serial == batched

    def test_sampled_path_warm_cache(self):
        """Second search on the same evaluator (sparse/micro stages and
        the candidates memo warm) picks the identical winner."""
        design, workload = _sampled_cases()[1]
        serial_eval = Evaluator(search_budget=BUDGET)
        batched_eval = Evaluator(search_budget=BUDGET)
        for _ in range(2):
            serial = _winner_tuple(serial_eval, design, workload, "serial")
            batched = _winner_tuple(batched_eval, design, workload, "batched")
            assert serial == batched

    def test_exhaustive_path_with_witness_feedback(self):
        design, workload = _exhaustive_case()
        serial = _winner_tuple(
            Evaluator(search_budget=BUDGET), design, workload, "serial"
        )
        batched = _winner_tuple(
            Evaluator(search_budget=BUDGET), design, workload, "batched"
        )
        assert serial == batched

    def test_score_and_index_identical_on_replayed_stream(self):
        """The low-level scans agree on the full (score, index) winner
        tuple — the tie-break contract — for every block size,
        including blocks that straddle witness registrations."""
        design, workload = _sampled_cases()[2]
        einsum, arch = workload.einsum, design.arch

        serial_eval = Evaluator(search_budget=BUDGET)
        serial_mapper = Mapper(einsum, arch, design.constraints)
        serial = serial_eval._search_candidates(
            design,
            workload,
            serial_mapper.sample_mappings(BUDGET, seed=0),
            None,
            mapper=serial_mapper,
        )
        assert serial is not None

        stream = list(
            Mapper(einsum, arch, design.constraints).sample_mappings(
                BUDGET, seed=0
            )
        )
        for batch_size in (2, 5, 7, 64):
            mapper = Mapper(einsum, arch, design.constraints)
            batched = Evaluator(
                search_budget=BUDGET
            )._search_candidates_batched(
                design,
                workload,
                stream,
                None,
                mapper=mapper,
                batch_size=batch_size,
                replayed=True,
            )
            assert batched is not None
            assert batched[0] == serial[0]
            assert batched[1] == serial[1]
            assert batched[2].cycles == serial[2].cycles
            assert batched[2].energy_pj == serial[2].energy_pj

    def test_exhaustive_score_and_index_identical(self):
        design, workload = _exhaustive_case()
        einsum, arch = workload.einsum, design.arch

        serial_mapper = Mapper(einsum, arch, design.constraints)
        serial = Evaluator(search_budget=BUDGET)._search_candidates(
            design,
            workload,
            serial_mapper.enumerate_mappings(),
            None,
            mapper=serial_mapper,
        )
        batched_mapper = Mapper(einsum, arch, design.constraints)
        batched = Evaluator(
            search_budget=BUDGET
        )._search_candidates_batched(
            design,
            workload,
            batched_mapper.enumerate_mappings(),
            None,
            mapper=batched_mapper,
            batch_size=4,
        )
        assert serial is not None and batched is not None
        assert batched[:2] == serial[:2]
        assert batched[2].edp == serial[2].edp

    def test_cache_disabled(self):
        design, workload = _sampled_cases()[0]
        serial = _winner_tuple(
            Evaluator(search_budget=BUDGET, cache=None),
            design, workload, "serial",
        )
        batched = _winner_tuple(
            Evaluator(search_budget=BUDGET, cache=None),
            design, workload, "batched",
        )
        assert serial == batched

    def test_scalar_oracle_backend(self):
        """The batched strategy keeps its block structure under the
        forced scalar sparse backend (the stacked flush degenerates to
        per-candidate scalar arithmetic) — and still agrees with both
        the vectorized batched scan and the scalar serial oracle."""
        design, workload = _sampled_cases()[0]
        scalar_batched_eval = Evaluator(
            search_budget=BUDGET, sparse_vectorized=False
        )
        scalar = _winner_tuple(
            scalar_batched_eval, design, workload, "batched"
        )
        # The candidate memo is backend-independent.
        assert len(scalar_batched_eval.cache.stage(CANDIDATES_STAGE)) == 1
        vectorized = _winner_tuple(
            Evaluator(search_budget=BUDGET),
            design, workload, "batched",
        )
        serial_scalar = _winner_tuple(
            Evaluator(search_budget=BUDGET, sparse_vectorized=False),
            design, workload, "serial",
        )
        assert scalar == vectorized == serial_scalar

    def test_explicit_candidates(self):
        design, workload = _sampled_cases()[0]
        stream = list(
            Mapper(
                workload.einsum, design.arch, design.constraints
            ).sample_mappings(BUDGET, seed=3)
        )
        serial = _winner_tuple(
            Evaluator(), design, workload, "serial", candidates=list(stream)
        )
        batched = _winner_tuple(
            Evaluator(), design, workload, "batched", candidates=list(stream)
        )
        assert serial == batched

    def test_parallel_chunks_match_serial(self):
        design, workload = _sampled_cases()[0]
        serial = _winner_tuple(
            Evaluator(search_budget=BUDGET), design, workload, "serial"
        )
        parallel = _winner_tuple(
            Evaluator(search_budget=BUDGET),
            design, workload, "batched", parallel=2,
        )
        assert serial == parallel

    def test_unknown_strategy_rejected(self):
        design, workload = _sampled_cases()[0]
        with pytest.raises(SpecError):
            Evaluator()._search_mappings(
                design, workload, strategy="genetic"
            )


class TestCandidatesMemo:
    def test_stream_replayed_across_searches(self):
        """Three SAF variants share one mapspace: the first search pays
        the sampling, the other two replay the memoised stream."""
        cases = _sampled_cases()
        evaluator = Evaluator(search_budget=BUDGET)
        for design, workload in cases:
            evaluator._search_mappings(design, workload)
        stage = evaluator.cache.stage(CANDIDATES_STAGE)
        stats = stage.stats()
        assert stats["entries"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == len(cases) - 1

    def test_key_separates_seed_budget_and_constraints(self):
        design, workload = _sampled_cases()[0]
        base = sampled_candidates_key(
            workload.einsum, design.arch, design.constraints, 0, BUDGET
        )
        assert base == sampled_candidates_key(
            workload.einsum,
            design.arch,
            MapspaceConstraints(spatial_dims={"Buffer": ["n", "m"]}),
            0,
            BUDGET,
        )
        assert base != sampled_candidates_key(
            workload.einsum, design.arch, design.constraints, 1, BUDGET
        )
        assert base != sampled_candidates_key(
            workload.einsum, design.arch, design.constraints, 0, BUDGET + 1
        )
        assert base != sampled_candidates_key(
            workload.einsum,
            design.arch,
            MapspaceConstraints(spatial_dims={"Buffer": ["n"]}),
            0,
            BUDGET,
        )

    def test_replayed_stream_matches_fresh_draw(self):
        design, workload = _sampled_cases()[0]
        evaluator = Evaluator(search_budget=BUDGET)
        mapper = Mapper(workload.einsum, design.arch, design.constraints)
        stream = evaluator._sampled_candidates(design, workload, mapper)
        fresh = list(
            Mapper(
                workload.einsum, design.arch, design.constraints
            ).sample_mappings(BUDGET, seed=0)
        )
        assert [m.cache_key() for m in stream] == [
            m.cache_key() for m in fresh
        ]
        # A second request replays the identical list object.
        again = evaluator._sampled_candidates(
            design, workload,
            Mapper(workload.einsum, design.arch, design.constraints),
        )
        assert again is stream

    def test_batch_size_one_keeps_the_memo(self):
        """`batch_size` tunes the block size only; shrinking it to 1
        must not silently fall back to the serial scan and lose the
        candidates-stage replay (regression)."""
        design, workload = _sampled_cases()[0]
        evaluator = Evaluator(search_budget=BUDGET)
        tiny = evaluator._search_mappings(design, workload, batch_size=1)
        assert len(evaluator.cache.stage(CANDIDATES_STAGE)) == 1
        serial = Evaluator(search_budget=BUDGET)._search_mappings(
            design, workload, strategy="serial"
        )
        assert tiny.cycles == serial.cycles
        assert tiny.energy_pj == serial.energy_pj

    def test_in_block_duplicates_count_as_serial_hits(self):
        """A candidate repeated inside one block is computed once and
        accounted exactly as the serial compute-then-hit sequence: one
        sparse-stage miss, one hit (regression: both used to count as
        misses)."""
        design, workload = _sampled_cases()[0]
        stream = list(
            Mapper(
                workload.einsum, design.arch, design.constraints
            ).sample_mappings(4, seed=0)
        )
        doubled = stream + stream  # every candidate appears twice

        batched_eval = Evaluator(search_budget=BUDGET)
        batched_eval._search_mappings(
            design, workload, candidates=list(doubled), batch_size=64
        )
        serial_eval = Evaluator(search_budget=BUDGET)
        serial_eval._search_mappings(
            design, workload, candidates=list(doubled), strategy="serial"
        )
        assert (
            batched_eval.cache.sparse.stats()
            == serial_eval.cache.sparse.stats()
        )

    def test_disabled_cache_returns_none(self):
        design, workload = _sampled_cases()[0]
        evaluator = Evaluator(search_budget=BUDGET, cache=None)
        mapper = Mapper(workload.einsum, design.arch, design.constraints)
        assert evaluator._sampled_candidates(design, workload, mapper) is None

    def test_search_pool_payload_excludes_candidate_streams(self):
        """Search chunk workers get explicit materialised candidate
        lists and never sample, so the candidates stage is dropped from
        their warm-up payload (it stays in full exports — persistent
        spills and evaluate/network pools, whose workers may search)."""
        design, workload = _sampled_cases()[0]
        evaluator = Evaluator(search_budget=BUDGET)
        evaluator._search_mappings(design, workload)
        assert CANDIDATES_STAGE in evaluator._export_cache_state(None)
        assert CANDIDATES_STAGE not in evaluator._export_cache_state(
            None, exclude_stages=(CANDIDATES_STAGE,)
        )

    def test_stream_survives_cache_export_import(self):
        """The candidates stage ships with cache snapshots (warm
        workers, persistent tier) like any other stage."""
        design, workload = _sampled_cases()[0]
        evaluator = Evaluator(search_budget=BUDGET)
        evaluator._search_mappings(design, workload)
        state = evaluator._export_cache_state(per_stage_limit=None)
        assert CANDIDATES_STAGE in state

        restored = AnalysisCache()
        restored.import_state(
            {CANDIDATES_STAGE: state[CANDIDATES_STAGE]}
        )
        warm = Evaluator(search_budget=BUDGET, cache=restored)
        mapper = Mapper(workload.einsum, design.arch, design.constraints)
        stream = warm._sampled_candidates(design, workload, mapper)
        assert restored.stage(CANDIDATES_STAGE).hits == 1
        assert [m.cache_key() for m in stream] == [
            m.cache_key()
            for m in Mapper(
                workload.einsum, design.arch, design.constraints
            ).sample_mappings(BUDGET, seed=0)
        ]


class TestWitnessFeedbackAcrossBlocks:
    def test_witnesses_registered_and_counted_in_batched_path(self):
        design, workload = _exhaustive_case()
        mapper = Mapper(workload.einsum, design.arch, design.constraints)
        best = Evaluator(search_budget=BUDGET)._search_candidates_batched(
            design,
            workload,
            mapper.enumerate_mappings(),
            None,
            mapper=mapper,
            batch_size=4,
        )
        assert best is not None
        assert mapper.overflow_witness_count > 0
        assert mapper.pruned_subtrees + mapper.pruned_candidates > 0

    def test_replayed_stream_witness_withholding(self):
        """On a replayed (memoised) stream, witnesses registered by an
        early block withhold dominated candidates drawn later — exactly
        the candidates the live generator would have withheld — and
        count them in ``pruned_candidates``."""
        arch = _arch(buffer_words=1024, macs=1)
        workload = Workload.uniform(matmul(64, 64, 64), {"A": 0.9, "B": 0.9})
        design = Design(
            "replay", arch, SAFSpec(), constraints=MapspaceConstraints()
        )
        stream = list(
            Mapper(workload.einsum, arch, None).sample_mappings(40, seed=5)
        )

        mapper = Mapper(workload.einsum, arch, None)
        evaluator = Evaluator(search_budget=40)
        batched = evaluator._search_candidates_batched(
            design, workload, stream, None,
            mapper=mapper, batch_size=4, replayed=True,
        )
        assert mapper.overflow_witness_count > 0
        assert mapper.pruned_candidates > 0

        # The generator-driven serial oracle agrees on the winner and
        # on the stream position despite the withholding.
        serial_mapper = Mapper(workload.einsum, arch, None)
        serial = Evaluator(search_budget=40)._search_candidates(
            design, workload,
            serial_mapper.sample_mappings(40, seed=5),
            None, mapper=serial_mapper,
        )
        assert (serial is None) == (batched is None)
        if serial is not None:
            assert batched[:2] == serial[:2]

    def test_mapping_dominated_matches_generator_verdicts(self):
        """`mapping_dominated` (the replay check) agrees with the
        yield-time check: a pruned generator run yields exactly the
        stream entries the replay check lets through."""
        arch = _arch(buffer_words=1024, macs=1)
        workload = Workload.uniform(matmul(64, 64, 64), {"A": 0.9, "B": 0.9})
        witness = {"m": 16, "k": 16}

        unpruned = list(
            Mapper(workload.einsum, arch, None).sample_mappings(30, seed=9)
        )
        generator_mapper = Mapper(workload.einsum, arch, None)
        generator_mapper.register_overflow("Buffer", witness)
        generated = [
            m.cache_key()
            for m in generator_mapper.sample_mappings(30, seed=9)
        ]

        replay_mapper = Mapper(workload.einsum, arch, None)
        replay_mapper.register_overflow("Buffer", witness)
        replayed = [
            m.cache_key()
            for m in unpruned
            if not replay_mapper.mapping_dominated(m)
        ]
        assert replayed == generated
        assert len(replayed) < len(unpruned)


class TestSessionKnobs:
    def test_search_job_carries_knobs(self):
        design, workload = _sampled_cases()[0]
        with Session(search_budget=BUDGET) as session:
            default = session.search(design, workload)
            serial = session.search(
                design, workload, strategy="serial", batch_size=1
            )
            small_blocks = session.search(
                SearchJob(
                    design, workload, batch_size=3, strategy="batched"
                )
            )
        a, b, c = (
            r.best_or_raise() for r in (default, serial, small_blocks)
        )
        assert a.cycles == b.cycles == c.cycles
        assert a.energy_pj == b.energy_pj == c.energy_pj

    def test_unknown_strategy_surfaces_on_handle(self):
        design, workload = _sampled_cases()[0]
        with Session(search_budget=BUDGET) as session:
            handle = session.submit(
                SearchJob(design, workload, strategy="annealing")
            )
            assert isinstance(handle.exception(), SpecError)
