"""Micro-model cache stages and the persistent tier, through the engine.

The ``validity``/``latency``/``energy`` stages memoise the model's
tail under the sparse content key, so a sparse-stage hit
short-circuits the entire evaluation. These tests prove the staged
path is bit-identical to the uncached pipeline across every bundled
design, that hit/miss accounting behaves, that capacity errors replay
exactly from cached usage reports, and that snapshots survive a
spill/reload round trip through :class:`PersistentCache` (including
the corrupted-file fallback).
"""

from __future__ import annotations

import pytest

from repro import Design, Evaluator, Workload, matmul
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.common.cache import PersistentCache
from repro.common.errors import ValidationError
from repro.mapping.mapping import LevelMapping, Loop, Mapping
from repro.micro.energy import ENERGY_STAGE
from repro.micro.latency import LATENCY_STAGE
from repro.micro.validity import VALIDITY_STAGE
from repro.model.engine import persistent_state_key
from repro.sparse.density import UniformDensity
from repro.sparse.saf import SAFSpec
from tests.sparse.test_vectorized_equivalence import CASE_IDS, CASES

MICRO_STAGES = (VALIDITY_STAGE, LATENCY_STAGE, ENERGY_STAGE)


def _matmul_point():
    arch = Architecture(
        "micro-stage",
        [
            StorageLevel("DRAM", None, component="dram",
                         read_bandwidth=8, write_bandwidth=8),
            StorageLevel("Buffer", 16 * 1024, component="sram",
                         read_bandwidth=8, write_bandwidth=8),
        ],
        ComputeLevel("MAC", instances=16),
    )
    mapping = Mapping(
        [
            LevelMapping("DRAM", [Loop("m", 8), Loop("k", 4), Loop("n", 4)]),
            LevelMapping(
                "Buffer",
                [Loop("m", 16), Loop("k", 32), Loop("n", 8)],
                [Loop("n", 4)],
            ),
        ]
    )
    design = Design("d", arch, SAFSpec(), mapping=mapping)
    workload = Workload.uniform(matmul(128, 128, 128), {"A": 0.2, "B": 0.2})
    return design, workload


def assert_results_identical(a, b):
    assert a.cycles == b.cycles
    assert a.latency.bottleneck == b.latency.bottleneck
    assert a.latency.per_component == b.latency.per_component
    assert a.latency.bandwidth_demand == b.latency.bandwidth_demand
    assert a.energy_pj == b.energy_pj
    assert a.energy.per_component == b.energy.per_component
    assert a.energy.per_component_breakdown == b.energy.per_component_breakdown
    assert set(a.usage) == set(b.usage)
    for level in a.usage:
        assert a.usage[level].used_words == b.usage[level].used_words
        assert a.usage[level].per_tensor == b.usage[level].per_tensor


class TestMicroStageAccounting:
    def test_second_evaluation_hits_all_micro_stages(self):
        design, workload = _matmul_point()
        evaluator = Evaluator()
        first = evaluator.evaluate(design, workload)
        second = evaluator.evaluate(design, workload)
        for name in MICRO_STAGES:
            stats = evaluator.cache.stage(name).stats()
            assert stats["misses"] == 1, (name, stats)
            assert stats["hits"] == 1, (name, stats)
        # Hits return the stored objects themselves (read-only reuse).
        assert first.latency is second.latency
        assert first.energy is second.energy
        assert first.usage is second.usage

    def test_stage_results_keyed_by_sparse_content(self):
        design, workload = _matmul_point()
        evaluator = Evaluator()
        evaluator.evaluate(design, workload)
        other = Workload.uniform(matmul(128, 128, 128), {"A": 0.3, "B": 0.2})
        evaluator.evaluate(design, other)
        for name in MICRO_STAGES:
            stats = evaluator.cache.stage(name).stats()
            assert stats["misses"] == 2, (name, stats)
            assert stats["hits"] == 0, (name, stats)

    def test_cache_none_bypasses_micro_stages(self):
        design, workload = _matmul_point()
        evaluator = Evaluator(cache=None)
        evaluator.evaluate(design, workload)
        evaluator.evaluate(design, workload)  # recomputes; nothing cached
        assert evaluator.cache is None

    def test_uncacheable_density_opts_micro_stages_out(self):
        class OpaqueDensity(UniformDensity):
            def cache_key(self):
                return None

        design, workload = _matmul_point()
        workload.densities["A"] = OpaqueDensity(
            0.2, workload.einsum.tensor_size("A")
        )
        evaluator = Evaluator()
        evaluator.evaluate(design, workload)
        evaluator.evaluate(design, workload)
        for name in MICRO_STAGES:
            assert len(evaluator.cache.stage(name)) == 0, name


class TestBitIdenticalAcrossDesigns:
    @pytest.mark.parametrize("name,design,workload", CASES, ids=CASE_IDS)
    def test_staged_equals_uncached(self, name, design, workload):
        staged = Evaluator(check_capacity=False)
        uncached = Evaluator(check_capacity=False, cache=None)
        cold = staged.evaluate(design, workload)
        warm = staged.evaluate(design, workload)  # micro stages hit
        plain = uncached.evaluate(design, workload)
        assert_results_identical(cold, plain)
        assert_results_identical(warm, plain)
        for stage in MICRO_STAGES:
            assert staged.cache.stage(stage).hits >= 1, (name, stage)


class TestValidityErrorReplay:
    def _overflowing_point(self):
        tiny = Architecture(
            "tiny",
            [
                StorageLevel("DRAM", None, component="dram"),
                StorageLevel("Buffer", 16, component="sram"),
            ],
            ComputeLevel("MAC", instances=4),
        )
        mapping = Mapping(
            [
                LevelMapping("DRAM", [Loop("m", 2)]),
                LevelMapping(
                    "Buffer",
                    [Loop("m", 4), Loop("k", 8), Loop("n", 2)],
                    [Loop("n", 4)],
                ),
            ]
        )
        design = Design("d", tiny, SAFSpec(), mapping=mapping)
        workload = Workload.uniform(matmul(8, 8, 8), {"A": 0.5})
        return design, workload

    def test_cached_usage_replays_identical_error(self):
        design, workload = self._overflowing_point()
        evaluator = Evaluator()
        with pytest.raises(ValidationError) as cold:
            evaluator.evaluate(design, workload)
        with pytest.raises(ValidationError) as warm:
            evaluator.evaluate(design, workload)
        assert str(warm.value) == str(cold.value)
        assert evaluator.cache.stage(VALIDITY_STAGE).hits == 1
        # The uncached pipeline raises the same message too.
        with pytest.raises(ValidationError) as plain:
            Evaluator(cache=None).evaluate(design, workload)
        assert str(plain.value) == str(cold.value)

    def test_cached_usage_serves_permissive_evaluator(self):
        design, workload = self._overflowing_point()
        cache_owner = Evaluator(check_capacity=False)
        result = cache_owner.evaluate(design, workload)
        assert not result.usage["Buffer"].fits
        # A capacity-checking evaluator sharing the cache still raises.
        strict = Evaluator(cache=cache_owner.cache)
        with pytest.raises(ValidationError):
            strict.evaluate(design, workload)


class TestPersistentRoundTrip:
    def _key(self, design, workload):
        key = persistent_state_key(design, [workload])
        assert key is not None
        return key

    def test_spill_reload_starts_fully_warm(self, tmp_path):
        design, workload = _matmul_point()
        store = PersistentCache(root=tmp_path)
        key = self._key(design, workload)

        first = Evaluator(persistent=store)
        assert first.warm_start(key) == 0  # nothing stored yet
        cold = first.evaluate(design, workload)
        assert first.spill_cache() is not None

        second = Evaluator(persistent=store)
        assert second.warm_start(key) > 0
        warm = second.evaluate(design, workload)
        assert_results_identical(cold, warm)
        # Every stage of the reloaded evaluation is a pure hit.
        for name in ("dense", "sparse", *MICRO_STAGES):
            stats = second.cache.stage(name).stats()
            assert stats["hits"] >= 1, (name, stats)
            assert stats["misses"] == 0, (name, stats)

    def test_keys_are_stable_across_equal_content(self, tmp_path):
        design, workload = _matmul_point()
        rebuilt_design, rebuilt_workload = _matmul_point()
        assert persistent_state_key(
            design, [workload]
        ) == persistent_state_key(rebuilt_design, [rebuilt_workload])
        other = Workload.uniform(matmul(128, 128, 128), {"A": 0.5})
        assert persistent_state_key(
            design, [workload]
        ) != persistent_state_key(design, [other])

    def test_corrupted_snapshot_falls_back_to_cold(self, tmp_path):
        design, workload = _matmul_point()
        store = PersistentCache(root=tmp_path)
        key = self._key(design, workload)
        first = Evaluator(persistent=store)
        expected = first.evaluate(design, workload)
        first.spill_cache(key)
        store.path_for(key).write_bytes(b"not a pickle at all")

        second = Evaluator(persistent=store)
        assert second.warm_start(key) == 0  # corrupt snapshot discarded
        result = second.evaluate(design, workload)
        assert_results_identical(expected, result)
        # ...and the evaluator can spill a fresh snapshot afterwards.
        assert second.spill_cache(key) is not None
        third = Evaluator(persistent=store)
        assert third.warm_start(key) > 0

    def test_workers_warm_from_disk_matches_serial(self, tmp_path):
        """Parallel fan-out with a configured store: the pool
        initializer reopens the store in each worker (even though the
        parent's own in-memory cache is cold) and results stay
        identical to the cold serial run."""
        design, workload = _matmul_point()
        store = PersistentCache(root=tmp_path)
        key = self._key(design, workload)
        warmer = Evaluator(persistent=store)
        warmer.evaluate(design, workload)
        warmer.spill_cache(key)

        jobs = [(design, workload)] * 3
        parent = Evaluator(persistent=store, persistent_key=key)
        results = parent.evaluate_many(jobs, parallel=2)
        expected = Evaluator(cache=None).evaluate(design, workload)
        for result in results:
            assert_results_identical(result, expected)

    def test_parallel_results_absorbed_into_parent_cache(self):
        """Fan-out work happens in workers, but the parent cache must
        still capture it (else persistent spills after a parallel run
        would be empty) — and absorbed entries must serve later serial
        evaluations bit-identically."""
        design, workload = _matmul_point()
        parent = Evaluator()
        results = parent.evaluate_many([(design, workload)] * 3, parallel=2)
        assert len(parent.cache.sparse) == 1
        for name in MICRO_STAGES:
            assert len(parent.cache.stage(name)) == 1, name
        serial = parent.evaluate(design, workload)  # pure hits now
        assert parent.cache.sparse.hits >= 1
        assert_results_identical(serial, results[0])
        assert_results_identical(
            serial, Evaluator(cache=None).evaluate(design, workload)
        )

    def test_evaluate_network_spills_under_its_own_content_key(
        self, tmp_path
    ):
        """A stale ``persistent_key`` from an earlier, unrelated
        warm start must not hijack the snapshot identity of a network
        fan-out: a fresh process deriving the network's content key
        has to find the spill."""
        from repro.workload.nets import NetLayer
        from repro.mapping.mapping import single_level_mapping

        design, workload = _matmul_point()
        arch = design.arch
        net_design = Design(
            "net",
            arch,
            SAFSpec(),
            mapping_factory=lambda wl, a: single_level_mapping(a, wl.einsum),
        )
        layers = [NetLayer("l0", matmul(64, 64, 64, name="l0"))]
        store = PersistentCache(root=tmp_path)

        first = Evaluator(check_capacity=False, persistent=store)
        first.warm_start("unrelated-earlier-key")  # poisons persistent_key
        first.evaluate_network(net_design, layers, lambda l: {"A": 0.5})

        expected_key = persistent_state_key(
            net_design,
            [Workload.uniform(layers[0].spec, {"A": 0.5}, name="l0")],
        )
        assert expected_key is not None
        second = Evaluator(check_capacity=False, persistent=store)
        assert second.warm_start(expected_key) > 0

    def test_fully_warm_run_does_not_rewrite_the_snapshot(self, tmp_path):
        """A run that computed nothing new must leave the snapshot
        untouched (no redundant pickling/fsync on the hot repeat path),
        while runs that derive fresh content still spill."""
        import os as _os

        design, workload = _matmul_point()
        store = PersistentCache(root=tmp_path)
        key = self._key(design, workload)
        first = Evaluator(persistent=store)
        first.evaluate(design, workload)
        path = first.spill_cache(key)
        stamp = _os.stat(path).st_mtime_ns

        warm = Evaluator(persistent=store)
        warm.warm_start(key)
        warm.evaluate(design, workload)  # pure hits
        assert warm.spill_cache(key) == path
        assert _os.stat(path).st_mtime_ns == stamp  # untouched

        other = Workload.uniform(matmul(128, 128, 128), {"A": 0.4, "B": 0.2})
        warm.evaluate(design, other)  # fresh content
        assert warm.spill_cache(key) == path
        assert _os.stat(path).st_mtime_ns != stamp  # rewritten

    def test_unconfigured_persistent_tier_is_inert(self):
        design, workload = _matmul_point()
        evaluator = Evaluator()  # no persistent store
        assert evaluator.warm_start("anything") == 0
        evaluator.evaluate(design, workload)
        assert evaluator.spill_cache("anything") is None

    def test_cache_none_disables_persistent_warm_start(self, tmp_path):
        design, workload = _matmul_point()
        store = PersistentCache(root=tmp_path)
        key = self._key(design, workload)
        warmer = Evaluator(persistent=store)
        warmer.evaluate(design, workload)
        warmer.spill_cache(key)
        disabled = Evaluator(cache=None, persistent=store)
        assert disabled.warm_start(key) == 0
        assert disabled.cache is None
