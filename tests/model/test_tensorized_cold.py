"""Tensorized cold-search equivalence and fan-out regression tests.

The cold search path is three stacked fast paths — the vectorized
capacity prefilter, the batched dense nest analysis, and the
zero-pickle parallel fan-out — each keeping a scalar/serial oracle it
must match **bit for bit**. This suite pins the equivalences the cold
bench (``benchmarks/bench_perf_engine.py::test_search_cold_smoke``)
relies on, across designs, workloads, knob combinations, and caching
modes, and guards the fan-out protocol against regressing to
per-chunk design pickling.
"""

from __future__ import annotations

import pytest

from repro import Design, Evaluator, SAFSpec, Workload, conv2d, matmul
from repro.arch.spec import Architecture, ComputeLevel, StorageLevel
from repro.dataflow.nest_analysis import analyze_dataflow, analyze_dataflow_batch
from repro.mapping.mapspace import Mapper, MapspaceConstraints
from repro.model import engine as engine_module
from repro.sparse.formats import CoordinatePayload, FormatRank, FormatSpec
from repro.sparse.saf import SAFKind, double_sided, gate_compute, skip_compute


def _arch(buffer_words=16 * 1024) -> Architecture:
    return Architecture(
        "cold",
        [
            StorageLevel("DRAM", None, component="dram",
                         read_bandwidth=8, write_bandwidth=8),
            StorageLevel("Buffer", buffer_words, component="sram",
                         read_bandwidth=8, write_bandwidth=8),
        ],
        ComputeLevel("MAC", instances=16),
    )


def _matmul_case(saf_index: int, buffer_words=16 * 1024):
    cp2 = FormatSpec(
        [FormatRank(CoordinatePayload()), FormatRank(CoordinatePayload())]
    )
    safs = [
        SAFSpec(),
        SAFSpec(
            formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2},
            compute_safs=[gate_compute()],
        ),
        SAFSpec(
            formats={("Buffer", "A"): cp2, ("DRAM", "A"): cp2},
            storage_safs=double_sided(SAFKind.SKIP, "A", "B", "Buffer"),
            compute_safs=[skip_compute()],
        ),
    ][saf_index]
    design = Design(
        f"mm-{saf_index}", _arch(buffer_words), safs,
        constraints=MapspaceConstraints(spatial_dims={"Buffer": ["n", "m"]}),
    )
    workload = Workload.uniform(matmul(64, 64, 64), {"A": 0.2, "B": 0.2})
    return design, workload


def _conv_case():
    cp4 = FormatSpec([FormatRank(CoordinatePayload())] * 4)
    design = Design(
        "cv", _arch(), SAFSpec(
            formats={("Buffer", "W"): cp4, ("DRAM", "W"): cp4},
            compute_safs=[gate_compute()],
        ),
        constraints=MapspaceConstraints(spatial_dims={"Buffer": ["k", "c"]}),
    )
    workload = Workload.uniform(
        conv2d(n=2, k=16, c=8, p=7, q=7, r=3, s=3), {"W": 0.3, "I": 0.5}
    )
    return design, workload


def _overflow_case():
    """128^3 tensors against a 16K-word buffer: most tilings overflow,
    so the prefilter equivalence actually sees rejections."""
    design = Design(
        "ov", _arch(), SAFSpec(),
        constraints=MapspaceConstraints(spatial_dims={"Buffer": ["n", "m"]}),
    )
    workload = Workload.uniform(
        matmul(128, 128, 128), {"A": 0.2, "B": 0.2}
    )
    return design, workload


CASES = {
    "matmul-plain": lambda: _matmul_case(0),
    "matmul-gated": lambda: _matmul_case(1),
    "matmul-skip": lambda: _matmul_case(2),
    "conv2d-gated": _conv_case,
    "matmul-overflow": _overflow_case,
}


def _sample(design, workload, count=24, seed=5):
    mapper = Mapper(workload.einsum, design.arch, design.constraints)
    return list(mapper.sample_mappings(count, seed=seed))


def assert_results_equal(a, b) -> None:
    assert a.cycles == b.cycles
    assert a.energy_pj == b.energy_pj
    assert a.edp == b.edp
    assert a.sparse.compute.actual == b.sparse.compute.actual
    assert a.sparse.compute.gated == b.sparse.compute.gated
    assert a.sparse.compute.skipped == b.sparse.compute.skipped
    assert a.dense.mapping.cache_key() == b.dense.mapping.cache_key()
    for key, record in a.dense.traffic.items():
        other = b.dense.traffic[key]
        assert record.reads == other.reads
        assert record.writes == other.writes


@pytest.mark.parametrize("case", CASES)
class TestPrefilterBlockEquivalence:
    def test_vectorized_matches_scalar_oracle(self, case):
        design, workload = CASES[case]()
        mappings = _sample(design, workload)
        evaluator = Evaluator()
        fast = evaluator._capacity_overflow_block(
            design, workload, mappings, vectorized=True
        )
        slow = evaluator._capacity_overflow_block(
            design, workload, mappings, vectorized=False
        )
        assert len(fast) == len(slow) == len(mappings)
        for a, b in zip(fast, slow):
            if b is None:
                assert a is None
                continue
            # Full witness equality, not just the reject decision: the
            # mapper prunes subtrees from these exact extents/bounds.
            assert a is not None
            assert a.level == b.level
            assert a.dim_extents == b.dim_extents
            assert a.used_words == b.used_words
            assert a.capacity_words == b.capacity_words
            assert a.monotone == b.monotone


def test_prefilter_equivalence_covers_rejections():
    design, workload = _overflow_case()
    mappings = _sample(design, workload)
    rejects = Evaluator()._capacity_overflow_block(
        design, workload, mappings, vectorized=True
    )
    assert any(r is not None for r in rejects)
    assert any(r is None for r in rejects)


@pytest.mark.parametrize("case", CASES)
class TestBatchedDenseEquivalence:
    def test_batch_matches_scalar_walks(self, case):
        design, workload = CASES[case]()
        mappings = [
            m for m in _sample(design, workload)
            if Evaluator()._passes_capacity_prefilter(design, workload, m)
        ]
        assert mappings, "case sampled no in-capacity mappings"
        jobs = [(workload, design.arch, m) for m in mappings]
        batch = analyze_dataflow_batch(jobs, vectorized=True)
        for traffic, (wl, arch, mapping) in zip(batch, jobs):
            scalar = analyze_dataflow(wl, arch, mapping)
            # DenseTraffic equality spans every numeric field (the
            # nest view is identity-excluded by design).
            assert traffic == scalar
            assert traffic.traffic.keys() == scalar.traffic.keys()


KNOB_GRID = [
    dict(prefilter_vectorized=True, dense_vectorized=True),
    dict(prefilter_vectorized=False, dense_vectorized=True),
    dict(prefilter_vectorized=True, dense_vectorized=False),
    dict(prefilter_vectorized=True, dense_vectorized=True,
         sparse_vectorized=False),
    dict(prefilter_vectorized=True, dense_vectorized=True, cache=None),
    dict(prefilter_vectorized=False, dense_vectorized=False,
         sparse_vectorized=False, cache=None),
]


@pytest.mark.parametrize("case", ["matmul-gated", "matmul-skip", "conv2d-gated"])
@pytest.mark.parametrize("knobs", KNOB_GRID, ids=lambda k: "+".join(
    sorted(f"{name}={value}" for name, value in k.items())
))
class TestColdSearchBitIdentity:
    def test_winner_matches_full_scalar_oracle(self, case, knobs):
        design, workload = CASES[case]()
        oracle = Evaluator(
            search_budget=24,
            prefilter_vectorized=False,
            dense_vectorized=False,
        )
        fast = Evaluator(search_budget=24, **knobs)
        assert_results_equal(
            fast._search_mappings(design, workload, batch_size=8),
            oracle._search_mappings(design, workload, batch_size=8),
        )


class TestZeroPicklePayloads:
    def test_search_payloads_are_index_ranges(self, monkeypatch):
        """The parallel fan-out must never regress to shipping designs
        or mappings per task: payloads stay ``(start, stop)`` index
        ranges, the read-only state crosses once via the initializer.
        The pool is emulated inline — the initializer runs with the
        exact arguments ``_run_pool`` would ship, the worker function
        runs against the installed globals — so the assertion covers
        the real protocol, not a mock of it."""
        captured = {}
        real_run_pool = Evaluator._run_pool

        def fake_run_pool(self, worker_fn, payloads, exclude_stages=(),
                          shared=None):
            captured["payloads"] = payloads
            captured["shared"] = shared
            for payload in payloads:
                assert isinstance(payload, tuple) and len(payload) == 2
                start, stop = payload
                assert isinstance(start, int) and isinstance(stop, int)
            assert shared is not None and "candidates" in shared
            if not payloads:
                return []
            # Emulate one worker process in-process: install the
            # initializer state, run, restore the module globals.
            saved = (
                engine_module._WORKER_CACHE,
                engine_module._WORKER_CACHE_INSTALLED,
                engine_module._WORKER_SHARED,
            )
            try:
                engine_module._warm_worker_initializer(
                    self._export_cache_state(
                        engine_module.DEFAULT_EXPORT_LIMIT,
                        exclude_stages=exclude_stages,
                    ),
                    self.persistent if self.cache is not None else None,
                    self.persistent_key,
                    shared,
                )
                return [worker_fn(payload) for payload in payloads]
            finally:
                (
                    engine_module._WORKER_CACHE,
                    engine_module._WORKER_CACHE_INSTALLED,
                    engine_module._WORKER_SHARED,
                ) = saved

        monkeypatch.setattr(Evaluator, "_run_pool", fake_run_pool)
        design, workload = _matmul_case(1)
        parallel = Evaluator(search_budget=16)._search_mappings(
            design, workload, parallel=2
        )
        assert captured["payloads"], "pool was never invoked"
        ranges = captured["payloads"]
        total = len(captured["shared"]["candidates"])
        assert ranges[0][0] == 0 and ranges[-1][1] == total
        monkeypatch.setattr(Evaluator, "_run_pool", real_run_pool)
        serial = Evaluator(search_budget=16)._search_mappings(design, workload)
        assert_results_equal(parallel, serial)
