"""Legacy ``Evaluator`` entry points: thin shims over the façade.

Each deprecated entry point must (a) warn exactly once per process,
(b) delegate to the same implementation the Session runs, returning
bit-identical results.
"""

from __future__ import annotations

import warnings

import pytest

from repro import Evaluator, Session, load_design
from repro.model import engine
from repro.workload.nets import alexnet
from tests.io.test_yaml_spec import FULL_SPEC


@pytest.fixture
def fresh_warnings():
    """Reset the once-per-process guard and surface every warning."""
    saved = set(engine._DEPRECATION_WARNED)
    engine._DEPRECATION_WARNED.clear()
    with warnings.catch_warnings():
        warnings.simplefilter("always")
        yield
    engine._DEPRECATION_WARNED.clear()
    engine._DEPRECATION_WARNED.update(saved)


def _deprecations(caught):
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


def _densities_for(layer):
    return {"I": 0.5, "W": 0.4}


class TestShimsWarnOnce:
    @pytest.mark.parametrize(
        "call",
        [
            lambda ev, d, w: ev.evaluate(d, w),
            lambda ev, d, w: ev.evaluate_many([(d, w)]),
            lambda ev, d, w: ev.search_mappings(d, w, candidates=[d.mapping]),
        ],
        ids=["evaluate", "evaluate_many", "search_mappings"],
    )
    def test_warns_on_first_call_only(self, fresh_warnings, call):
        design, workload = load_design(FULL_SPEC)
        ev = Evaluator()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            call(ev, design, workload)
            assert len(_deprecations(caught)) == 1
            assert "repro.api" in str(_deprecations(caught)[0].message)
            call(ev, design, workload)
            assert len(_deprecations(caught)) == 1, "must warn only once"

    def test_network_shim_warns(self, fresh_warnings):
        from repro.designs import eyeriss

        ev = Evaluator(check_capacity=False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ev.evaluate_network(
                eyeriss.eyeriss_design(), alexnet()[:1], _densities_for
            )
        messages = [str(w.message) for w in _deprecations(caught)]
        assert any("evaluate_network" in m for m in messages)


class TestShimsDelegate:
    def test_evaluate_matches_session(self, fresh_warnings):
        design, workload = load_design(FULL_SPEC)
        legacy = Evaluator().evaluate(design, workload)
        with Session() as session:
            new = session.evaluate(design, workload)
        assert legacy.to_dict() == new.to_dict()

    def test_evaluate_many_matches_submit_many(self, fresh_warnings):
        design, workload = load_design(FULL_SPEC)
        jobs = [(design, workload)] * 3
        legacy = Evaluator().evaluate_many(jobs)
        with Session() as session:
            handles = session.submit_many(jobs)
            new = [h.result() for h in handles]
        assert [r.to_dict() for r in legacy] == [r.to_dict() for r in new]

    def test_search_matches_session_search(self, fresh_warnings):
        design, workload = load_design(FULL_SPEC)
        candidates = [design.mapping]
        legacy = Evaluator().search_mappings(
            design, workload, candidates=candidates
        )
        with Session() as session:
            new = session.search(design, workload, candidates=candidates)
        assert legacy.to_dict() == new.best.to_dict()
