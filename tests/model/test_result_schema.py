"""The versioned result schema (``schema: 1``).

Serialized results are the façade's wire format: they must round-trip
bit-exactly (``from_dict(r.to_dict()).to_dict() == r.to_dict()``, and
the same through JSON text) for every bundled design — including
results whose usage reports record a capacity overflow — and reject
envelopes they don't understand.
"""

from __future__ import annotations

import json

import pytest

from repro import Session
from repro.common.errors import SpecError
from repro.micro.validity import overflow_error
from repro.model.result import (
    RESULT_SCHEMA_VERSION,
    EvaluationResult,
    NetworkResult,
    SearchResult,
)
from repro.workload.nets import alexnet
from tests.io.test_yaml_spec import FULL_SPEC
from tests.sparse.test_vectorized_equivalence import CASE_IDS, CASES


def assert_round_trips(result: EvaluationResult) -> None:
    data = result.to_dict()
    assert data["schema"] == RESULT_SCHEMA_VERSION
    assert data["kind"] == "evaluation"

    rebuilt = EvaluationResult.from_dict(data)
    assert rebuilt.to_dict() == data, "dict round-trip must be bit-exact"

    via_json = EvaluationResult.from_json(result.to_json())
    assert via_json.to_dict() == data, "JSON round-trip must be bit-exact"

    # Derived metrics reproduce exactly, not approximately.
    assert rebuilt.cycles == result.cycles
    assert rebuilt.energy_pj == result.energy_pj
    assert rebuilt.edp == result.edp
    assert rebuilt.actual_computes == result.actual_computes
    # The mapping survives as the same schedule (same content key).
    assert (
        rebuilt.dense.mapping.cache_key()
        == result.dense.mapping.cache_key()
    )
    # The summary (a pure function of serialized fields) is unchanged.
    assert rebuilt.summary() == result.summary()


class TestEvaluationRoundTrip:
    @pytest.mark.parametrize("name,design,workload", CASES, ids=CASE_IDS)
    def test_bundled_design_round_trip(self, name, design, workload):
        with Session(check_capacity=False) as session:
            result = session.evaluate(design, workload)
        assert_round_trips(result)

    def test_capacity_error_result_round_trip(self):
        # An overflowing design evaluated permissively: the usage
        # report records the overflow; the round-trip preserves it
        # down to the identical replayed ValidationError message.
        import yaml

        spec = yaml.safe_load(FULL_SPEC)
        spec["arch"]["storage"][1]["capacity_words"] = 4
        with Session(check_capacity=False) as session:
            result = session.evaluate(spec)
        overflowing = [u for u in result.usage.values() if not u.fits]
        assert overflowing, "the shrunken Buffer must overflow"
        assert_round_trips(result)
        rebuilt = EvaluationResult.from_dict(result.to_dict())
        for level, report in result.usage.items():
            twin = rebuilt.usage[level]
            assert twin.fits == report.fits
            if not report.fits:
                assert str(overflow_error(twin)) == str(
                    overflow_error(report)
                )

    def test_json_is_plain_data(self):
        with Session() as session:
            result = session.evaluate(FULL_SPEC)
        data = json.loads(result.to_json())
        assert isinstance(data, dict)
        # Stable top-level keys (the schema contract).
        assert set(data) == {
            "schema",
            "kind",
            "design",
            "workload",
            "mapping",
            "dense",
            "sparse",
            "latency",
            "energy",
            "usage",
        }


class TestEnvelopeValidation:
    def test_rejects_unknown_schema_version(self):
        with Session() as session:
            data = session.evaluate(FULL_SPEC).to_dict()
        data["schema"] = RESULT_SCHEMA_VERSION + 1
        with pytest.raises(SpecError):
            EvaluationResult.from_dict(data)

    def test_rejects_wrong_kind(self):
        with Session() as session:
            data = session.evaluate(FULL_SPEC).to_dict()
        with pytest.raises(SpecError):
            SearchResult.from_dict(data)

    def test_rejects_non_dict(self):
        with pytest.raises(SpecError):
            EvaluationResult.from_dict([1, 2, 3])

    def test_truncated_body_raises_spec_error(self):
        # A valid envelope with a missing/garbled body must surface as
        # SpecError, never a raw KeyError.
        with pytest.raises(SpecError):
            EvaluationResult.from_json('{"schema": 1, "kind": "evaluation"}')
        with pytest.raises(SpecError):
            SearchResult.from_json('{"schema": 1, "kind": "search"}')
        with pytest.raises(SpecError):
            NetworkResult.from_json(
                '{"schema": 1, "kind": "network", "design": "d", '
                '"layers": [{"name": "l"}]}'
            )


class TestSearchResultRoundTrip:
    def test_round_trip_with_winner(self):
        with Session(search_budget=8) as session:
            outcome = session.search(FULL_SPEC)
        data = outcome.to_dict()
        assert data["kind"] == "search"
        assert SearchResult.from_dict(data).to_dict() == data
        assert SearchResult.from_json(outcome.to_json()).to_dict() == data

    def test_round_trip_empty(self):
        empty = SearchResult(
            design_name="d", workload_name="w", budget=4, seed=0, best=None
        )
        rebuilt = SearchResult.from_json(empty.to_json())
        assert rebuilt.to_dict() == empty.to_dict()
        assert not rebuilt.found


def _densities_for(layer):
    return {"I": 0.5, "W": 0.4}


class TestNetworkResultRoundTrip:
    def test_round_trip_preserves_layers_and_totals(self):
        from repro.designs import eyeriss

        with Session(check_capacity=False) as session:
            net = session.evaluate_network(
                eyeriss.eyeriss_design(), alexnet()[:3], _densities_for
            )
        data = net.to_dict()
        assert data["kind"] == "network"
        rebuilt = NetworkResult.from_json(net.to_json())
        assert rebuilt.to_dict() == data
        assert rebuilt.total_cycles == net.total_cycles
        assert rebuilt.total_energy_pj == net.total_energy_pj
        assert rebuilt.layer("conv2").result.cycles == (
            net.layer("conv2").result.cycles
        )
