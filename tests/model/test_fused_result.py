"""FusedResult schema: bit-exact round-trips and lenient decoding."""

import json

import pytest

from repro.api import Session
from repro.common.errors import SpecError
from repro.model.result import RESULT_SCHEMA_VERSION, FusedResult
from tests.model.test_fused_oracle import DENSITIES, bundled_designs
from tests.workload.test_graph import chain_graph


@pytest.fixture(scope="module")
def fused_result():
    _, design = bundled_designs()[0]
    with Session(check_capacity=False) as session:
        return session.evaluate_fused(design, chain_graph(), dict(DENSITIES))


class TestRoundTrip:
    def test_to_dict_round_trip_is_bit_exact(self, fused_result):
        data = fused_result.to_dict()
        rebuilt = FusedResult.from_dict(data)
        assert rebuilt.to_dict() == data

    def test_json_round_trip_is_bit_exact(self, fused_result):
        text = fused_result.to_json()
        rebuilt = FusedResult.from_json(text)
        assert rebuilt.to_json() == text
        assert json.loads(text)["schema"] == RESULT_SCHEMA_VERSION
        assert json.loads(text)["kind"] == "fused"

    def test_totals_survive_round_trip(self, fused_result):
        rebuilt = FusedResult.from_dict(fused_result.to_dict())
        assert rebuilt.total_cycles == fused_result.total_cycles
        assert rebuilt.total_energy_pj == fused_result.total_energy_pj
        assert (
            rebuilt.intermediate_backing_words
            == fused_result.intermediate_backing_words
        )


class TestLenientDecoding:
    def test_pre_fused_schema_v1_payload_decodes(self, fused_result):
        # A minimal schema-v1 envelope carrying only the per-einsum
        # results (no fuse_at, no shared section) must rebuild with the
        # degenerate defaults, not raise KeyError.
        data = fused_result.to_dict()
        del data["fuse_at"]
        del data["shared"]
        rebuilt = FusedResult.from_dict(data)
        assert rebuilt.fuse_at is None
        assert rebuilt.shared == []
        assert rebuilt.total_cycles == fused_result.total_cycles

    def test_null_shared_decodes_as_empty(self, fused_result):
        data = fused_result.to_dict()
        data["shared"] = None
        assert FusedResult.from_dict(data).shared == []

    def test_wrong_kind_rejected(self, fused_result):
        data = fused_result.to_dict()
        data["kind"] = "network"
        with pytest.raises(SpecError):
            FusedResult.from_dict(data)

    def test_truncated_payload_raises_spec_error(self, fused_result):
        data = fused_result.to_dict()
        del data["einsums"]
        with pytest.raises(SpecError):
            FusedResult.from_dict(data)


class TestAccessors:
    def test_einsum_lookup(self, fused_result):
        assert fused_result.einsum("fc1").einsum_name == "fc1"
        with pytest.raises(KeyError):
            fused_result.einsum("nope")

    def test_shared_tensor_lookup(self, fused_result):
        assert fused_result.shared_tensor("H")["producer"] == "fc1"
        with pytest.raises(KeyError):
            fused_result.shared_tensor("nope")

    def test_summary_mentions_fusion_state(self, fused_result):
        assert "unfused (degenerate)" in fused_result.summary()
        assert "fc1" in fused_result.summary()
